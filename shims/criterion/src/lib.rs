//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides the slice of the criterion 0.5 API the bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], the [`criterion_group!`]/[`criterion_main!`] macros and
//! [`black_box`] — backed by a simple wall-clock harness.
//!
//! Each benchmark runs one warm-up iteration followed by `sample_size`
//! measured iterations and prints min / mean / max per sample. There is no
//! statistical analysis or HTML report; the point is that `cargo bench`
//! compiles, runs and prints comparable numbers without the network.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value helper preventing the optimiser from deleting benchmark
/// bodies, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Drives one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Measured per-sample durations, filled by [`Bencher::iter`].
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `body` for the configured number of samples (after one
    /// warm-up call).
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        hint::black_box(body()); // warm-up: populate caches, touch lazy state
        for _ in 0..self.samples {
            let start = Instant::now();
            hint::black_box(body());
            self.results.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets a target measurement time. Accepted for API compatibility; the
    /// shim measures a fixed number of samples instead.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<S: Into<String>>(
        &mut self,
        id: S,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut body = body;
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        body(&mut bencher);
        report(&full, &bencher.results);
        self
    }

    /// Ends the group (printing nothing extra; reports are per-benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards trailing args; honour a single
        // substring filter and ignore the flags cargo's bench runner passes
        // (--bench, --test, ...).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs one stand-alone named benchmark with default settings.
    pub fn bench_function<S: Into<String>>(
        &mut self,
        id: S,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id: String = id.into();
        self.benchmark_group(id.clone()).bench_function(id, body);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Final-report hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    // The median rides along after the classic [min mean max] block so the
    // perf-trajectory artifact (`scripts/bench-smoke.sh` →
    // `BENCH_smoke.json`) gets a robust statistic without disturbing
    // parsers that stop at the closing bracket.
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2
    };
    println!(
        "{name:<60} time: [{:>10.4} ms {:>10.4} ms {:>10.4} ms]  median: {:.4} ms ({} samples)",
        min.as_secs_f64() * 1e3,
        mean.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
        median.as_secs_f64() * 1e3,
        samples.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count_runs", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
        };
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("other", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran);
        group.bench_function("only_this_one", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(ran);
    }
}
