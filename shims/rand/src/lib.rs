//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides the slice of the `rand` 0.8 API the TPC-H generator uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer `Range`/`RangeInclusive` bounds.
//!
//! The generator is a SplitMix64-seeded xorshift64*, which is deterministic
//! per seed (all datasets in this repository are reproducible) and easily
//! good enough for synthetic benchmark data. It is **not** a cryptographic
//! RNG and does not attempt to produce the same streams as the real `rand`
//! crate.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Bounds that can be sampled uniformly. Implemented for integer
/// `Range`/`RangeInclusive` types.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 scrambles the seed so small seeds (0, 1, 2 …)
            // produce unrelated streams; xorshift needs a non-zero state.
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z.max(1) }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "seeds 1 and 2 must produce unrelated streams");
    }
}
