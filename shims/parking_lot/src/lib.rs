//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides the small slice of the `parking_lot` API the repository
//! uses: [`Mutex`] and [`RwLock`] whose lock methods return guards directly
//! (no poisoning `Result`s). Backed by `std::sync`; a poisoned std lock is
//! recovered into its inner guard, matching parking_lot's "no poisoning"
//! semantics.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, returns the guard directly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
