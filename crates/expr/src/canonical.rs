//! Canonicalisation: constant folding and parameter extraction.
//!
//! The paper's `ConstantEvaluator` (§3) walks the expression tree, evaluates
//! every sub-tree that does not depend on the source data and replaces it
//! with a constant node; the result is the query's *canonical form*, which
//! is then used as the cache key. The cache additionally reuses compiled
//! code when "the expression trees are essentially the same, but one or more
//! parameters in the query differ". We implement that by replacing every
//! remaining literal with a positional [`Expr::QueryParam`] and extracting
//! the literal values into a parameter vector.

use crate::tree::{BinaryOp, Expr, UnaryOp};
use mrq_common::{Decimal, Value};

/// A query in canonical form: the parameterised tree plus the extracted
/// parameter bindings for this particular instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalQuery {
    /// The folded, parameterised expression tree.
    pub expr: Expr,
    /// Literal values extracted from the tree, indexed by
    /// [`Expr::QueryParam`] position.
    pub params: Vec<Value>,
    /// Structural hash of `expr` (the cache key).
    pub shape_hash: u64,
}

/// Evaluates constant sub-expressions (the `ConstantEvaluator` pass).
///
/// Folding is conservative: only arithmetic, comparisons and boolean
/// connectives over literal constants are evaluated. Anything touching a
/// parameter, member access or source survives untouched.
pub fn fold_constants(expr: Expr) -> Expr {
    expr.transform(&mut |node| match node {
        Expr::Binary { op, left, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Constant(l), Expr::Constant(r)) => match eval_binary(op, l, r) {
                Some(v) => Expr::Constant(v),
                None => Expr::Binary { op, left, right },
            },
            _ => Expr::Binary { op, left, right },
        },
        Expr::Unary { op, expr } => match expr.as_ref() {
            Expr::Constant(v) => match eval_unary(op, v) {
                Some(folded) => Expr::Constant(folded),
                None => Expr::Unary { op, expr },
            },
            _ => Expr::Unary { op, expr },
        },
        other => other,
    })
}

/// Evaluates a binary operator over two constants, if defined.
pub fn eval_binary(op: BinaryOp, left: &Value, right: &Value) -> Option<Value> {
    use BinaryOp::*;
    if op.is_comparison() {
        // Comparable only when the dynamic types are compatible.
        if !comparable(left, right) {
            return None;
        }
        let ord = left.total_cmp(right);
        let out = match op {
            Eq => ord.is_eq(),
            Ne => !ord.is_eq(),
            Lt => ord.is_lt(),
            Le => ord.is_le(),
            Gt => ord.is_gt(),
            Ge => ord.is_ge(),
            _ => unreachable!(),
        };
        return Some(Value::Bool(out));
    }
    if op.is_logical() {
        return match (left, right, op) {
            (Value::Bool(a), Value::Bool(b), And) => Some(Value::Bool(*a && *b)),
            (Value::Bool(a), Value::Bool(b), Or) => Some(Value::Bool(*a || *b)),
            _ => None,
        };
    }
    // Arithmetic.
    match (left, right) {
        (Value::Int64(a), Value::Int64(b)) => arith_i64(op, *a, *b).map(Value::Int64),
        (Value::Int32(a), Value::Int32(b)) => {
            arith_i64(op, *a as i64, *b as i64).map(|v| Value::Int32(v as i32))
        }
        (Value::Int32(a), Value::Int64(b)) => arith_i64(op, *a as i64, *b).map(Value::Int64),
        (Value::Int64(a), Value::Int32(b)) => arith_i64(op, *a, *b as i64).map(Value::Int64),
        (Value::Decimal(a), Value::Decimal(b)) => arith_decimal(op, *a, *b).map(Value::Decimal),
        (Value::Float64(a), Value::Float64(b)) => arith_f64(op, *a, *b).map(Value::Float64),
        // Date arithmetic: date ± integer days (TPC-H Q1's `date - 90`).
        (Value::Date(d), Value::Int64(n)) => match op {
            Add => Some(Value::Date(d.add_days(*n as i32))),
            Sub => Some(Value::Date(d.add_days(-(*n as i32)))),
            _ => None,
        },
        (Value::Date(d), Value::Int32(n)) => match op {
            Add => Some(Value::Date(d.add_days(*n))),
            Sub => Some(Value::Date(d.add_days(-*n))),
            _ => None,
        },
        _ => None,
    }
}

/// Evaluates a unary operator over a constant, if defined.
pub fn eval_unary(op: UnaryOp, value: &Value) -> Option<Value> {
    match (op, value) {
        (UnaryOp::Not, Value::Bool(b)) => Some(Value::Bool(!b)),
        (UnaryOp::Neg, Value::Int32(v)) => Some(Value::Int32(-v)),
        (UnaryOp::Neg, Value::Int64(v)) => Some(Value::Int64(-v)),
        (UnaryOp::Neg, Value::Decimal(d)) => Some(Value::Decimal(-*d)),
        (UnaryOp::Neg, Value::Float64(v)) => Some(Value::Float64(-v)),
        _ => None,
    }
}

fn comparable(a: &Value, b: &Value) -> bool {
    match (a.dtype(), b.dtype()) {
        (Some(x), Some(y)) => {
            x == y
                || (x.is_numeric() && y.is_numeric())
                || matches!(
                    (a, b),
                    (
                        Value::Int32(_) | Value::Int64(_),
                        Value::Int32(_) | Value::Int64(_)
                    )
                )
        }
        _ => false,
    }
}

fn arith_i64(op: BinaryOp, a: i64, b: i64) -> Option<i64> {
    match op {
        BinaryOp::Add => a.checked_add(b),
        BinaryOp::Sub => a.checked_sub(b),
        BinaryOp::Mul => a.checked_mul(b),
        BinaryOp::Div => {
            if b == 0 {
                None
            } else {
                Some(a / b)
            }
        }
        _ => None,
    }
}

fn arith_decimal(op: BinaryOp, a: Decimal, b: Decimal) -> Option<Decimal> {
    match op {
        BinaryOp::Add => Some(a + b),
        BinaryOp::Sub => Some(a - b),
        BinaryOp::Mul => a.checked_mul(b),
        BinaryOp::Div => {
            if b == Decimal::ZERO {
                None
            } else {
                Some(Decimal::from_f64(a.to_f64() / b.to_f64()))
            }
        }
        _ => None,
    }
}

fn arith_f64(op: BinaryOp, a: f64, b: f64) -> Option<f64> {
    match op {
        BinaryOp::Add => Some(a + b),
        BinaryOp::Sub => Some(a - b),
        BinaryOp::Mul => Some(a * b),
        BinaryOp::Div => Some(a / b),
        _ => None,
    }
}

/// Puts a query in canonical form: folds constants, then replaces every
/// remaining literal (except the boolean produced by an empty predicate)
/// with a positional parameter and extracts the bindings.
pub fn canonicalize(expr: Expr) -> CanonicalQuery {
    let folded = fold_constants(expr);
    let mut params = Vec::new();
    let parameterised = folded.transform(&mut |node| match node {
        Expr::Constant(value) => {
            let index = params.len();
            params.push(value);
            Expr::QueryParam(index)
        }
        other => other,
    });
    let shape_hash = parameterised.structural_hash();
    CanonicalQuery {
        expr: parameterised,
        params,
        shape_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{col, lam, lit, Query};
    use crate::tree::SourceId;
    use mrq_common::Date;

    #[test]
    fn constant_arithmetic_is_folded() {
        // 1 + 2 * 3 (built right-assoc for the test) -> 7
        let e = Expr::binary(
            BinaryOp::Add,
            lit(1i64),
            Expr::binary(BinaryOp::Mul, lit(2i64), lit(3i64)),
        );
        assert_eq!(fold_constants(e), lit(7i64));
    }

    #[test]
    fn date_interval_arithmetic_is_folded() {
        // The Q1 predicate: shipdate <= date '1998-12-01' - 90
        let e = Expr::binary(
            BinaryOp::Le,
            col("l", "l_shipdate"),
            Expr::binary(BinaryOp::Sub, lit(Date::from_ymd(1998, 12, 1)), lit(90i64)),
        );
        let folded = fold_constants(e);
        match folded {
            Expr::Binary { right, .. } => {
                assert_eq!(*right, lit(Date::from_ymd(1998, 9, 2)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn member_access_is_never_folded() {
        let e = Expr::binary(BinaryOp::Eq, col("s", "Name"), lit("London"));
        assert_eq!(fold_constants(e.clone()), e);
    }

    #[test]
    fn logical_and_comparison_folding() {
        assert_eq!(
            eval_binary(BinaryOp::And, &Value::Bool(true), &Value::Bool(false)),
            Some(Value::Bool(false))
        );
        assert_eq!(
            eval_binary(BinaryOp::Lt, &Value::Int64(1), &Value::Int64(2)),
            Some(Value::Bool(true))
        );
        assert_eq!(
            eval_binary(BinaryOp::Eq, &Value::str("a"), &Value::str("a")),
            Some(Value::Bool(true))
        );
        // Incompatible types refuse to fold rather than guessing.
        assert_eq!(
            eval_binary(BinaryOp::Eq, &Value::str("a"), &Value::Int64(1)),
            None
        );
        // Division by zero refuses to fold (the engine will surface the error
        // at run time exactly like the interpreted path would).
        assert_eq!(
            eval_binary(BinaryOp::Div, &Value::Int64(1), &Value::Int64(0)),
            None
        );
    }

    #[test]
    fn unary_folding() {
        assert_eq!(
            eval_unary(UnaryOp::Not, &Value::Bool(true)),
            Some(Value::Bool(false))
        );
        assert_eq!(
            eval_unary(UnaryOp::Neg, &Value::Int64(5)),
            Some(Value::Int64(-5))
        );
        assert_eq!(eval_unary(UnaryOp::Not, &Value::Int64(5)), None);
    }

    #[test]
    fn canonicalize_extracts_parameters_and_yields_stable_shape() {
        let build = |city: &str, population: i64| {
            Query::from_source(SourceId(0))
                .where_(lam(
                    "s",
                    Expr::binary(
                        BinaryOp::And,
                        Expr::binary(BinaryOp::Eq, col("s", "Name"), lit(city)),
                        Expr::binary(BinaryOp::Gt, col("s", "Population"), lit(population)),
                    ),
                ))
                .select(lam("s", col("s", "Population")))
                .into_expr()
        };
        let a = canonicalize(build("London", 100));
        let b = canonicalize(build("Paris", 2_000_000));
        assert_eq!(
            a.shape_hash, b.shape_hash,
            "same query shape must share a cache key"
        );
        assert_eq!(a.expr, b.expr);
        assert_eq!(a.params, vec![Value::str("London"), Value::Int64(100)]);
        assert_eq!(b.params, vec![Value::str("Paris"), Value::Int64(2_000_000)]);

        // A structurally different query gets a different key.
        let c = canonicalize(
            Query::from_source(SourceId(0))
                .where_(lam(
                    "s",
                    Expr::binary(BinaryOp::Eq, col("s", "Name"), lit("London")),
                ))
                .into_expr(),
        );
        assert_ne!(a.shape_hash, c.shape_hash);
    }

    #[test]
    fn canonicalize_folds_before_extracting() {
        // Take(5 + 5) must canonicalise to one parameter with value 10.
        let q = Query::from_source(SourceId(0))
            .take(0) // placeholder, replaced below
            .into_expr();
        let q = match q {
            Expr::Call {
                method,
                target,
                direction,
                ..
            } => Expr::Call {
                method,
                target,
                args: vec![Expr::binary(BinaryOp::Add, lit(5i64), lit(5i64))],
                direction,
            },
            _ => unreachable!(),
        };
        let canon = canonicalize(q);
        assert_eq!(canon.params, vec![Value::Int64(10)]);
    }
}
