//! The compiled-query cache.
//!
//! Generating and compiling code per query execution is expensive (the paper
//! reports 30–60 ms of generation, ~75 ms of C# compilation and ~720 ms of C
//! compilation, §7.4). Because typical applications issue a small number of
//! query *patterns* whose instances differ only in parameter values, the
//! provider caches compiled artefacts keyed by the canonical expression tree
//! and re-binds parameters on each execution.
//!
//! The cache is generic over the artefact type so each engine can store its
//! own compiled representation.

use crate::canonical::CanonicalQuery;
use crate::tree::Expr;
use mrq_common::hash::FxHashMap;
use parking_lot::Mutex;
use std::sync::Arc;

/// Statistics of cache behaviour (exposed so the benches can report the
/// compilation-cost amortisation the paper discusses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that found a compiled artefact.
    pub hits: u64,
    /// Number of lookups that had to compile.
    pub misses: u64,
    /// Number of artefacts currently stored.
    pub entries: usize,
}

struct Entry<C> {
    /// The canonical tree is kept alongside the hash to guard against hash
    /// collisions: a hit requires structural equality.
    shape: Expr,
    artefact: Arc<C>,
}

/// A thread-safe cache of compiled queries keyed by canonical shape.
pub struct QueryCache<C> {
    entries: Mutex<FxHashMap<u64, Vec<Entry<C>>>>,
    stats: Mutex<CacheStats>,
}

impl<C> Default for QueryCache<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> QueryCache<C> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        QueryCache {
            entries: Mutex::new(FxHashMap::default()),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Looks up the compiled artefact for a canonical query, compiling it
    /// with `compile` on a miss. The compile closure runs outside the map
    /// lock only on the miss path; concurrent misses for the same shape may
    /// both compile, with one result winning (harmless for pure artefacts).
    pub fn get_or_compile(
        &self,
        canonical: &CanonicalQuery,
        compile: impl FnOnce(&CanonicalQuery) -> C,
    ) -> Arc<C> {
        if let Some(found) = self.lookup_quiet(canonical) {
            self.stats.lock().hits += 1;
            return found;
        }
        self.stats.lock().misses += 1;
        let artefact = Arc::new(compile(canonical));
        self.insert(canonical, artefact)
    }

    /// Stores an already-compiled artefact without touching hit/miss
    /// statistics (used by callers that probed with [`QueryCache::lookup`]
    /// themselves). Returns the stored artefact (an earlier concurrent insert
    /// wins).
    pub fn insert(&self, canonical: &CanonicalQuery, artefact: Arc<C>) -> Arc<C> {
        let mut entries = self.entries.lock();
        let bucket = entries.entry(canonical.shape_hash).or_default();
        if let Some(existing) = bucket.iter().find(|e| e.shape == canonical.expr) {
            return existing.artefact.clone();
        }
        bucket.push(Entry {
            shape: canonical.expr.clone(),
            artefact: artefact.clone(),
        });
        let mut stats = self.stats.lock();
        stats.entries += 1;
        artefact
    }

    /// Pure lookup without compiling.
    pub fn lookup(&self, canonical: &CanonicalQuery) -> Option<Arc<C>> {
        let found = self.lookup_quiet(canonical);
        let mut stats = self.stats.lock();
        if found.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        found
    }

    fn lookup_quiet(&self, canonical: &CanonicalQuery) -> Option<Arc<C>> {
        let entries = self.entries.lock();
        entries
            .get(&canonical.shape_hash)
            .and_then(|bucket| bucket.iter().find(|e| e.shape == canonical.expr))
            .map(|e| e.artefact.clone())
    }

    /// Removes every cached artefact.
    pub fn clear(&self) {
        self.entries.lock().clear();
        self.stats.lock().entries = 0;
    }

    /// Snapshot of hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        let mut stats = *self.stats.lock();
        stats.entries = self.entries.lock().values().map(Vec::len).sum();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{col, lam, lit, Query};
    use crate::canonical::canonicalize;
    use crate::tree::{BinaryOp, Expr, SourceId};

    fn make_query(city: &str) -> CanonicalQuery {
        canonicalize(
            Query::from_source(SourceId(0))
                .where_(lam(
                    "s",
                    Expr::binary(BinaryOp::Eq, col("s", "Name"), lit(city)),
                ))
                .into_expr(),
        )
    }

    #[test]
    fn second_instance_of_the_same_pattern_hits() {
        let cache: QueryCache<String> = QueryCache::new();
        let mut compile_count = 0;
        let q1 = make_query("London");
        let q2 = make_query("Paris");
        let a1 = cache.get_or_compile(&q1, |c| {
            compile_count += 1;
            format!("compiled:{}", c.shape_hash)
        });
        let a2 = cache.get_or_compile(&q2, |c| {
            compile_count += 1;
            format!("compiled:{}", c.shape_hash)
        });
        assert_eq!(
            compile_count, 1,
            "the second instance must reuse the artefact"
        );
        assert!(Arc::ptr_eq(&a1, &a2));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn different_shapes_compile_separately() {
        let cache: QueryCache<u64> = QueryCache::new();
        let q1 = make_query("London");
        let q2 = canonicalize(
            Query::from_source(SourceId(0))
                .where_(lam(
                    "s",
                    Expr::binary(BinaryOp::Gt, col("s", "Population"), lit(10i64)),
                ))
                .into_expr(),
        );
        cache.get_or_compile(&q1, |c| c.shape_hash);
        cache.get_or_compile(&q2, |c| c.shape_hash);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache: QueryCache<u64> = QueryCache::new();
        let q = make_query("London");
        cache.get_or_compile(&q, |c| c.shape_hash);
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.lookup(&q).is_none());
    }
}
