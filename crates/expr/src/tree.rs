//! The expression-tree data model.

use mrq_common::Value;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Identifies an input collection bound to the query (the provider maps it
/// to an actual managed list, row store or column store at execution time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

/// The standard query operators a method-call node can represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMethod {
    /// `Where(predicate)`
    Where,
    /// `Select(selector)`
    Select,
    /// `GroupBy(key_selector)`
    GroupBy,
    /// `OrderBy(key_selector)` / `OrderByDescending`, see the direction arg.
    OrderBy,
    /// `ThenBy(key_selector)` appended to an OrderBy.
    ThenBy,
    /// `Take(n)`
    Take,
    /// `Join(inner, outer_key, inner_key, result_selector)`
    Join,
    /// `Sum(selector?)` aggregate.
    Sum,
    /// `Count()` aggregate.
    Count,
    /// `Average(selector?)` aggregate.
    Average,
    /// `Min(selector?)` aggregate.
    Min,
    /// `Max(selector?)` aggregate.
    Max,
    /// `First()` terminal.
    First,
    /// String method `StartsWith(prefix)`.
    StartsWith,
    /// String method `EndsWith(suffix)` (models the `LIKE '%BRASS'`
    /// predicate of TPC-H Q2).
    EndsWith,
    /// String method `Contains(substring)`.
    Contains,
}

/// Aggregate functions (the subset of [`QueryMethod`] that folds a group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of the selector over the group.
    Sum,
    /// Number of elements in the group.
    Count,
    /// Arithmetic mean of the selector over the group.
    Average,
    /// Minimum of the selector.
    Min,
    /// Maximum of the selector.
    Max,
}

impl AggFunc {
    /// The corresponding query method.
    pub fn method(self) -> QueryMethod {
        match self {
            AggFunc::Sum => QueryMethod::Sum,
            AggFunc::Count => QueryMethod::Count,
            AggFunc::Average => QueryMethod::Average,
            AggFunc::Min => QueryMethod::Min,
            AggFunc::Max => QueryMethod::Max,
        }
    }

    /// Parses a query method into an aggregate function, if it is one.
    pub fn from_method(method: QueryMethod) -> Option<AggFunc> {
        match method {
            QueryMethod::Sum => Some(AggFunc::Sum),
            QueryMethod::Count => Some(AggFunc::Count),
            QueryMethod::Average => Some(AggFunc::Average),
            QueryMethod::Min => Some(AggFunc::Min),
            QueryMethod::Max => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// Binary operators usable inside lambda bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// True for comparison operators producing a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// True for the boolean connectives.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// The C-source spelling of the operator (used by the source emitters).
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "&&",
            BinaryOp::Or => "||",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

/// Unary operators usable inside lambda bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Sort direction for `OrderBy`/`ThenBy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortDirection {
    /// Ascending order.
    Ascending,
    /// Descending order.
    Descending,
}

/// A LINQ-style expression tree node.
///
/// The shape mirrors the paper's Figure 1: a query is a chain of
/// [`Expr::Call`] nodes whose `target` is the upstream operator (ultimately a
/// [`Expr::Source`]) and whose arguments are [`Expr::Lambda`]s, constants or
/// nested sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal constant embedded in the query text.
    Constant(Value),
    /// A query parameter produced by canonicalisation (index into the
    /// extracted parameter vector). Queries authored through the builder may
    /// also use it directly for explicitly parameterised statements.
    QueryParam(usize),
    /// An input collection.
    Source(SourceId),
    /// A lambda parameter reference, e.g. `s`.
    Parameter(String),
    /// Member (field) access, possibly chained through references:
    /// `s.Shop.City.Name` is `Member(Member(Member(Param("s"), "Shop"),
    /// "City"), "Name")`.
    Member {
        /// The object whose member is read.
        target: Box<Expr>,
        /// The member name.
        field: String,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A lambda expression `param => body`.
    Lambda {
        /// Parameter name.
        param: String,
        /// Body.
        body: Box<Expr>,
    },
    /// A standard query operator method call.
    Call {
        /// Which operator.
        method: QueryMethod,
        /// The expression the method is invoked on (the upstream operator or
        /// a lambda parameter, e.g. the group `g` for `g.Sum(...)`).
        target: Box<Expr>,
        /// Arguments (lambdas, constants, nested sources).
        args: Vec<Expr>,
        /// Sort direction for OrderBy/ThenBy calls; ignored otherwise.
        direction: SortDirection,
    },
    /// An anonymous-type / result-object constructor:
    /// `new R { Id = g.Key, Total = g.Sum(x => x.Price) }`.
    Constructor {
        /// Result type name (informational; used for generated struct names).
        name: String,
        /// Field initialisers in declaration order.
        fields: Vec<(String, Expr)>,
    },
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience constructor for member access.
    pub fn member(target: Expr, field: impl Into<String>) -> Expr {
        Expr::Member {
            target: Box::new(target),
            field: field.into(),
        }
    }

    /// Walks the tree, calling `f` on every node (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Member { target, .. } => target.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Lambda { body, .. } => body.visit(f),
            Expr::Call { target, args, .. } => {
                target.visit(f);
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Constructor { fields, .. } => {
                for (_, e) in fields {
                    e.visit(f);
                }
            }
            Expr::Constant(_) | Expr::QueryParam(_) | Expr::Source(_) | Expr::Parameter(_) => {}
        }
    }

    /// Rebuilds the tree bottom-up through `f` (post-order map).
    pub fn transform(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Member { target, field } => Expr::Member {
                target: Box::new(target.transform(f)),
                field,
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(expr.transform(f)),
            },
            Expr::Lambda { param, body } => Expr::Lambda {
                param,
                body: Box::new(body.transform(f)),
            },
            Expr::Call {
                method,
                target,
                args,
                direction,
            } => Expr::Call {
                method,
                target: Box::new(target.transform(f)),
                args: args.into_iter().map(|a| a.transform(f)).collect(),
                direction,
            },
            Expr::Constructor { name, fields } => Expr::Constructor {
                name,
                fields: fields
                    .into_iter()
                    .map(|(n, e)| (n, e.transform(f)))
                    .collect(),
            },
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// Collects every distinct field name accessed on the given lambda
    /// parameter, following chained member accesses only one level (the
    /// source-mapping construction of the paper's Figure 6 walks deeper; the
    /// code generator handles that).
    pub fn fields_of_parameter(&self, param: &str) -> Vec<String> {
        let mut fields = Vec::new();
        self.visit(&mut |node| {
            if let Expr::Member { target, field } = node {
                if matches!(target.as_ref(), Expr::Parameter(p) if p == param)
                    && !fields.contains(field)
                {
                    fields.push(field.clone());
                }
            }
        });
        fields
    }

    /// Collects the sources referenced anywhere in the tree, in first-seen
    /// order.
    pub fn sources(&self) -> Vec<SourceId> {
        let mut out = Vec::new();
        self.visit(&mut |node| {
            if let Expr::Source(id) = node {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        });
        out
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Structural hash used as the query-cache key. Constants hash by value;
    /// [`Expr::QueryParam`] hashes by position only, which is what lets the
    /// cache reuse compiled code across parameter values.
    pub fn structural_hash(&self) -> u64 {
        let mut hasher = mrq_common::hash::FxHasher::default();
        self.hash_into(&mut hasher);
        hasher.finish()
    }

    fn hash_into<H: Hasher>(&self, h: &mut H) {
        std::mem::discriminant(self).hash(h);
        match self {
            Expr::Constant(v) => format!("{v:?}").hash(h),
            Expr::QueryParam(i) => i.hash(h),
            Expr::Source(id) => id.hash(h),
            Expr::Parameter(p) => p.hash(h),
            Expr::Member { target, field } => {
                field.hash(h);
                target.hash_into(h);
            }
            Expr::Binary { op, left, right } => {
                op.hash(h);
                left.hash_into(h);
                right.hash_into(h);
            }
            Expr::Unary { op, expr } => {
                op.hash(h);
                expr.hash_into(h);
            }
            Expr::Lambda { param, body } => {
                param.hash(h);
                body.hash_into(h);
            }
            Expr::Call {
                method,
                target,
                args,
                direction,
            } => {
                method.hash(h);
                direction.hash(h);
                target.hash_into(h);
                args.len().hash(h);
                for a in args {
                    a.hash_into(h);
                }
            }
            Expr::Constructor { name, fields } => {
                name.hash(h);
                fields.len().hash(h);
                for (n, e) in fields {
                    n.hash(h);
                    e.hash_into(h);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Renders a compact, C#-flavoured rendition of the tree, used in logs,
    /// generated-source comments and error messages.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Constant(v) => match v {
                Value::Str(s) => write!(f, "\"{s}\""),
                other => write!(f, "{other}"),
            },
            Expr::QueryParam(i) => write!(f, "@p{i}"),
            Expr::Source(id) => write!(f, "source_{}", id.0),
            Expr::Parameter(p) => write!(f, "{p}"),
            Expr::Member { target, field } => write!(f, "{target}.{field}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "!({expr})"),
                UnaryOp::Neg => write!(f, "-({expr})"),
            },
            Expr::Lambda { param, body } => write!(f, "{param} => {body}"),
            Expr::Call {
                method,
                target,
                args,
                direction,
            } => {
                let name: String = match (method, direction) {
                    (QueryMethod::OrderBy, SortDirection::Descending) => {
                        "OrderByDescending".to_string()
                    }
                    (QueryMethod::ThenBy, SortDirection::Descending) => {
                        "ThenByDescending".to_string()
                    }
                    (m, _) => format!("{m:?}"),
                };
                write!(f, "{target}.{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Constructor { name, fields } => {
                write!(f, "new {name} {{ ")?;
                for (i, (n, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} = {e}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{col, lit};

    fn sample_predicate() -> Expr {
        // s => s.Name == "London" && s.Population > 100
        Expr::Lambda {
            param: "s".into(),
            body: Box::new(Expr::binary(
                BinaryOp::And,
                Expr::binary(BinaryOp::Eq, col("s", "Name"), lit("London")),
                Expr::binary(BinaryOp::Gt, col("s", "Population"), lit(100i64)),
            )),
        }
    }

    #[test]
    fn display_reads_like_csharp() {
        assert_eq!(
            sample_predicate().to_string(),
            "s => ((s.Name == \"London\") && (s.Population > 100))"
        );
    }

    #[test]
    fn visit_counts_every_node() {
        // Lambda, And, Eq, Member, Parameter, Constant, Gt, Member,
        // Parameter, Constant.
        assert_eq!(sample_predicate().size(), 10);
    }

    #[test]
    fn fields_of_parameter_finds_accessed_members() {
        let fields = sample_predicate().fields_of_parameter("s");
        assert_eq!(fields, vec!["Name".to_string(), "Population".to_string()]);
        assert!(sample_predicate().fields_of_parameter("t").is_empty());
    }

    #[test]
    fn structural_hash_ignores_parameter_values_but_not_shape() {
        let a = Expr::binary(BinaryOp::Eq, col("s", "Name"), Expr::QueryParam(0));
        let b = Expr::binary(BinaryOp::Eq, col("s", "Name"), Expr::QueryParam(0));
        let c = Expr::binary(BinaryOp::Ne, col("s", "Name"), Expr::QueryParam(0));
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_ne!(a.structural_hash(), c.structural_hash());
        // Different constants produce different hashes (canonicalisation is
        // what replaces them with parameters first).
        let d = Expr::binary(BinaryOp::Eq, col("s", "Name"), lit("London"));
        let e = Expr::binary(BinaryOp::Eq, col("s", "Name"), lit("Paris"));
        assert_ne!(d.structural_hash(), e.structural_hash());
    }

    #[test]
    fn transform_rebuilds_bottom_up() {
        let expr = Expr::binary(BinaryOp::Add, lit(1i64), lit(2i64));
        let doubled = expr.transform(&mut |node| match node {
            Expr::Constant(Value::Int64(v)) => Expr::Constant(Value::Int64(v * 10)),
            other => other,
        });
        assert_eq!(doubled, Expr::binary(BinaryOp::Add, lit(10i64), lit(20i64)));
    }

    #[test]
    fn sources_are_collected_in_first_seen_order() {
        let expr = Expr::Call {
            method: QueryMethod::Join,
            target: Box::new(Expr::Source(SourceId(2))),
            args: vec![Expr::Source(SourceId(5)), Expr::Source(SourceId(2))],
            direction: SortDirection::Ascending,
        };
        assert_eq!(expr.sources(), vec![SourceId(2), SourceId(5)]);
    }

    #[test]
    fn agg_func_round_trips_through_method() {
        for agg in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Average,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            assert_eq!(AggFunc::from_method(agg.method()), Some(agg));
        }
        assert_eq!(AggFunc::from_method(QueryMethod::Where), None);
    }
}
