//! A fluent query builder.
//!
//! In C#, query syntax (`from s in source where ... select ...`) is sugar
//! that the compiler lowers to method calls with quoted lambdas. We have no
//! compiler hook, so [`Query`] plays that role: it assembles the same
//! [`Expr::Call`] chain the C# compiler would have produced. Small helper
//! functions ([`col`], [`lit`], [`param`], [`lam`]) keep lambda bodies
//! readable at call sites.

use crate::tree::{AggFunc, BinaryOp, Expr, QueryMethod, SortDirection, SourceId};
use mrq_common::Value;

/// A literal constant.
pub fn lit(value: impl Into<Value>) -> Expr {
    Expr::Constant(value.into())
}

/// An explicit query parameter (position `index`). Most queries simply embed
/// literals and let canonicalisation extract them; explicit parameters are
/// for statements that are reused with different bindings from the start.
pub fn param(index: usize) -> Expr {
    Expr::QueryParam(index)
}

/// A lambda parameter reference, e.g. `var("s")`.
pub fn var(name: &str) -> Expr {
    Expr::Parameter(name.to_string())
}

/// Member access on a lambda parameter: `col("s", "Name")` is `s.Name`.
pub fn col(param: &str, field: &str) -> Expr {
    Expr::member(var(param), field)
}

/// Member access on an arbitrary target expression.
pub fn member(target: Expr, field: &str) -> Expr {
    Expr::member(target, field)
}

/// A lambda `param => body`.
pub fn lam(param: &str, body: Expr) -> Expr {
    Expr::Lambda {
        param: param.to_string(),
        body: Box::new(body),
    }
}

/// An aggregate call over a group parameter, e.g.
/// `agg(AggFunc::Sum, "g", Some(lam("x", col("x", "Price"))))` for
/// `g.Sum(x => x.Price)`.
pub fn agg(func: AggFunc, group_param: &str, selector: Option<Expr>) -> Expr {
    Expr::Call {
        method: func.method(),
        target: Box::new(var(group_param)),
        args: selector.into_iter().collect(),
        direction: SortDirection::Ascending,
    }
}

/// String-method call: `str_method(QueryMethod::EndsWith, col("p", "p_type"),
/// lit("BRASS"))` is `p.p_type.EndsWith("BRASS")`.
pub fn str_method(method: QueryMethod, target: Expr, arg: Expr) -> Expr {
    debug_assert!(matches!(
        method,
        QueryMethod::StartsWith | QueryMethod::EndsWith | QueryMethod::Contains
    ));
    Expr::Call {
        method,
        target: Box::new(target),
        args: vec![arg],
        direction: SortDirection::Ascending,
    }
}

/// Shorthand for a conjunction of predicates. Returns `true` for an empty
/// slice.
pub fn and_all(mut predicates: Vec<Expr>) -> Expr {
    match predicates.len() {
        0 => lit(true),
        1 => predicates.pop().expect("len checked"),
        _ => {
            let mut iter = predicates.into_iter();
            let first = iter.next().expect("len checked");
            iter.fold(first, |acc, p| Expr::binary(BinaryOp::And, acc, p))
        }
    }
}

/// A fluent builder over an expression tree. Each combinator appends one
/// method-call node, exactly mirroring the operator chain LINQ would build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    expr: Expr,
}

impl Query {
    /// Starts a query over an input collection.
    pub fn from_source(source: SourceId) -> Query {
        Query {
            expr: Expr::Source(source),
        }
    }

    /// Wraps an existing expression tree.
    pub fn from_expr(expr: Expr) -> Query {
        Query { expr }
    }

    fn call(self, method: QueryMethod, args: Vec<Expr>, direction: SortDirection) -> Query {
        Query {
            expr: Expr::Call {
                method,
                target: Box::new(self.expr),
                args,
                direction,
            },
        }
    }

    /// `Where(predicate)`.
    pub fn where_(self, predicate: Expr) -> Query {
        self.call(
            QueryMethod::Where,
            vec![predicate],
            SortDirection::Ascending,
        )
    }

    /// `Select(selector)`.
    pub fn select(self, selector: Expr) -> Query {
        self.call(
            QueryMethod::Select,
            vec![selector],
            SortDirection::Ascending,
        )
    }

    /// `GroupBy(key_selector)`.
    pub fn group_by(self, key_selector: Expr) -> Query {
        self.call(
            QueryMethod::GroupBy,
            vec![key_selector],
            SortDirection::Ascending,
        )
    }

    /// `OrderBy(key_selector)`.
    pub fn order_by(self, key_selector: Expr) -> Query {
        self.call(
            QueryMethod::OrderBy,
            vec![key_selector],
            SortDirection::Ascending,
        )
    }

    /// `OrderByDescending(key_selector)`.
    pub fn order_by_desc(self, key_selector: Expr) -> Query {
        self.call(
            QueryMethod::OrderBy,
            vec![key_selector],
            SortDirection::Descending,
        )
    }

    /// `ThenBy(key_selector)`.
    pub fn then_by(self, key_selector: Expr) -> Query {
        self.call(
            QueryMethod::ThenBy,
            vec![key_selector],
            SortDirection::Ascending,
        )
    }

    /// `ThenByDescending(key_selector)`.
    pub fn then_by_desc(self, key_selector: Expr) -> Query {
        self.call(
            QueryMethod::ThenBy,
            vec![key_selector],
            SortDirection::Descending,
        )
    }

    /// `Take(n)`.
    pub fn take(self, n: i64) -> Query {
        self.call(QueryMethod::Take, vec![lit(n)], SortDirection::Ascending)
    }

    /// `Join(inner, outer_key, inner_key, result_selector)` — an equi-join
    /// with the given key selectors; `result_selector` is a two-parameter
    /// lambda encoded as nested lambdas `outer => inner => body`.
    pub fn join(
        self,
        inner: SourceId,
        outer_key: Expr,
        inner_key: Expr,
        result_selector: Expr,
    ) -> Query {
        self.call(
            QueryMethod::Join,
            vec![Expr::Source(inner), outer_key, inner_key, result_selector],
            SortDirection::Ascending,
        )
    }

    /// Joins against another query (e.g. an already-filtered collection).
    pub fn join_query(
        self,
        inner: Query,
        outer_key: Expr,
        inner_key: Expr,
        result_selector: Expr,
    ) -> Query {
        self.call(
            QueryMethod::Join,
            vec![inner.expr, outer_key, inner_key, result_selector],
            SortDirection::Ascending,
        )
    }

    /// Terminal `Sum(selector)` over the whole query.
    pub fn sum(self, selector: Expr) -> Query {
        self.call(QueryMethod::Sum, vec![selector], SortDirection::Ascending)
    }

    /// Terminal `Count()` over the whole query.
    pub fn count(self) -> Query {
        self.call(QueryMethod::Count, vec![], SortDirection::Ascending)
    }

    /// Terminal `First()`.
    pub fn first(self) -> Query {
        self.call(QueryMethod::First, vec![], SortDirection::Ascending)
    }

    /// Finishes building and returns the expression tree.
    pub fn into_expr(self) -> Expr {
        self.expr
    }

    /// Borrows the expression tree.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn where_select_builds_the_papers_example_tree() {
        // from s in source where s.Name == "London" select s.Population
        let q = Query::from_source(SourceId(0))
            .where_(lam(
                "s",
                Expr::binary(BinaryOp::Eq, col("s", "Name"), lit("London")),
            ))
            .select(lam("s", col("s", "Population")));
        let text = q.expr().to_string();
        assert_eq!(
            text,
            "source_0.Where(s => (s.Name == \"London\")).Select(s => s.Population)"
        );
        // Chain shape: Select(Where(Source)).
        match q.expr() {
            Expr::Call { method, target, .. } => {
                assert_eq!(*method, QueryMethod::Select);
                match target.as_ref() {
                    Expr::Call { method, target, .. } => {
                        assert_eq!(*method, QueryMethod::Where);
                        assert!(matches!(target.as_ref(), Expr::Source(SourceId(0))));
                    }
                    other => panic!("unexpected inner node {other:?}"),
                }
            }
            other => panic!("unexpected outer node {other:?}"),
        }
    }

    #[test]
    fn order_by_descending_sets_direction() {
        let q = Query::from_source(SourceId(1)).order_by_desc(lam("x", col("x", "revenue")));
        match q.expr() {
            Expr::Call { direction, .. } => assert_eq!(*direction, SortDirection::Descending),
            _ => panic!("expected a call node"),
        }
        assert!(q.expr().to_string().contains("OrderByDescending"));
    }

    #[test]
    fn join_embeds_the_inner_source_as_first_argument() {
        let q = Query::from_source(SourceId(0)).join(
            SourceId(1),
            lam("o", col("o", "custkey")),
            lam("c", col("c", "custkey")),
            lam("o", lam("c", col("c", "name"))),
        );
        match q.expr() {
            Expr::Call { method, args, .. } => {
                assert_eq!(*method, QueryMethod::Join);
                assert_eq!(args.len(), 4);
                assert!(matches!(args[0], Expr::Source(SourceId(1))));
            }
            _ => panic!("expected a call node"),
        }
    }

    #[test]
    fn and_all_folds_predicates() {
        assert_eq!(and_all(vec![]), lit(true));
        let one = Expr::binary(BinaryOp::Gt, col("s", "a"), lit(1i64));
        assert_eq!(and_all(vec![one.clone()]), one.clone());
        let two = and_all(vec![
            one.clone(),
            Expr::binary(BinaryOp::Lt, col("s", "b"), lit(2i64)),
        ]);
        assert!(matches!(
            two,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn agg_builds_group_method_calls() {
        let e = agg(AggFunc::Sum, "g", Some(lam("x", col("x", "Price"))));
        assert_eq!(e.to_string(), "g.Sum(x => x.Price)");
        let c = agg(AggFunc::Count, "g", None);
        assert_eq!(c.to_string(), "g.Count()");
    }
}
