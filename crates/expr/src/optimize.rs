//! Heuristic rewrites over LINQ-style expression trees.
//!
//! §2.3 of the paper ("Limited query optimization") points out that
//! LINQ-to-objects evaluates the operator chain exactly as written: it never
//! pushes selections below joins, never reorders predicates by cost, and the
//! programmer has to hand-optimise queries to get an efficient evaluation
//! order (the paper measures a 35 % improvement from manually pushing the
//! selections of TPC-H Q3 below its join). A query provider that compiles
//! queries is the natural place to apply such rewrites automatically; this
//! module implements the heuristic, schema-free subset the paper calls out:
//!
//! * **selection push-down** — a `Where` that follows a `Join`, `Select` or
//!   `OrderBy` is moved as close to the data source as its column references
//!   allow (through the join's result selector, through projections, past
//!   sorts);
//! * **predicate reordering** — conjuncts inside one `Where` are reordered so
//!   cheap comparisons run before expensive string predicates;
//! * **`Where` chain fusion** — adjacent `Where` calls collapse into one so
//!   the reordering above sees the whole conjunction.
//!
//! All rewrites are pure tree-to-tree transformations applied before
//! canonicalisation; they never change query results, only evaluation order.

use crate::tree::{BinaryOp, Expr, QueryMethod, SortDirection};

/// Which rewrites to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Move `Where` operators towards the data sources.
    pub push_down_selections: bool,
    /// Order conjuncts cheapest-first within each `Where`.
    pub reorder_predicates: bool,
    /// Collapse adjacent `Where` calls into a single conjunction.
    pub fuse_filters: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            push_down_selections: true,
            reorder_predicates: true,
            fuse_filters: true,
        }
    }
}

impl OptimizerConfig {
    /// A configuration with every rewrite disabled (the LINQ-to-objects
    /// behaviour of evaluating the chain exactly as written).
    pub fn disabled() -> Self {
        OptimizerConfig {
            push_down_selections: false,
            reorder_predicates: false,
            fuse_filters: false,
        }
    }
}

/// One applied rewrite, for `EXPLAIN`-style reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rewrite {
    /// A selection was pushed below a join onto its outer (probe) input.
    PushedBelowJoinOuter(String),
    /// A selection was pushed below a join onto its inner (build) input.
    PushedBelowJoinInner(String),
    /// A selection was pushed below a projection.
    PushedBelowSelect(String),
    /// A selection was moved below an `OrderBy`/`ThenBy`.
    PushedBelowOrderBy(String),
    /// Conjuncts of a selection were reordered cheapest-first.
    ReorderedPredicates(String),
    /// Two adjacent selections were fused into one.
    FusedFilters(String),
}

impl std::fmt::Display for Rewrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rewrite::PushedBelowJoinOuter(p) => write!(f, "pushed below join (outer side): {p}"),
            Rewrite::PushedBelowJoinInner(p) => write!(f, "pushed below join (inner side): {p}"),
            Rewrite::PushedBelowSelect(p) => write!(f, "pushed below projection: {p}"),
            Rewrite::PushedBelowOrderBy(p) => write!(f, "moved below sort: {p}"),
            Rewrite::ReorderedPredicates(p) => write!(f, "reordered conjuncts: {p}"),
            Rewrite::FusedFilters(p) => write!(f, "fused adjacent filters: {p}"),
        }
    }
}

/// The result of optimisation: the rewritten tree and the applied rewrites.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The rewritten expression tree.
    pub expr: Expr,
    /// The rewrites that were applied, in application order.
    pub rewrites: Vec<Rewrite>,
}

/// Applies the configured rewrites until no more apply (bounded fixpoint).
pub fn optimize(expr: Expr, config: OptimizerConfig) -> Optimized {
    let mut rewrites = Vec::new();
    let mut current = expr;
    // Each pass applies at most one structural change per node; a handful of
    // passes reaches the fixpoint for any realistic operator chain. The bound
    // protects against pathological trees.
    for _ in 0..32 {
        let before = rewrites.len();
        if config.fuse_filters {
            current = fuse_filters(current, &mut rewrites);
        }
        if config.push_down_selections {
            current = push_down(current, &mut rewrites);
        }
        if rewrites.len() == before {
            break;
        }
    }
    if config.reorder_predicates {
        current = reorder_predicates(current, &mut rewrites);
    }
    Optimized {
        expr: current,
        rewrites,
    }
}

// ---------------------------------------------------------------------------
// Where-chain fusion
// ---------------------------------------------------------------------------

/// Collapses `x.Where(p1).Where(p2)` into `x.Where(p1 && p2)`.
fn fuse_filters(expr: Expr, rewrites: &mut Vec<Rewrite>) -> Expr {
    expr.transform(&mut |node| {
        let Expr::Call {
            method: QueryMethod::Where,
            target,
            args,
            direction,
        } = node
        else {
            return node;
        };
        let Expr::Call {
            method: QueryMethod::Where,
            target: inner_target,
            args: inner_args,
            ..
        } = *target
        else {
            return Expr::Call {
                method: QueryMethod::Where,
                target,
                args,
                direction,
            };
        };
        let (Some(outer_pred), Some(inner_pred)) = (args.first(), inner_args.first()) else {
            return Expr::Call {
                method: QueryMethod::Where,
                target: Box::new(Expr::Call {
                    method: QueryMethod::Where,
                    target: inner_target,
                    args: inner_args,
                    direction,
                }),
                args,
                direction,
            };
        };
        let (
            Expr::Lambda {
                param: outer_param,
                body: outer_body,
            },
            Expr::Lambda {
                param: inner_param,
                body: inner_body,
            },
        ) = (outer_pred, inner_pred)
        else {
            return Expr::Call {
                method: QueryMethod::Where,
                target: Box::new(Expr::Call {
                    method: QueryMethod::Where,
                    target: inner_target,
                    args: inner_args,
                    direction,
                }),
                args,
                direction,
            };
        };
        // Rename the outer lambda's parameter to the inner one so both
        // conjuncts see the same element variable.
        let renamed = substitute_parameter(
            outer_body.as_ref().clone(),
            outer_param,
            &Expr::Parameter(inner_param.clone()),
        );
        let fused = Expr::Lambda {
            param: inner_param.clone(),
            body: Box::new(Expr::binary(
                BinaryOp::And,
                inner_body.as_ref().clone(),
                renamed,
            )),
        };
        rewrites.push(Rewrite::FusedFilters(fused.to_string()));
        Expr::Call {
            method: QueryMethod::Where,
            target: inner_target,
            args: vec![fused],
            direction: SortDirection::Ascending,
        }
    })
}

// ---------------------------------------------------------------------------
// Selection push-down
// ---------------------------------------------------------------------------

/// Pushes `Where` operators below `Join`, `Select` and `OrderBy`/`ThenBy`
/// wherever the predicate's references allow.
fn push_down(expr: Expr, rewrites: &mut Vec<Rewrite>) -> Expr {
    expr.transform(&mut |node| {
        let Expr::Call {
            method: QueryMethod::Where,
            target,
            args,
            direction,
        } = node
        else {
            return node;
        };
        let rebuilt = |target: Box<Expr>, args: Vec<Expr>| Expr::Call {
            method: QueryMethod::Where,
            target,
            args,
            direction,
        };
        let Some(Expr::Lambda { param, body }) = args.first().cloned() else {
            return rebuilt(target, args);
        };
        match *target {
            // Where over Join: split the predicate into conjuncts, route each
            // conjunct through the join's result selector, and push it onto
            // whichever input it exclusively references. Conjuncts that need
            // both sides stay above the join.
            Expr::Call {
                method: QueryMethod::Join,
                target: outer,
                args: mut join_args,
                direction: join_dir,
            } => {
                let mut conjuncts = Vec::new();
                split_conjuncts(body.as_ref().clone(), &mut conjuncts);
                let mut outer_preds = Vec::new();
                let mut inner_preds = Vec::new();
                let mut remaining = Vec::new();
                let selector = join_args.get(3).cloned();
                for conjunct in conjuncts {
                    match selector
                        .as_ref()
                        .and_then(|sel| route_through_join_selector(&conjunct, &param, sel))
                    {
                        Some(RoutedPredicate::Outer(pred)) => outer_preds.push(pred),
                        Some(RoutedPredicate::Inner(pred)) => inner_preds.push(pred),
                        None => remaining.push(conjunct),
                    }
                }
                if outer_preds.is_empty() && inner_preds.is_empty() {
                    return rebuilt(
                        Box::new(Expr::Call {
                            method: QueryMethod::Join,
                            target: outer,
                            args: join_args,
                            direction: join_dir,
                        }),
                        args,
                    );
                }
                let mut outer = outer;
                for pred in outer_preds {
                    rewrites.push(Rewrite::PushedBelowJoinOuter(pred.to_string()));
                    outer = Box::new(Expr::Call {
                        method: QueryMethod::Where,
                        target: outer,
                        args: vec![pred],
                        direction: SortDirection::Ascending,
                    });
                }
                for pred in inner_preds {
                    rewrites.push(Rewrite::PushedBelowJoinInner(pred.to_string()));
                    let inner = join_args[0].clone();
                    join_args[0] = Expr::Call {
                        method: QueryMethod::Where,
                        target: Box::new(inner),
                        args: vec![pred],
                        direction: SortDirection::Ascending,
                    };
                }
                let join = Expr::Call {
                    method: QueryMethod::Join,
                    target: outer,
                    args: join_args,
                    direction: join_dir,
                };
                match remaining
                    .into_iter()
                    .reduce(|acc, p| Expr::binary(BinaryOp::And, acc, p))
                {
                    Some(rest) => Expr::Call {
                        method: QueryMethod::Where,
                        target: Box::new(join),
                        args: vec![Expr::Lambda {
                            param,
                            body: Box::new(rest),
                        }],
                        direction: SortDirection::Ascending,
                    },
                    None => join,
                }
            }
            // Where over Select: substitute the projection into the predicate
            // and filter the projection's input instead.
            Expr::Call {
                method: QueryMethod::Select,
                target: select_target,
                args: select_args,
                direction: select_dir,
            } => {
                let substituted = select_args
                    .first()
                    .and_then(|sel| substitute_through_selector(body.as_ref(), &param, sel));
                match substituted {
                    Some(pred) => {
                        rewrites.push(Rewrite::PushedBelowSelect(pred.to_string()));
                        Expr::Call {
                            method: QueryMethod::Select,
                            target: Box::new(Expr::Call {
                                method: QueryMethod::Where,
                                target: select_target,
                                args: vec![pred],
                                direction: SortDirection::Ascending,
                            }),
                            args: select_args,
                            direction: select_dir,
                        }
                    }
                    None => rebuilt(
                        Box::new(Expr::Call {
                            method: QueryMethod::Select,
                            target: select_target,
                            args: select_args,
                            direction: select_dir,
                        }),
                        args,
                    ),
                }
            }
            // Where over OrderBy/ThenBy: filtering commutes with sorting, and
            // filtering first sorts fewer elements.
            Expr::Call {
                method: method @ (QueryMethod::OrderBy | QueryMethod::ThenBy),
                target: sort_target,
                args: sort_args,
                direction: sort_dir,
            } => {
                let pred = Expr::Lambda {
                    param: param.clone(),
                    body,
                };
                rewrites.push(Rewrite::PushedBelowOrderBy(pred.to_string()));
                Expr::Call {
                    method,
                    target: Box::new(Expr::Call {
                        method: QueryMethod::Where,
                        target: sort_target,
                        args: vec![pred],
                        direction: SortDirection::Ascending,
                    }),
                    args: sort_args,
                    direction: sort_dir,
                }
            }
            other => rebuilt(Box::new(other), args),
        }
    })
}

/// A predicate rewritten against one side of a join.
enum RoutedPredicate {
    /// References only the outer (probe) element.
    Outer(Expr),
    /// References only the inner (build) element.
    Inner(Expr),
}

/// Routes a predicate over a join's result element through the join's result
/// selector (`outer => inner => new R { ... }`). Returns the predicate
/// re-expressed against the outer or inner element if it references only one
/// of them.
fn route_through_join_selector(
    body: &Expr,
    where_param: &str,
    selector: &Expr,
) -> Option<RoutedPredicate> {
    let Expr::Lambda {
        param: outer_param,
        body: inner_lambda,
    } = selector
    else {
        return None;
    };
    let Expr::Lambda {
        param: inner_param,
        body: construct,
    } = inner_lambda.as_ref()
    else {
        return None;
    };
    let substituted = substitute_members_through(body.clone(), where_param, construct.as_ref())?;
    let uses_outer = references_parameter(&substituted, outer_param);
    let uses_inner = references_parameter(&substituted, inner_param);
    match (uses_outer, uses_inner) {
        (true, false) => Some(RoutedPredicate::Outer(Expr::Lambda {
            param: outer_param.clone(),
            body: Box::new(substituted),
        })),
        (false, true) => Some(RoutedPredicate::Inner(Expr::Lambda {
            param: inner_param.clone(),
            body: Box::new(substituted),
        })),
        _ => None,
    }
}

/// Substitutes a predicate over a projection's result through the
/// projection's selector, producing a predicate over the projection's input.
fn substitute_through_selector(body: &Expr, where_param: &str, selector: &Expr) -> Option<Expr> {
    let Expr::Lambda {
        param: select_param,
        body: select_body,
    } = selector
    else {
        return None;
    };
    match select_body.as_ref() {
        // Projection to a record: route member accesses through the record's
        // field initialisers.
        Expr::Constructor { .. } => {
            let substituted =
                substitute_members_through(body.clone(), where_param, select_body.as_ref())?;
            Some(Expr::Lambda {
                param: select_param.clone(),
                body: Box::new(substituted),
            })
        }
        // Identity projection (`Select(x => x)`).
        Expr::Parameter(p) if p == select_param => Some(Expr::Lambda {
            param: select_param.clone(),
            body: Box::new(substitute_parameter(
                body.clone(),
                where_param,
                &Expr::Parameter(select_param.clone()),
            )),
        }),
        _ => None,
    }
}

/// Replaces every `param.field` access in `body` with the corresponding field
/// initialiser of `construct` (which must be a [`Expr::Constructor`]).
/// Returns `None` if the body accesses a field the constructor does not
/// provide, uses the parameter in a non-member position, or the target is not
/// a constructor.
fn substitute_members_through(body: Expr, param: &str, construct: &Expr) -> Option<Expr> {
    let Expr::Constructor { fields, .. } = construct else {
        return None;
    };
    let mut failed = false;
    let substituted = body.transform(&mut |node| match node {
        Expr::Member { target, field } if matches!(target.as_ref(), Expr::Parameter(p) if p == param) => {
            match fields.iter().find(|(name, _)| *name == field) {
                Some((_, init)) => init.clone(),
                None => {
                    failed = true;
                    Expr::Member { target, field }
                }
            }
        }
        other => other,
    });
    // Any remaining bare reference to the parameter means the predicate used
    // the whole element (e.g. passed it to a method); give up.
    if failed || references_parameter(&substituted, param) {
        return None;
    }
    Some(substituted)
}

/// Replaces every reference to parameter `param` with `replacement`.
fn substitute_parameter(body: Expr, param: &str, replacement: &Expr) -> Expr {
    body.transform(&mut |node| match node {
        Expr::Parameter(p) if p == param => replacement.clone(),
        other => other,
    })
}

/// True if the expression references the named lambda parameter.
fn references_parameter(expr: &Expr, param: &str) -> bool {
    let mut found = false;
    expr.visit(&mut |node| {
        if matches!(node, Expr::Parameter(p) if p == param) {
            found = true;
        }
    });
    found
}

// ---------------------------------------------------------------------------
// Predicate reordering
// ---------------------------------------------------------------------------

/// Estimated per-element cost of evaluating a predicate conjunct. The scale
/// is arbitrary; only the ordering matters: integer/date comparisons are
/// cheapest, string equality costs more, substring searches cost the most,
/// and nested arithmetic adds to whatever it feeds.
pub fn predicate_cost(expr: &Expr) -> u32 {
    let mut cost = 0u32;
    expr.visit(&mut |node| {
        cost += match node {
            Expr::Binary { op, .. } if op.is_comparison() || op.is_logical() => 1,
            Expr::Binary { .. } => 2, // arithmetic feeding the comparison
            Expr::Unary { .. } => 1,
            Expr::Constant(v) if v.as_str().is_some() => 4, // string comparison
            Expr::Call {
                method: QueryMethod::StartsWith | QueryMethod::EndsWith,
                ..
            } => 8,
            Expr::Call {
                method: QueryMethod::Contains,
                ..
            } => 12,
            Expr::Call { .. } => 4,
            _ => 0,
        };
    });
    cost
}

/// Splits a conjunction into its conjuncts.
fn split_conjuncts(expr: Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

/// Reorders conjuncts inside every `Where` lambda so estimated-cheap
/// predicates evaluate first (stable for equal costs).
fn reorder_predicates(expr: Expr, rewrites: &mut Vec<Rewrite>) -> Expr {
    expr.transform(&mut |node| {
        let Expr::Call {
            method: QueryMethod::Where,
            target,
            mut args,
            direction,
        } = node
        else {
            return node;
        };
        if let Some(Expr::Lambda { param, body }) = args.first().cloned() {
            let mut conjuncts = Vec::new();
            split_conjuncts(*body, &mut conjuncts);
            if conjuncts.len() > 1 {
                let costs: Vec<u32> = conjuncts.iter().map(predicate_cost).collect();
                let mut order: Vec<usize> = (0..conjuncts.len()).collect();
                order.sort_by_key(|&i| (costs[i], i));
                if order.iter().enumerate().any(|(pos, &i)| pos != i) {
                    let reordered: Vec<Expr> =
                        order.iter().map(|&i| conjuncts[i].clone()).collect();
                    let body = reordered
                        .into_iter()
                        .reduce(|acc, p| Expr::binary(BinaryOp::And, acc, p))
                        .expect("at least two conjuncts");
                    let lambda = Expr::Lambda {
                        param,
                        body: Box::new(body),
                    };
                    rewrites.push(Rewrite::ReorderedPredicates(lambda.to_string()));
                    args[0] = lambda;
                }
            }
        }
        Expr::Call {
            method: QueryMethod::Where,
            target,
            args,
            direction,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{col, lam, lit, str_method, Query};
    use crate::tree::SourceId;

    fn where_count_below_join(expr: &Expr) -> (usize, usize) {
        // Returns (filters inside join arguments or below the join target,
        // filters above the join).
        let mut below = 0;
        let mut above = 0;
        let mut saw_join = false;
        // Walk the operator chain outermost-first.
        let mut cursor = expr;
        let mut above_chain = true;
        loop {
            match cursor {
                Expr::Call {
                    method: QueryMethod::Join,
                    target,
                    args,
                    ..
                } => {
                    saw_join = true;
                    above_chain = false;
                    // Filters inside the inner argument count as pushed down.
                    if let Some(inner) = args.first() {
                        inner.visit(&mut |n| {
                            if matches!(
                                n,
                                Expr::Call {
                                    method: QueryMethod::Where,
                                    ..
                                }
                            ) {
                                below += 1;
                            }
                        });
                    }
                    cursor = target;
                }
                Expr::Call {
                    method: QueryMethod::Where,
                    target,
                    ..
                } => {
                    if above_chain {
                        above += 1;
                    } else {
                        below += 1;
                    }
                    cursor = target;
                }
                Expr::Call { target, .. } => cursor = target,
                _ => break,
            }
        }
        assert!(saw_join, "query under test must contain a join");
        (below, above)
    }

    fn naive_join() -> Expr {
        // lineitem.Join(orders, ...).Where(r => r.o_total > 100).Where(r => r.l_qty < 5)
        Query::from_source(SourceId(0))
            .join_query(
                Query::from_source(SourceId(1)),
                lam("l", col("l", "l_orderkey")),
                lam("o", col("o", "o_orderkey")),
                lam(
                    "l",
                    lam(
                        "o",
                        Expr::Constructor {
                            name: "LO".into(),
                            fields: vec![
                                ("l_qty".into(), col("l", "l_quantity")),
                                ("l_orderkey".into(), col("l", "l_orderkey")),
                                ("o_total".into(), col("o", "o_totalprice")),
                            ],
                        },
                    ),
                ),
            )
            .where_(lam(
                "r",
                Expr::binary(BinaryOp::Gt, col("r", "o_total"), lit(100i64)),
            ))
            .where_(lam(
                "r",
                Expr::binary(BinaryOp::Lt, col("r", "l_qty"), lit(5i64)),
            ))
            .into_expr()
    }

    #[test]
    fn selections_after_a_join_are_pushed_onto_both_sides() {
        let optimized = optimize(naive_join(), OptimizerConfig::default());
        let (below, above) = where_count_below_join(&optimized.expr);
        assert_eq!(
            above, 0,
            "no filter should remain above the join:\n{}",
            optimized.expr
        );
        assert_eq!(below, 2, "both filters push down:\n{}", optimized.expr);
        assert!(optimized
            .rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::PushedBelowJoinInner(_))));
        assert!(optimized
            .rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::PushedBelowJoinOuter(_))));
    }

    #[test]
    fn disabled_config_is_the_identity() {
        let expr = naive_join();
        let optimized = optimize(expr.clone(), OptimizerConfig::disabled());
        assert_eq!(optimized.expr, expr);
        assert!(optimized.rewrites.is_empty());
    }

    #[test]
    fn mixed_reference_predicates_stay_above_the_join() {
        let expr = Query::from_source(SourceId(0))
            .join_query(
                Query::from_source(SourceId(1)),
                lam("l", col("l", "k")),
                lam("o", col("o", "k")),
                lam(
                    "l",
                    lam(
                        "o",
                        Expr::Constructor {
                            name: "LO".into(),
                            fields: vec![("a".into(), col("l", "a")), ("b".into(), col("o", "b"))],
                        },
                    ),
                ),
            )
            .where_(lam(
                "r",
                Expr::binary(BinaryOp::Gt, col("r", "a"), col("r", "b")),
            ))
            .into_expr();
        let optimized = optimize(expr, OptimizerConfig::default());
        let (below, above) = where_count_below_join(&optimized.expr);
        assert_eq!((below, above), (0, 1));
    }

    #[test]
    fn selection_pushes_through_projection_and_sort() {
        let expr = Query::from_source(SourceId(0))
            .order_by(lam("s", col("s", "price")))
            .select(lam(
                "s",
                Expr::Constructor {
                    name: "P".into(),
                    fields: vec![("double_price".into(), {
                        Expr::binary(BinaryOp::Add, col("s", "price"), col("s", "price"))
                    })],
                },
            ))
            .where_(lam(
                "p",
                Expr::binary(BinaryOp::Gt, col("p", "double_price"), lit(10i64)),
            ))
            .into_expr();
        let optimized = optimize(expr, OptimizerConfig::default());
        // The filter must now sit directly on the source, below both the
        // projection and the sort.
        let text = optimized.expr.to_string();
        assert!(
            text.starts_with("source_0.Where"),
            "filter should reach the source: {text}"
        );
        assert!(optimized
            .rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::PushedBelowSelect(_))));
        assert!(optimized
            .rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::PushedBelowOrderBy(_))));
    }

    #[test]
    fn predicate_referencing_missing_field_is_not_pushed_through_select() {
        let expr = Query::from_source(SourceId(0))
            .select(lam(
                "s",
                Expr::Constructor {
                    name: "P".into(),
                    fields: vec![("a".into(), col("s", "a"))],
                },
            ))
            .where_(lam(
                "p",
                Expr::binary(BinaryOp::Gt, col("p", "missing"), lit(1i64)),
            ))
            .into_expr();
        let optimized = optimize(expr.clone(), OptimizerConfig::default());
        assert_eq!(optimized.expr, expr);
    }

    #[test]
    fn adjacent_filters_fuse_and_reorder_cheapest_first() {
        let expr = Query::from_source(SourceId(0))
            .where_(lam(
                "s",
                str_method(QueryMethod::Contains, col("s", "comment"), lit("special")),
            ))
            .where_(lam(
                "s",
                Expr::binary(BinaryOp::Lt, col("s", "qty"), lit(10i64)),
            ))
            .into_expr();
        let optimized = optimize(
            expr,
            OptimizerConfig {
                push_down_selections: false,
                ..OptimizerConfig::default()
            },
        );
        // One fused Where whose first conjunct is the cheap integer
        // comparison.
        let text = optimized.expr.to_string();
        assert_eq!(text.matches(".Where(").count(), 1, "{text}");
        let qty_pos = text.find("qty").expect("qty conjunct present");
        let contains_pos = text.find("Contains").expect("Contains conjunct present");
        assert!(
            qty_pos < contains_pos,
            "cheap conjunct must come first: {text}"
        );
        assert!(optimized
            .rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::FusedFilters(_))));
        assert!(optimized
            .rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::ReorderedPredicates(_))));
    }

    #[test]
    fn string_predicates_cost_more_than_integer_comparisons() {
        let cheap = Expr::binary(BinaryOp::Lt, col("s", "qty"), lit(10i64));
        let medium = Expr::binary(BinaryOp::Eq, col("s", "name"), lit("BUILDING"));
        let expensive = str_method(QueryMethod::Contains, col("s", "comment"), lit("x"));
        assert!(predicate_cost(&cheap) < predicate_cost(&medium));
        assert!(predicate_cost(&medium) < predicate_cost(&expensive));
    }

    #[test]
    fn rewrites_render_for_explain_output() {
        let optimized = optimize(naive_join(), OptimizerConfig::default());
        assert!(!optimized.rewrites.is_empty());
        for rewrite in &optimized.rewrites {
            assert!(!rewrite.to_string().is_empty());
        }
    }

    #[test]
    fn optimizer_terminates_on_deep_filter_chains() {
        let mut q = Query::from_source(SourceId(0));
        for i in 0..40i64 {
            q = q.where_(lam("s", Expr::binary(BinaryOp::Gt, col("s", "v"), lit(i))));
        }
        let optimized = optimize(q.into_expr(), OptimizerConfig::default());
        let text = optimized.expr.to_string();
        assert_eq!(text.matches(".Where(").count(), 1);
    }
}
