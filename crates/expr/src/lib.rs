//! LINQ-style expression trees, the query builder, canonicalisation and the
//! query cache.
//!
//! In the paper, a LINQ query statement is captured by the C# compiler as an
//! *expression tree* (§2.2, Figure 1): a `MethodCallExpression` chain whose
//! lambda arguments are themselves little ASTs. The custom query provider
//! then (§3):
//!
//! 1. evaluates constant sub-trees to put the tree in canonical form
//!    (`ConstantEvaluator`),
//! 2. consults a cache of already-compiled queries keyed by the canonical
//!    tree, treating embedded literals as parameters so the same compiled
//!    code is reused across parameter values (`QueryCache`), and
//! 3. hands the tree to the code generators.
//!
//! This crate reproduces that front half: [`Expr`] is the tree, [`Query`] is
//! the fluent builder standing in for the C# query syntax, [`canonical`]
//! contains constant folding and parameter extraction, and [`cache`] holds
//! the compiled-query cache.

#![warn(missing_docs)]

pub mod builder;
pub mod cache;
pub mod canonical;
pub mod optimize;
pub mod tree;

pub use builder::{and_all, col, lam, lit, member, param, str_method, var, Query};
pub use cache::QueryCache;
pub use canonical::{canonicalize, fold_constants, CanonicalQuery};
pub use optimize::{optimize, Optimized, OptimizerConfig, Rewrite};
pub use tree::{AggFunc, BinaryOp, Expr, QueryMethod, SortDirection, SourceId, UnaryOp};
