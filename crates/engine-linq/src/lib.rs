//! The LINQ-to-objects baseline (§2): a pull-based enumerable pipeline over
//! managed objects.
//!
//! This engine deliberately reproduces the execution paradigm whose
//! inefficiencies §2.3 of the paper catalogues:
//!
//! * every operator is its own boxed iterator (`MoveNext`-style dynamic
//!   dispatch per element per operator),
//! * predicates, selectors and key extractors are interpreted delegates that
//!   box every intermediate into a dynamic [`Value`],
//! * operators do not cooperate: `GroupBy` materialises each group, and
//!   **every aggregate of a group is computed in its own pass** over the
//!   group's elements,
//! * `OrderBy` sorts its entire input even when a `Take` follows,
//! * join results and intermediate records are materialised per element.
//!
//! The compiled strategies (the other engine crates) remove exactly these
//! overheads, which is what the paper's figures measure.

#![warn(missing_docs)]

use mrq_codegen::exec::{QueryOutput, TableAccess};
use mrq_codegen::spec::{AggSpec, OutputExpr, QuerySpec, ScalarExpr, StrOp};
use mrq_common::hash::FxHashMap;
use mrq_common::{DataType, MrqError, Result, Value, WorkCounters};
use mrq_expr::AggFunc;
use std::cell::Cell;
use std::rc::Rc;

/// One element flowing through the enumerable pipeline: the row index of the
/// object in each joined slot (a single-source element only uses slot 0).
#[derive(Clone)]
enum Item {
    Single(usize),
    Joined(Rc<Vec<usize>>),
}

impl Item {
    fn row(&self, slot: usize) -> usize {
        match self {
            Item::Single(r) => {
                debug_assert_eq!(slot, 0, "single-source element probed for slot {slot}");
                *r
            }
            Item::Joined(rows) => rows[slot],
        }
    }
}

type Pipe<'a> = Box<dyn Iterator<Item = Item> + 'a>;

/// Interprets a scalar expression against one pipeline element, boxing the
/// result as a [`Value`] — the per-element delegate-invocation overhead of
/// the baseline.
fn eval<T: TableAccess>(expr: &ScalarExpr, tables: &[&T], item: &Item, params: &[Value]) -> Value {
    match expr {
        ScalarExpr::Column(c) => tables[c.slot].get_value(item.row(c.slot), c.col),
        ScalarExpr::Const(v) => v.clone(),
        ScalarExpr::Param(i) => params[*i].clone(),
        ScalarExpr::Binary { op, left, right } => {
            let l = eval(left, tables, item, params);
            let r = eval(right, tables, item, params);
            mrq_expr::canonical::eval_binary(*op, &l, &r).unwrap_or(Value::Null)
        }
        ScalarExpr::Unary { op, expr } => {
            let v = eval(expr, tables, item, params);
            mrq_expr::canonical::eval_unary(*op, &v).unwrap_or(Value::Null)
        }
        ScalarExpr::Str { op, target, arg } => {
            let t = eval(target, tables, item, params);
            let a = eval(arg, tables, item, params);
            let out = match (t.as_str(), a.as_str()) {
                (Some(t), Some(a)) => match op {
                    StrOp::StartsWith => t.starts_with(a),
                    StrOp::EndsWith => t.ends_with(a),
                    StrOp::Contains => t.contains(a),
                },
                _ => false,
            };
            Value::Bool(out)
        }
    }
}

/// Computes one aggregate over a materialised group with its own full pass —
/// the paper's headline LINQ-to-objects inefficiency.
fn aggregate_pass<T: TableAccess>(
    agg: &AggSpec,
    group: &[Item],
    tables: &[&T],
    params: &[Value],
) -> Value {
    match agg.func {
        AggFunc::Count => Value::Int64(group.len() as i64),
        AggFunc::Sum => {
            let input = agg.input.as_ref().expect("sum needs a selector");
            match agg.dtype {
                DataType::Decimal => {
                    let mut total = mrq_common::Decimal::ZERO;
                    for item in group {
                        if let Some(d) = eval(input, tables, item, params).as_decimal() {
                            total += d;
                        }
                    }
                    Value::Decimal(total)
                }
                DataType::Float64 => {
                    let mut total = 0.0;
                    for item in group {
                        total += eval(input, tables, item, params).as_f64().unwrap_or(0.0);
                    }
                    Value::Float64(total)
                }
                _ => {
                    let mut total = 0i64;
                    for item in group {
                        total += eval(input, tables, item, params).as_i64().unwrap_or(0);
                    }
                    Value::Int64(total)
                }
            }
        }
        AggFunc::Average => {
            let input = agg.input.as_ref().expect("average needs a selector");
            // LINQ computes the count again for every aggregate rather than
            // sharing it (§2.3); reproduce that redundant pass.
            let count = group.len() as f64;
            if group.is_empty() {
                return Value::Null;
            }
            // Decimal averages accumulate exactly in fixed point (matching
            // the compiled engines, whose parallel merges rely on the
            // associativity of the exact sum); other inputs sum as f64.
            if agg.input_dtype == Some(DataType::Decimal) {
                let mut total = mrq_common::Decimal::ZERO;
                for item in group {
                    if let Some(d) = eval(input, tables, item, params).as_decimal() {
                        total += d;
                    }
                }
                return Value::Float64(total.to_f64() / count);
            }
            let mut total = 0.0;
            for item in group {
                total += eval(input, tables, item, params).as_f64().unwrap_or(0.0);
            }
            Value::Float64(total / count)
        }
        AggFunc::Min | AggFunc::Max => {
            let input = agg.input.as_ref().expect("min/max needs a selector");
            let mut best: Option<Value> = None;
            for item in group {
                let v = eval(input, tables, item, params);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        let ord = v.total_cmp(b);
                        if agg.func == AggFunc::Min {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        }
                    }
                };
                if better {
                    best = Some(v);
                }
            }
            best.unwrap_or(Value::Null)
        }
    }
}

/// Executes a query spec with the LINQ-to-objects strategy. `tables[0]` is
/// the root collection; the rest follow `spec.joins` order.
pub fn execute<T: TableAccess>(
    spec: &QuerySpec,
    params: &[Value],
    tables: &[&T],
) -> Result<QueryOutput> {
    mrq_common::fault::point("engine.linq.scan")?;
    if tables.len() != spec.joins.len() + 1 {
        return Err(MrqError::Internal(format!(
            "expected {} tables, got {}",
            spec.joins.len() + 1,
            tables.len()
        )));
    }
    spec.check_params(params)?;
    let take = spec.effective_take(params)?;
    let slots = spec.joins.len() + 1;

    // Deterministic work accounting (`mrq_common::workcount`): the pipeline
    // closures below share these counters by reference, and the totals land
    // on the output. `Cell`s rather than a mutable borrow because several
    // boxed operator closures are alive at once.
    let rows_scanned = Cell::new(0u64);
    let probe_lookups = Cell::new(0u64);
    let key_comparisons = Cell::new(0u64);
    let rows_materialized = Cell::new(0u64);
    let mut build_inserts = 0u64;
    let scanned = &rows_scanned;

    // Source enumerable. The baseline pipeline has no morsels, so the
    // source itself is the cooperative cancellation point: at the shared
    // workspace cadence it checks the current scope's token (a no-op for
    // plain, unsubmitted execution).
    let mut enumerated = 0usize;
    let mut pipe: Pipe<'_> = Box::new((0..tables[0].len()).map(Item::Single).inspect(move |_| {
        scanned.set(scanned.get() + 1);
        enumerated += 1;
        if enumerated.is_multiple_of(mrq_common::cancel::CHECK_EVERY_ROWS) {
            mrq_common::cancel::checkpoint();
        }
    }));

    // One Where enumerable per conjunct: each adds its own per-element
    // dynamic dispatch, like chained LINQ Where calls.
    for filter in &spec.root_filters {
        let filter = filter.clone();
        pipe = Box::new(pipe.filter(move |item| eval(&filter, tables, item, params).as_bool()));
    }

    // Joins: LINQ's Join operator builds a lookup from the inner sequence,
    // then streams the outer sequence.
    for join in &spec.joins {
        // Inner sequence: its own Where pipeline, materialised into the
        // lookup (keys are boxed values).
        let mut lookup: FxHashMap<Vec<String>, Vec<usize>> = FxHashMap::default();
        let build_table = tables[join.slot];
        'inner: for row in 0..build_table.len() {
            rows_scanned.set(rows_scanned.get() + 1);
            let inner_item = Item::Single(row);
            // Build-side elements are evaluated against their own slot; wrap
            // the row index so column lookups resolve to the build table.
            let probe_item = Item::Joined(Rc::new(vec![row; slots]));
            for f in &join.build_filters {
                if !eval(f, tables, &probe_item, params).as_bool() {
                    continue 'inner;
                }
            }
            let key: Vec<String> = join
                .build_keys
                .iter()
                .map(|k| eval(k, tables, &probe_item, params).to_string())
                .collect();
            lookup.entry(key).or_default().push(row);
            build_inserts += 1;
            let _ = inner_item;
        }
        let lookup = Rc::new(lookup);
        let probe_keys = join.probe_keys.clone();
        let slot = join.slot;
        let probes = &probe_lookups;
        let comparisons = &key_comparisons;
        pipe = Box::new(pipe.flat_map(move |item| {
            let key: Vec<String> = probe_keys
                .iter()
                .map(|k| eval(k, tables, &item, params).to_string())
                .collect();
            probes.set(probes.get() + 1);
            comparisons.set(comparisons.get() + key.len() as u64);
            let matches = lookup.get(&key).cloned().unwrap_or_default();
            let base: Vec<usize> = match &item {
                Item::Single(r) => {
                    let mut v = vec![0usize; slots];
                    v[0] = *r;
                    v
                }
                Item::Joined(rows) => rows.as_ref().clone(),
            };
            matches.into_iter().map(move |m| {
                let mut rows = base.clone();
                rows[slot] = m;
                Item::Joined(Rc::new(rows))
            })
        }));
    }

    // Post-join filters.
    for filter in &spec.post_filters {
        let filter = filter.clone();
        pipe = Box::new(pipe.filter(move |item| eval(&filter, tables, item, params).as_bool()));
    }

    // Blocking operators.
    let mut rows: Vec<Vec<Value>> = if spec.is_grouped() {
        // GroupBy materialises every group...
        let mut order: Vec<Vec<String>> = Vec::new();
        let mut groups: FxHashMap<Vec<String>, (Vec<Value>, Vec<Item>)> = FxHashMap::default();
        for item in pipe {
            rows_materialized.set(rows_materialized.get() + 1);
            let key_values: Vec<Value> = spec
                .group_keys
                .iter()
                .map(|k| eval(k, tables, &item, params))
                .collect();
            let key: Vec<String> = key_values.iter().map(|v| v.to_string()).collect();
            if !groups.contains_key(&key) {
                order.push(key.clone());
                groups.insert(key.clone(), (key_values, Vec::new()));
            }
            groups.get_mut(&key).expect("inserted above").1.push(item);
        }
        // ...and the Select over the groups evaluates each aggregate with its
        // own pass over the group's elements.
        order
            .iter()
            .map(|key| {
                let (key_values, items) = &groups[key];
                spec.output
                    .iter()
                    .map(|(_, o)| match o {
                        OutputExpr::Key(i) => key_values[*i].clone(),
                        OutputExpr::Agg(i) => {
                            aggregate_pass(&spec.aggregates[*i], items, tables, params)
                        }
                        OutputExpr::Scalar(_) => unreachable!("grouped query"),
                    })
                    .collect()
            })
            .collect()
    } else {
        // Streamable shape (no sort, no Take, no hidden columns): when the
        // serving layer installed a stream scope, publish the collected rows
        // at the same cadence the source's cancel checkpoints use, so the
        // baseline bounds first-row latency exactly like the compiled
        // engines. Blocking shapes below keep buffering; their full result
        // ships as the stream's residual.
        let sink = if spec.sort.is_empty() && take.is_none() && spec.hidden_outputs == 0 {
            mrq_common::stream::current()
        } else {
            None
        };
        let mut out: Vec<Vec<Value>> = Vec::new();
        for item in pipe {
            rows_materialized.set(rows_materialized.get() + 1);
            out.push(
                spec.output
                    .iter()
                    .map(|(_, o)| match o {
                        OutputExpr::Scalar(e) => eval(e, tables, &item, params),
                        _ => unreachable!("non-grouped query"),
                    })
                    .collect(),
            );
            if let Some(sink) = &sink {
                if out.len() >= mrq_common::cancel::CHECK_EVERY_ROWS {
                    sink.send_rows(&mut out);
                }
            }
        }
        if let Some(sink) = &sink {
            sink.send_rows(&mut out);
        }
        out
    };

    // OrderBy sorts the full result, even under Take (§2.3).
    if !spec.sort.is_empty() {
        rows.sort_by(|a, b| {
            for key in &spec.sort {
                let ord = a[key.output_col].total_cmp(&b[key.output_col]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = take {
        rows.truncate(n);
    }
    if spec.hidden_outputs > 0 {
        let visible = spec.visible_outputs();
        for row in &mut rows {
            row.truncate(visible);
        }
    }
    Ok(QueryOutput {
        schema: spec.output_schema.clone(),
        rows,
        work: WorkCounters {
            rows_scanned: rows_scanned.get(),
            build_inserts,
            probe_lookups: probe_lookups.get(),
            key_comparisons: key_comparisons.get(),
            rows_materialized: rows_materialized.get(),
            // The baseline is one single-threaded pass — never partitioned.
            morsels_executed: 1,
            // Streamed batch/row totals are folded in by the serving layer
            // from the channel's own counters at stream close.
            ..WorkCounters::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_codegen::spec::lower;
    use mrq_common::{Date, Decimal, Field, Schema};
    use mrq_engine_csharp::HeapTable;
    use mrq_expr::{canonicalize, col, lam, lit, BinaryOp, Expr, Query, SourceId};
    use mrq_mheap::{ClassDesc, Heap, ListId};
    use std::collections::HashMap;

    fn schema() -> Schema {
        Schema::new(
            "Sale",
            vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Str),
                Field::new("price", DataType::Decimal),
                Field::new("day", DataType::Date),
            ],
        )
    }

    fn city_schema() -> Schema {
        Schema::new(
            "City",
            vec![
                Field::new("name", DataType::Str),
                Field::new("country", DataType::Str),
            ],
        )
    }

    fn setup() -> (Heap, ListId, ListId) {
        let mut heap = Heap::new();
        let sale = heap.register_class(ClassDesc::from_schema(&schema()));
        let city = heap.register_class(ClassDesc::from_schema(&city_schema()));
        let sales = heap.new_list("sales", Some(sale));
        let cities = heap.new_list("cities", Some(city));
        for i in 0..60i64 {
            let obj = heap.alloc(sale);
            heap.set_i64(obj, 0, i);
            heap.set_str(obj, 1, if i % 3 == 0 { "London" } else { "Paris" });
            heap.set_decimal(obj, 2, Decimal::from_int(i % 7));
            heap.set_date(
                obj,
                3,
                Date::from_ymd(1995, 1, 1).add_days((i % 200) as i32),
            );
            heap.list_push(sales, obj);
        }
        for (name, country) in [("London", "UK"), ("Paris", "FR")] {
            let obj = heap.alloc(city);
            heap.set_str(obj, 0, name);
            heap.set_str(obj, 1, country);
            heap.list_push(cities, obj);
        }
        (heap, sales, cities)
    }

    #[test]
    fn pipeline_results_match_the_compiled_engine_for_grouping() {
        let (heap, sales, _) = setup();
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        let canon = canonicalize(
            Query::from_source(SourceId(0))
                .where_(lam(
                    "s",
                    Expr::binary(BinaryOp::Gt, col("s", "price"), lit(Decimal::from_int(2))),
                ))
                .group_by(lam("s", col("s", "city")))
                .select(lam(
                    "g",
                    Expr::Constructor {
                        name: "R".into(),
                        fields: vec![
                            (
                                "city".into(),
                                Expr::member(Expr::member(mrq_expr::var("g"), "Key"), "city"),
                            ),
                            (
                                "total".into(),
                                mrq_expr::builder::agg(
                                    AggFunc::Sum,
                                    "g",
                                    Some(lam("x", col("x", "price"))),
                                ),
                            ),
                            (
                                "avg".into(),
                                mrq_expr::builder::agg(
                                    AggFunc::Average,
                                    "g",
                                    Some(lam("x", col("x", "price"))),
                                ),
                            ),
                            (
                                "n".into(),
                                mrq_expr::builder::agg(AggFunc::Count, "g", None),
                            ),
                        ],
                    },
                ))
                .order_by(lam("r", col("r", "city")))
                .into_expr(),
        );
        let spec = lower(&canon, &catalog).unwrap();
        let table = HeapTable::new(&heap, sales, schema());
        let linq = execute(&spec, &canon.params, &[&table]).unwrap();
        let compiled = mrq_engine_csharp::execute(&spec, &canon.params, &[&table]).unwrap();
        assert_eq!(linq, compiled);
    }

    #[test]
    fn join_and_sort_match_the_compiled_engine() {
        let (heap, sales, cities) = setup();
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        catalog.insert(SourceId(1), city_schema());
        let canon = canonicalize(
            Query::from_source(SourceId(0))
                .join_query(
                    Query::from_source(SourceId(1)),
                    lam("s", col("s", "city")),
                    lam("c", col("c", "name")),
                    lam(
                        "s",
                        lam(
                            "c",
                            Expr::Constructor {
                                name: "SC".into(),
                                fields: vec![
                                    ("id".into(), col("s", "id")),
                                    ("country".into(), col("c", "country")),
                                    ("price".into(), col("s", "price")),
                                ],
                            },
                        ),
                    ),
                )
                .order_by_desc(lam("r", col("r", "price")))
                .then_by(lam("r", col("r", "id")))
                .take(5)
                .into_expr(),
        );
        let spec = lower(&canon, &catalog).unwrap();
        let sales_table = HeapTable::new(&heap, sales, schema());
        let cities_table = HeapTable::new(&heap, cities, city_schema());
        let linq = execute(&spec, &canon.params, &[&sales_table, &cities_table]).unwrap();
        let compiled =
            mrq_engine_csharp::execute(&spec, &canon.params, &[&sales_table, &cities_table])
                .unwrap();
        assert_eq!(linq.rows.len(), 5);
        assert_eq!(linq, compiled);
    }
}
