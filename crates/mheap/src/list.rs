//! Managed lists: the `List<T>` collections queries run over.
//!
//! Lists are owned by the [`Heap`] so their contents are always visible to
//! the collector as roots, exactly like a static `List<T>` field keeping a
//! dataset alive in the paper's test harness.

use crate::class::ClassId;
use crate::heap::{GcRef, Heap};

/// Identifies a managed list within its heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListId(pub(crate) u32);

/// Internal list storage.
#[derive(Debug)]
pub(crate) struct ListData {
    pub(crate) name: String,
    pub(crate) element_class: Option<ClassId>,
    pub(crate) items: Vec<GcRef>,
}

impl Heap {
    /// Creates a new, empty managed list. `element_class` is the static
    /// element type, used by the query provider to resolve field names; a
    /// heterogeneous (`object`) list passes `None`.
    pub fn new_list(&mut self, name: impl Into<String>, element_class: Option<ClassId>) -> ListId {
        let id = ListId(self.lists.len() as u32);
        self.lists.push(ListData {
            name: name.into(),
            element_class,
            items: Vec::new(),
        });
        id
    }

    /// Appends an object to a list.
    pub fn list_push(&mut self, list: ListId, obj: GcRef) {
        if let Some(expected) = self.lists[list.0 as usize].element_class {
            debug_assert_eq!(
                self.class_of(obj),
                expected,
                "pushed an object of the wrong class into list `{}`",
                self.lists[list.0 as usize].name
            );
        }
        self.lists[list.0 as usize].items.push(obj);
    }

    /// Number of elements in a list.
    pub fn list_len(&self, list: ListId) -> usize {
        self.lists[list.0 as usize].items.len()
    }

    /// Element at `index`.
    pub fn list_get(&self, list: ListId, index: usize) -> GcRef {
        self.lists[list.0 as usize].items[index]
    }

    /// Borrow of all elements (in insertion order).
    pub fn list_items(&self, list: ListId) -> &[GcRef] {
        &self.lists[list.0 as usize].items
    }

    /// The declared element class of a list, if any.
    pub fn list_class(&self, list: ListId) -> Option<ClassId> {
        self.lists[list.0 as usize].element_class
    }

    /// The list's name (diagnostics only).
    pub fn list_name(&self, list: ListId) -> &str {
        &self.lists[list.0 as usize].name
    }

    /// Removes all elements from a list (the objects become garbage unless
    /// otherwise rooted).
    pub fn list_clear(&mut self, list: ListId) {
        self.lists[list.0 as usize].items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassDesc, FieldDesc};
    use mrq_common::DataType;

    #[test]
    fn list_push_get_len_and_clear() {
        let mut heap = Heap::new();
        let class = heap.register_class(ClassDesc::new(
            "Row",
            vec![FieldDesc::scalar("v", DataType::Int64)],
        ));
        let list = heap.new_list("rows", Some(class));
        assert_eq!(heap.list_len(list), 0);
        for i in 0..10 {
            let obj = heap.alloc(class);
            heap.set_i64(obj, 0, i);
            heap.list_push(list, obj);
        }
        assert_eq!(heap.list_len(list), 10);
        assert_eq!(heap.get_i64(heap.list_get(list, 3), 0), 3);
        assert_eq!(heap.list_items(list).len(), 10);
        assert_eq!(heap.list_class(list), Some(class));
        assert_eq!(heap.list_name(list), "rows");
        heap.list_clear(list);
        assert_eq!(heap.list_len(list), 0);
    }

    #[test]
    fn cleared_list_elements_are_collected() {
        let mut heap = Heap::new();
        let class = heap.register_class(ClassDesc::new(
            "Row",
            vec![FieldDesc::scalar("v", DataType::Int64)],
        ));
        let list = heap.new_list("rows", Some(class));
        let obj = heap.alloc(class);
        heap.list_push(list, obj);
        heap.collect_minor();
        assert!(heap.is_valid(obj));
        heap.list_clear(list);
        heap.collect_full();
        assert!(!heap.is_valid(obj));
    }
}
