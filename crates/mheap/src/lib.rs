//! A managed-heap simulator.
//!
//! The paper's baseline and "compiled C#" strategies run over objects that
//! live in the CLR's garbage-collected heap: every record is a separate
//! small allocation with an object header, fields are reached through a
//! reference, strings are separate heap objects, and the collector is free to
//! move things around — which is precisely why arbitrary collections cannot
//! be handed to native code (§5) and why staging (§6) exists.
//!
//! This crate reproduces that object model in safe Rust:
//!
//! * [`ClassDesc`]/[`FieldDesc`] describe record types (the role of C# class
//!   definitions plus the reflection metadata the code generator reads),
//! * [`Heap`] owns generationally-organised segments, allocates objects with
//!   headers, and provides typed and dynamic ([`mrq_common::Value`]) field access through
//!   [`GcRef`] handles — every access pays the handle → location → field
//!   indirection a managed reference pays,
//! * a copying, generational collector ([`Heap::collect_minor`] /
//!   [`Heap::collect_full`]) moves objects and updates handles; pinned
//!   objects are never moved,
//! * [`Heap`]-owned managed lists model `List<T>` collections and double as
//!   GC roots.
//!
//! Simulated addresses (stable per segment) are exposed so the cache
//! simulator can observe the scattered access patterns managed objects
//! produce.

#![warn(missing_docs)]

mod class;
mod heap;
mod list;

pub use class::{ClassDesc, ClassId, FieldDesc, FieldKind};
pub use heap::{GcRef, Heap, HeapConfig, HeapStats};
pub use list::ListId;
