//! The managed heap: segments, allocation, field access and the collector.

use crate::class::{ClassDesc, ClassId, FieldKind};
use crate::list::ListData;
use mrq_common::hash::FxHashMap;
use mrq_common::{Date, Decimal, Value};

/// Class id stored in the header of string objects.
const STRING_CLASS: u32 = u32::MAX;
/// Simulated base address of the first segment.
const ADDRESS_SPACE_BASE: u64 = 0x1_0000_0000;

/// A handle to a managed object. `GcRef::NULL` models a null reference.
///
/// Handles stay valid across collections (the collector updates the handle
/// table when it moves objects); using an index rather than a raw pointer is
/// also what keeps the simulator entirely safe Rust.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GcRef(u32);

impl GcRef {
    /// The null reference.
    pub const NULL: GcRef = GcRef(0);

    /// True if this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn index(self) -> usize {
        debug_assert!(self.0 != 0, "dereferenced a null GcRef");
        (self.0 - 1) as usize
    }

    #[inline]
    fn from_index(index: usize) -> GcRef {
        GcRef(index as u32 + 1)
    }

    /// Raw handle value; 0 is null. Used by the staging layer to ship object
    /// indexes to the native side (the paper's §6.1.1 index trick).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from [`GcRef::raw`].
    #[inline]
    pub fn from_raw(raw: u32) -> GcRef {
        GcRef(raw)
    }
}

/// Where an object currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    segment: u32,
    /// Word offset of the object header within the segment.
    offset: u32,
}

const FREE_SLOT: Loc = Loc {
    segment: u32::MAX,
    offset: u32::MAX,
};

/// Which generation a segment currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gen {
    Nursery,
    Old,
}

/// A contiguous chunk of the simulated managed address space.
#[derive(Debug)]
struct Segment {
    words: Vec<u64>,
    used: usize,
    base_addr: u64,
    gen: Gen,
}

impl Segment {
    fn new(capacity_words: usize, base_addr: u64, gen: Gen) -> Self {
        Segment {
            words: vec![0; capacity_words],
            used: 0,
            base_addr,
            gen,
        }
    }

    #[inline]
    fn remaining(&self) -> usize {
        self.words.len() - self.used
    }
}

/// Sizing knobs for the heap.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Capacity of a nursery segment, in 8-byte words.
    pub nursery_segment_words: usize,
    /// Capacity of an old-generation segment, in 8-byte words.
    pub old_segment_words: usize,
    /// Objects at least this many words large are allocated directly in the
    /// old generation (the CLR's large-object-heap rule, scaled down).
    pub large_object_words: usize,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            nursery_segment_words: 512 * 1024,  // 4 MiB
            old_segment_words: 4 * 1024 * 1024, // 32 MiB
            large_object_words: 10_000,         // ~80 KiB
        }
    }
}

/// Counters describing heap state and collector activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects allocated over the heap's lifetime.
    pub objects_allocated: u64,
    /// Bytes allocated over the heap's lifetime (headers included).
    pub bytes_allocated: u64,
    /// Live bytes after the most recent collection.
    pub live_bytes_after_gc: u64,
    /// Minor collections performed.
    pub minor_collections: u64,
    /// Full collections performed.
    pub full_collections: u64,
    /// Objects freed (handles reclaimed) across all collections.
    pub objects_freed: u64,
    /// Objects moved (evacuated or compacted) across all collections.
    pub objects_moved: u64,
    /// Bytes currently committed in segments.
    pub committed_bytes: u64,
}

/// The managed heap.
pub struct Heap {
    config: HeapConfig,
    classes: Vec<ClassDesc>,
    class_names: FxHashMap<String, ClassId>,
    segments: Vec<Segment>,
    /// Indexes of segments currently used for nursery allocation, in fill
    /// order (allocation always targets the last one).
    nursery: Vec<u32>,
    /// Indexes of old-generation segments (allocation targets the last one).
    old: Vec<u32>,
    /// Cleared nursery segments available for reuse.
    free_nursery: Vec<u32>,
    handles: Vec<Loc>,
    free_handles: Vec<u32>,
    pins: FxHashMap<u32, u32>,
    extra_roots: FxHashMap<u32, u32>,
    pub(crate) lists: Vec<ListData>,
    next_base_addr: u64,
    stats: HeapStats,
}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Creates a heap with default sizing.
    pub fn new() -> Self {
        Self::with_config(HeapConfig::default())
    }

    /// Creates a heap with explicit sizing.
    pub fn with_config(config: HeapConfig) -> Self {
        Heap {
            config,
            classes: Vec::new(),
            class_names: FxHashMap::default(),
            segments: Vec::new(),
            nursery: Vec::new(),
            old: Vec::new(),
            free_nursery: Vec::new(),
            handles: Vec::new(),
            free_handles: Vec::new(),
            pins: FxHashMap::default(),
            extra_roots: FxHashMap::default(),
            lists: Vec::new(),
            next_base_addr: ADDRESS_SPACE_BASE,
            stats: HeapStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Classes
    // ------------------------------------------------------------------

    /// Registers a class and returns its id. Class names must be unique.
    pub fn register_class(&mut self, desc: ClassDesc) -> ClassId {
        assert!(
            !self.class_names.contains_key(&desc.name),
            "class `{}` registered twice",
            desc.name
        );
        let id = ClassId(self.classes.len() as u32);
        self.class_names.insert(desc.name.clone(), id);
        self.classes.push(desc);
        id
    }

    /// Returns the descriptor for a class id.
    pub fn class(&self, id: ClassId) -> &ClassDesc {
        &self.classes[id.0 as usize]
    }

    /// Looks a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_names.get(name).copied()
    }

    /// The class of an object.
    pub fn class_of(&self, obj: GcRef) -> ClassId {
        let (seg, off) = self.locate(obj);
        let header = self.segments[seg].words[off];
        let class = (header & 0xFFFF_FFFF) as u32;
        assert!(class != STRING_CLASS, "class_of called on a string object");
        ClassId(class)
    }

    /// True if the object is a string object.
    pub fn is_string(&self, obj: GcRef) -> bool {
        let (seg, off) = self.locate(obj);
        let header = self.segments[seg].words[off];
        (header & 0xFFFF_FFFF) as u32 == STRING_CLASS
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates a zero-initialised instance of `class`.
    pub fn alloc(&mut self, class: ClassId) -> GcRef {
        let payload = self.classes[class.0 as usize].slot_count();
        self.alloc_raw(class.0, payload)
    }

    /// Allocates a string object holding `text`.
    pub fn alloc_string(&mut self, text: &str) -> GcRef {
        let bytes = text.as_bytes();
        let byte_words = bytes.len().div_ceil(8);
        let obj = self.alloc_raw(STRING_CLASS, 1 + byte_words);
        let (seg, off) = self.locate(obj);
        let words = &mut self.segments[seg].words;
        words[off + 1] = bytes.len() as u64;
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            words[off + 2 + i] = u64::from_le_bytes(buf);
        }
        obj
    }

    fn alloc_raw(&mut self, class: u32, payload_words: usize) -> GcRef {
        let total = payload_words + 1;
        let large = total >= self.config.large_object_words;
        let seg_idx = if large {
            self.old_segment_with_room(total)
        } else {
            self.nursery_segment_with_room(total)
        };
        let seg = &mut self.segments[seg_idx as usize];
        let offset = seg.used;
        seg.words[offset] = class as u64 | ((payload_words as u64) << 32);
        for w in &mut seg.words[offset + 1..offset + total] {
            *w = 0;
        }
        seg.used += total;
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += (total * 8) as u64;
        let loc = Loc {
            segment: seg_idx,
            offset: offset as u32,
        };
        match self.free_handles.pop() {
            Some(slot) => {
                self.handles[slot as usize] = loc;
                GcRef::from_index(slot as usize)
            }
            None => {
                self.handles.push(loc);
                GcRef::from_index(self.handles.len() - 1)
            }
        }
    }

    fn new_segment(&mut self, capacity: usize, gen: Gen) -> u32 {
        let base = self.next_base_addr;
        self.next_base_addr += (capacity * 8) as u64;
        self.stats.committed_bytes += (capacity * 8) as u64;
        self.segments.push(Segment::new(capacity, base, gen));
        (self.segments.len() - 1) as u32
    }

    fn nursery_segment_with_room(&mut self, words: usize) -> u32 {
        if let Some(&idx) = self.nursery.last() {
            if self.segments[idx as usize].remaining() >= words {
                return idx;
            }
        }
        // Reuse a cleared nursery segment if one is big enough, otherwise
        // commit a fresh one. Allocation never triggers a collection: the
        // paper's methodology collects explicitly between runs, and implicit
        // mid-query collections would invalidate engine-held references.
        let idx = match self.free_nursery.pop() {
            Some(idx) if self.segments[idx as usize].words.len() >= words => idx,
            Some(idx) => {
                // Too small for this object; put it back and fall through.
                self.free_nursery.push(idx);
                self.new_segment(self.config.nursery_segment_words.max(words), Gen::Nursery)
            }
            None => self.new_segment(self.config.nursery_segment_words.max(words), Gen::Nursery),
        };
        self.segments[idx as usize].gen = Gen::Nursery;
        self.nursery.push(idx);
        idx
    }

    fn old_segment_with_room(&mut self, words: usize) -> u32 {
        if let Some(&idx) = self.old.last() {
            if self.segments[idx as usize].remaining() >= words {
                return idx;
            }
        }
        let idx = self.new_segment(self.config.old_segment_words.max(words), Gen::Old);
        self.old.push(idx);
        idx
    }

    // ------------------------------------------------------------------
    // Field access
    // ------------------------------------------------------------------

    #[inline]
    fn locate(&self, obj: GcRef) -> (usize, usize) {
        let loc = self.handles[obj.index()];
        debug_assert!(loc != FREE_SLOT, "access through a collected handle");
        (loc.segment as usize, loc.offset as usize)
    }

    #[inline]
    fn slot(&self, obj: GcRef, field: usize) -> u64 {
        let (seg, off) = self.locate(obj);
        self.segments[seg].words[off + 1 + field]
    }

    #[inline]
    fn set_slot(&mut self, obj: GcRef, field: usize, value: u64) {
        let (seg, off) = self.locate(obj);
        self.segments[seg].words[off + 1 + field] = value;
    }

    /// Reads an `i64` field.
    #[inline]
    pub fn get_i64(&self, obj: GcRef, field: usize) -> i64 {
        self.slot(obj, field) as i64
    }

    /// Writes an `i64` field.
    #[inline]
    pub fn set_i64(&mut self, obj: GcRef, field: usize, value: i64) {
        self.set_slot(obj, field, value as u64);
    }

    /// Reads an `i32` field.
    #[inline]
    pub fn get_i32(&self, obj: GcRef, field: usize) -> i32 {
        self.slot(obj, field) as i32
    }

    /// Writes an `i32` field.
    #[inline]
    pub fn set_i32(&mut self, obj: GcRef, field: usize, value: i32) {
        self.set_slot(obj, field, value as u32 as u64);
    }

    /// Reads an `f64` field.
    #[inline]
    pub fn get_f64(&self, obj: GcRef, field: usize) -> f64 {
        f64::from_bits(self.slot(obj, field))
    }

    /// Writes an `f64` field.
    #[inline]
    pub fn set_f64(&mut self, obj: GcRef, field: usize, value: f64) {
        self.set_slot(obj, field, value.to_bits());
    }

    /// Reads a boolean field.
    #[inline]
    pub fn get_bool(&self, obj: GcRef, field: usize) -> bool {
        self.slot(obj, field) != 0
    }

    /// Writes a boolean field.
    #[inline]
    pub fn set_bool(&mut self, obj: GcRef, field: usize, value: bool) {
        self.set_slot(obj, field, value as u64);
    }

    /// Reads a decimal field.
    #[inline]
    pub fn get_decimal(&self, obj: GcRef, field: usize) -> Decimal {
        Decimal::from_raw(self.slot(obj, field) as i64)
    }

    /// Writes a decimal field.
    #[inline]
    pub fn set_decimal(&mut self, obj: GcRef, field: usize, value: Decimal) {
        self.set_slot(obj, field, value.raw() as u64);
    }

    /// Reads a date field.
    #[inline]
    pub fn get_date(&self, obj: GcRef, field: usize) -> Date {
        Date::from_epoch_days(self.slot(obj, field) as i32)
    }

    /// Writes a date field.
    #[inline]
    pub fn set_date(&mut self, obj: GcRef, field: usize, value: Date) {
        self.set_slot(obj, field, value.epoch_days() as u32 as u64);
    }

    /// Reads a reference field (object or string handle; may be null).
    #[inline]
    pub fn get_ref(&self, obj: GcRef, field: usize) -> GcRef {
        GcRef(self.slot(obj, field) as u32)
    }

    /// Writes a reference field.
    #[inline]
    pub fn set_ref(&mut self, obj: GcRef, field: usize, value: GcRef) {
        self.set_slot(obj, field, value.0 as u64);
    }

    /// Writes a string field, allocating the string object.
    pub fn set_str(&mut self, obj: GcRef, field: usize, value: &str) {
        let s = self.alloc_string(value);
        self.set_ref(obj, field, s);
    }

    /// Reads a string field. Returns the empty string for a null reference
    /// (the TPC-H loaders never store nulls).
    pub fn get_str(&self, obj: GcRef, field: usize) -> &str {
        let r = self.get_ref(obj, field);
        if r.is_null() {
            ""
        } else {
            self.string_value(r)
        }
    }

    /// The contents of a string object.
    pub fn string_value(&self, string_obj: GcRef) -> &str {
        let (seg, off) = self.locate(string_obj);
        let words = &self.segments[seg].words;
        let header = words[off];
        assert_eq!(
            (header & 0xFFFF_FFFF) as u32,
            STRING_CLASS,
            "string_value called on a non-string object"
        );
        let len = words[off + 1] as usize;
        let bytes_words = &words[off + 2..off + 2 + len.div_ceil(8)];
        // Strings are stored little-endian word by word; on every platform we
        // target the in-memory representation of `[u64]` words written with
        // `to_le_bytes` is the original byte sequence.
        let byte_slice =
            unsafe { std::slice::from_raw_parts(bytes_words.as_ptr() as *const u8, len) };
        std::str::from_utf8(byte_slice).expect("heap strings are always valid UTF-8")
    }

    /// Dynamically reads a field as a [`Value`], as the interpreted engine
    /// and the provider's generic paths do.
    pub fn get_value(&self, obj: GcRef, field: usize) -> Value {
        let class = self.class_of(obj);
        let desc = &self.classes[class.0 as usize].fields[field];
        match desc.kind {
            FieldKind::Scalar(dt) => match dt {
                mrq_common::DataType::Bool => Value::Bool(self.get_bool(obj, field)),
                mrq_common::DataType::Int32 => Value::Int32(self.get_i32(obj, field)),
                mrq_common::DataType::Int64 => Value::Int64(self.get_i64(obj, field)),
                mrq_common::DataType::Decimal => Value::Decimal(self.get_decimal(obj, field)),
                mrq_common::DataType::Float64 => Value::Float64(self.get_f64(obj, field)),
                mrq_common::DataType::Date => Value::Date(self.get_date(obj, field)),
                mrq_common::DataType::Str => Value::str(self.get_str(obj, field)),
            },
            FieldKind::Str => Value::str(self.get_str(obj, field)),
            FieldKind::Reference(_) => {
                panic!(
                    "get_value on reference field `{}`; navigate it with get_ref",
                    desc.name
                )
            }
        }
    }

    /// Dynamically writes a field from a [`Value`].
    pub fn set_value(&mut self, obj: GcRef, field: usize, value: &Value) {
        match value {
            Value::Null => self.set_slot(obj, field, 0),
            Value::Bool(v) => self.set_bool(obj, field, *v),
            Value::Int32(v) => self.set_i32(obj, field, *v),
            Value::Int64(v) => self.set_i64(obj, field, *v),
            Value::Decimal(v) => self.set_decimal(obj, field, *v),
            Value::Float64(v) => self.set_f64(obj, field, *v),
            Value::Date(v) => self.set_date(obj, field, *v),
            Value::Str(v) => self.set_str(obj, field, v),
        }
    }

    /// Simulated byte address of the object header. Stable until the object
    /// is moved by a collection.
    pub fn address_of(&self, obj: GcRef) -> u64 {
        let (seg, off) = self.locate(obj);
        self.segments[seg].base_addr + (off * 8) as u64
    }

    /// Simulated byte address of a field slot.
    pub fn field_address(&self, obj: GcRef, field: usize) -> u64 {
        self.address_of(obj) + 8 + (field * 8) as u64
    }

    // ------------------------------------------------------------------
    // Roots & pinning
    // ------------------------------------------------------------------

    /// Pins an object: the collector will not move it (its segment is
    /// promoted in place instead). Pin/unpin calls nest.
    pub fn pin(&mut self, obj: GcRef) {
        *self.pins.entry(obj.0).or_insert(0) += 1;
    }

    /// Removes one pin from an object.
    pub fn unpin(&mut self, obj: GcRef) {
        match self.pins.get_mut(&obj.0) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.pins.remove(&obj.0);
            }
            None => panic!("unpin of an object that was not pinned"),
        }
    }

    /// True if the object currently has at least one pin.
    pub fn is_pinned(&self, obj: GcRef) -> bool {
        self.pins.contains_key(&obj.0)
    }

    /// Registers an additional GC root (for engine-held references that must
    /// survive an explicit collection). Calls nest.
    pub fn add_root(&mut self, obj: GcRef) {
        if !obj.is_null() {
            *self.extra_roots.entry(obj.0).or_insert(0) += 1;
        }
    }

    /// Removes one registration of an additional root.
    pub fn remove_root(&mut self, obj: GcRef) {
        match self.extra_roots.get_mut(&obj.0) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.extra_roots.remove(&obj.0);
            }
            None => panic!("remove_root of an object that was not a root"),
        }
    }

    // ------------------------------------------------------------------
    // Collection
    // ------------------------------------------------------------------

    /// Collects the nursery: live nursery objects are promoted to the old
    /// generation, dead nursery objects are freed, nursery segments are
    /// recycled. Returns the number of objects freed.
    pub fn collect_minor(&mut self) -> u64 {
        self.stats.minor_collections += 1;
        let collected: Vec<u32> = self.nursery.clone();
        self.collect_segments(&collected)
    }

    /// Collects the whole heap, compacting the old generation. Returns the
    /// number of objects freed.
    pub fn collect_full(&mut self) -> u64 {
        self.stats.full_collections += 1;
        let mut collected: Vec<u32> = self.nursery.clone();
        collected.extend(self.old.iter().copied());
        // Old segments will be rebuilt from scratch.
        self.old.clear();

        self.collect_segments(&collected)
    }

    fn collect_segments(&mut self, collected: &[u32]) -> u64 {
        let collected_set: Vec<bool> = {
            let mut v = vec![false; self.segments.len()];
            for &s in collected {
                v[s as usize] = true;
            }
            v
        };

        // --- mark ---------------------------------------------------------
        let live = self.mark();

        // --- decide which collected segments are frozen by pins -----------
        let mut frozen = vec![false; self.segments.len()];
        for (&handle, _) in self.pins.iter() {
            let loc = self.handles[(handle - 1) as usize];
            if loc != FREE_SLOT && collected_set[loc.segment as usize] {
                frozen[loc.segment as usize] = true;
            }
        }

        // --- evacuate live objects out of non-frozen collected segments ---
        let mut moved = 0u64;
        let mut live_bytes = 0u64;
        #[allow(clippy::needless_range_loop)]
        for handle_idx in 0..self.handles.len() {
            let loc = self.handles[handle_idx];
            if loc == FREE_SLOT {
                continue;
            }
            let is_live = live[handle_idx];
            let in_collected = collected_set[loc.segment as usize];
            if !in_collected {
                if is_live {
                    live_bytes += self.object_bytes(loc);
                }
                continue;
            }
            if !is_live {
                continue; // handled below when freeing
            }
            if frozen[loc.segment as usize] {
                live_bytes += self.object_bytes(loc);
                continue; // promoted in place
            }
            // Copy the object into the old generation.
            let total_words = {
                let seg = &self.segments[loc.segment as usize];
                let header = seg.words[loc.offset as usize];
                (header >> 32) as usize + 1
            };
            let dest_seg_idx = self.old_segment_with_room(total_words);
            debug_assert!(
                (dest_seg_idx as usize) >= collected_set.len()
                    || !collected_set[dest_seg_idx as usize],
                "evacuation target must not itself be collected"
            );
            let dest_offset = self.segments[dest_seg_idx as usize].used;
            // Copy word range between two different segments.
            let (src_seg, dst_seg) = {
                let (a, b) = (loc.segment as usize, dest_seg_idx as usize);
                assert_ne!(a, b);
                if a < b {
                    let (left, right) = self.segments.split_at_mut(b);
                    (&left[a], &mut right[0])
                } else {
                    let (left, right) = self.segments.split_at_mut(a);
                    (&right[0], &mut left[b])
                }
            };
            dst_seg.words[dest_offset..dest_offset + total_words].copy_from_slice(
                &src_seg.words[loc.offset as usize..loc.offset as usize + total_words],
            );
            dst_seg.used += total_words;
            self.handles[handle_idx] = Loc {
                segment: dest_seg_idx,
                offset: dest_offset as u32,
            };
            moved += 1;
            live_bytes += (total_words * 8) as u64;
        }

        // --- free dead handles in collected, non-frozen segments ----------
        let mut freed = 0u64;
        #[allow(clippy::needless_range_loop)]
        for handle_idx in 0..self.handles.len() {
            let loc = self.handles[handle_idx];
            if loc == FREE_SLOT {
                continue;
            }
            // Segments created during evacuation sit past the end of
            // `collected_set`; objects in them are never freed here.
            let seg = loc.segment as usize;
            if seg < collected_set.len() && collected_set[seg] && !frozen[seg] && !live[handle_idx]
            {
                self.handles[handle_idx] = FREE_SLOT;
                self.free_handles.push(handle_idx as u32);
                freed += 1;
            }
        }

        // --- recycle or retag collected segments ---------------------------
        for &seg_idx in collected {
            if frozen[seg_idx as usize] {
                // Promote in place: the segment becomes old-generation and is
                // no longer bump-allocated into.
                self.segments[seg_idx as usize].gen = Gen::Old;
                if !self.old.contains(&seg_idx) {
                    self.old.insert(0, seg_idx);
                }
            } else if self.segments[seg_idx as usize].gen == Gen::Nursery {
                self.segments[seg_idx as usize].used = 0;
                self.free_nursery.push(seg_idx);
            } else {
                // An old segment that was fully evacuated by a full
                // collection: reuse it as a future nursery segment.
                self.segments[seg_idx as usize].used = 0;
                self.segments[seg_idx as usize].gen = Gen::Nursery;
                self.free_nursery.push(seg_idx);
            }
        }
        self.nursery.clear();

        self.stats.objects_freed += freed;
        self.stats.objects_moved += moved;
        self.stats.live_bytes_after_gc = live_bytes;
        freed
    }

    fn object_bytes(&self, loc: Loc) -> u64 {
        let header = self.segments[loc.segment as usize].words[loc.offset as usize];
        ((header >> 32) + 1) * 8
    }

    /// Computes the set of live handles (index-aligned with `self.handles`).
    fn mark(&self) -> Vec<bool> {
        let mut live = vec![false; self.handles.len()];
        let mut worklist: Vec<GcRef> = Vec::new();
        for list in &self.lists {
            worklist.extend(list.items.iter().copied());
        }
        for &handle in self.pins.keys() {
            worklist.push(GcRef(handle));
        }
        for &handle in self.extra_roots.keys() {
            worklist.push(GcRef(handle));
        }
        while let Some(obj) = worklist.pop() {
            if obj.is_null() {
                continue;
            }
            let idx = obj.index();
            if live[idx] {
                continue;
            }
            live[idx] = true;
            let (seg, off) = self.locate(obj);
            let header = self.segments[seg].words[off];
            let class = (header & 0xFFFF_FFFF) as u32;
            if class == STRING_CLASS {
                continue;
            }
            let desc = &self.classes[class as usize];
            for (field_idx, field) in desc.fields.iter().enumerate() {
                if field.kind.is_traced() {
                    let child = GcRef(self.segments[seg].words[off + 1 + field_idx] as u32);
                    if !child.is_null() && !live[child.index()] {
                        worklist.push(child);
                    }
                }
            }
        }
        live
    }

    /// Returns a handle's validity (false once collected). Primarily for
    /// tests.
    pub fn is_valid(&self, obj: GcRef) -> bool {
        !obj.is_null()
            && self
                .handles
                .get(obj.index())
                .is_some_and(|l| *l != FREE_SLOT)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassDesc, FieldDesc};
    use mrq_common::DataType;

    fn item_class(heap: &mut Heap) -> ClassId {
        heap.register_class(ClassDesc::new(
            "Item",
            vec![
                FieldDesc::scalar("id", DataType::Int64),
                FieldDesc::scalar("price", DataType::Decimal),
                FieldDesc::scalar("when", DataType::Date),
                FieldDesc::string("name"),
            ],
        ))
    }

    #[test]
    fn alloc_and_typed_field_round_trip() {
        let mut heap = Heap::new();
        let class = item_class(&mut heap);
        let obj = heap.alloc(class);
        heap.set_i64(obj, 0, 42);
        heap.set_decimal(obj, 1, Decimal::new(19, 99));
        heap.set_date(obj, 2, Date::from_ymd(1995, 6, 1));
        heap.set_str(obj, 3, "London");
        assert_eq!(heap.get_i64(obj, 0), 42);
        assert_eq!(heap.get_decimal(obj, 1), Decimal::new(19, 99));
        assert_eq!(heap.get_date(obj, 2), Date::from_ymd(1995, 6, 1));
        assert_eq!(heap.get_str(obj, 3), "London");
        assert_eq!(heap.class_of(obj), class);
    }

    #[test]
    fn dynamic_value_access_matches_typed_access() {
        let mut heap = Heap::new();
        let class = item_class(&mut heap);
        let obj = heap.alloc(class);
        heap.set_value(obj, 0, &Value::Int64(7));
        heap.set_value(obj, 1, &Value::Decimal(Decimal::new(1, 50)));
        heap.set_value(obj, 3, &Value::str("Paris"));
        assert_eq!(heap.get_value(obj, 0), Value::Int64(7));
        assert_eq!(heap.get_value(obj, 1), Value::Decimal(Decimal::new(1, 50)));
        assert_eq!(heap.get_value(obj, 3), Value::str("Paris"));
    }

    #[test]
    fn strings_of_many_lengths_round_trip() {
        let mut heap = Heap::new();
        for len in 0..40 {
            let text: String = "abcdefgh".chars().cycle().take(len).collect();
            let s = heap.alloc_string(&text);
            assert_eq!(heap.string_value(s), text, "length {len}");
        }
    }

    #[test]
    fn negative_scalars_round_trip() {
        let mut heap = Heap::new();
        let class = heap.register_class(ClassDesc::new(
            "Neg",
            vec![
                FieldDesc::scalar("a", DataType::Int32),
                FieldDesc::scalar("b", DataType::Int64),
                FieldDesc::scalar("c", DataType::Float64),
                FieldDesc::scalar("d", DataType::Date),
                FieldDesc::scalar("e", DataType::Bool),
            ],
        ));
        let obj = heap.alloc(class);
        heap.set_i32(obj, 0, -5);
        heap.set_i64(obj, 1, -500);
        heap.set_f64(obj, 2, -2.5);
        heap.set_date(obj, 3, Date::from_ymd(1969, 1, 1));
        heap.set_bool(obj, 4, true);
        assert_eq!(heap.get_i32(obj, 0), -5);
        assert_eq!(heap.get_i64(obj, 1), -500);
        assert_eq!(heap.get_f64(obj, 2), -2.5);
        assert_eq!(heap.get_date(obj, 3), Date::from_ymd(1969, 1, 1));
        assert!(heap.get_bool(obj, 4));
    }

    #[test]
    fn minor_collection_frees_unreachable_objects_and_keeps_rooted_ones() {
        let mut heap = Heap::with_config(HeapConfig {
            nursery_segment_words: 4096,
            old_segment_words: 65536,
            large_object_words: 2000,
        });
        let class = item_class(&mut heap);
        let list = heap.new_list("kept", Some(class));
        let mut kept = Vec::new();
        let mut dropped = Vec::new();
        for i in 0..100 {
            let obj = heap.alloc(class);
            heap.set_i64(obj, 0, i);
            heap.set_str(obj, 3, "payload");
            if i % 2 == 0 {
                heap.list_push(list, obj);
                kept.push(obj);
            } else {
                dropped.push(obj);
            }
        }
        let freed = heap.collect_minor();
        assert!(freed >= dropped.len() as u64, "freed {freed}");
        for (i, &obj) in kept.iter().enumerate() {
            assert!(heap.is_valid(obj));
            assert_eq!(heap.get_i64(obj, 0), (i as i64) * 2);
            assert_eq!(heap.get_str(obj, 3), "payload");
        }
        for &obj in &dropped {
            assert!(!heap.is_valid(obj));
        }
        assert_eq!(heap.stats().minor_collections, 1);
        assert!(heap.stats().objects_moved > 0);
    }

    #[test]
    fn collection_moves_objects_but_addresses_of_pinned_objects_are_stable() {
        let mut heap = Heap::with_config(HeapConfig {
            nursery_segment_words: 4096,
            old_segment_words: 65536,
            large_object_words: 2000,
        });
        let class = item_class(&mut heap);
        let list = heap.new_list("data", Some(class));
        let pinned = heap.alloc(class);
        heap.list_push(list, pinned);
        heap.pin(pinned);
        let unpinned = heap.alloc(class);
        heap.list_push(list, unpinned);
        let pinned_addr = heap.address_of(pinned);
        heap.collect_minor();
        assert_eq!(heap.address_of(pinned), pinned_addr, "pinned object moved");
        assert!(heap.is_valid(unpinned));
        heap.unpin(pinned);
        assert!(!heap.is_pinned(pinned));
    }

    #[test]
    fn full_collection_compacts_and_preserves_reference_graphs() {
        let mut heap = Heap::with_config(HeapConfig {
            nursery_segment_words: 2048,
            old_segment_words: 8192,
            large_object_words: 1000,
        });
        let city = heap.register_class(ClassDesc::new("City", vec![FieldDesc::string("name")]));
        let shop = heap.register_class(ClassDesc::new(
            "Shop",
            vec![FieldDesc::reference("city", city)],
        ));
        let sale = heap.register_class(ClassDesc::new(
            "Sale",
            vec![
                FieldDesc::scalar("price", DataType::Decimal),
                FieldDesc::reference("shop", shop),
            ],
        ));
        let list = heap.new_list("sales", Some(sale));
        for i in 0..200 {
            let c = heap.alloc(city);
            heap.set_str(c, 0, if i % 2 == 0 { "London" } else { "Paris" });
            let s = heap.alloc(shop);
            heap.set_ref(s, 0, c);
            let sl = heap.alloc(sale);
            heap.set_decimal(sl, 0, Decimal::from_int(i));
            heap.set_ref(sl, 1, s);
            if i % 4 != 3 {
                heap.list_push(list, sl);
            }
        }
        heap.collect_full();
        assert_eq!(heap.stats().full_collections, 1);
        let items: Vec<GcRef> = heap.list_items(list).to_vec();
        assert_eq!(items.len(), 150);
        for &sl in &items {
            let s = heap.get_ref(sl, 1);
            let c = heap.get_ref(s, 0);
            let name = heap.get_str(c, 0);
            assert!(name == "London" || name == "Paris");
        }
        // A second full collection over already-compacted data is a no-op for
        // live objects.
        let live_before = heap.list_items(list).len();
        heap.collect_full();
        assert_eq!(heap.list_items(list).len(), live_before);
    }

    #[test]
    fn extra_roots_survive_collection() {
        let mut heap = Heap::with_config(HeapConfig {
            nursery_segment_words: 2048,
            old_segment_words: 8192,
            large_object_words: 1000,
        });
        let class = item_class(&mut heap);
        let obj = heap.alloc(class);
        heap.set_i64(obj, 0, 99);
        heap.add_root(obj);
        heap.collect_minor();
        assert!(heap.is_valid(obj));
        assert_eq!(heap.get_i64(obj, 0), 99);
        heap.remove_root(obj);
        // The object was promoted by the first collection, so a minor
        // collection leaves it alone; a full collection reclaims it.
        heap.collect_minor();
        assert!(heap.is_valid(obj));
        heap.collect_full();
        assert!(!heap.is_valid(obj));
    }

    #[test]
    fn large_objects_go_straight_to_the_old_generation() {
        let mut heap = Heap::with_config(HeapConfig {
            nursery_segment_words: 1024,
            old_segment_words: 16384,
            large_object_words: 64,
        });
        let long_text = "x".repeat(1024);
        let s = heap.alloc_string(&long_text);
        assert_eq!(heap.string_value(s), long_text);
        // Allocating it must not have consumed nursery space.
        assert!(heap.nursery.is_empty());
    }

    #[test]
    fn allocation_never_fails_even_past_one_segment() {
        let mut heap = Heap::with_config(HeapConfig {
            nursery_segment_words: 256,
            old_segment_words: 1024,
            large_object_words: 200,
        });
        let class = item_class(&mut heap);
        let list = heap.new_list("all", Some(class));
        for i in 0..1000 {
            let obj = heap.alloc(class);
            heap.set_i64(obj, 0, i);
            heap.list_push(list, obj);
        }
        assert_eq!(heap.list_len(list), 1000);
        assert_eq!(heap.get_i64(heap.list_get(list, 999), 0), 999);
        assert!(heap.stats().committed_bytes > 0);
    }

    #[test]
    fn handles_are_reused_after_collection() {
        let mut heap = Heap::with_config(HeapConfig {
            nursery_segment_words: 2048,
            old_segment_words: 8192,
            large_object_words: 1000,
        });
        let class = item_class(&mut heap);
        for _ in 0..10 {
            let _garbage = heap.alloc(class);
        }
        let before = heap.handles.len();
        heap.collect_minor();
        for _ in 0..10 {
            let _again = heap.alloc(class);
        }
        assert_eq!(heap.handles.len(), before, "handle table should not grow");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_class_registration_panics() {
        let mut heap = Heap::new();
        item_class(&mut heap);
        item_class(&mut heap);
    }
}
