//! Class descriptors: the managed type system visible to the query engines.

use mrq_common::{DataType, Schema};

/// Identifies a registered class within a [`crate::Heap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Raw numeric id (useful for diagnostics).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// What a field stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// A value-type scalar stored inline in the object (int, decimal, date,
    /// float, bool).
    Scalar(DataType),
    /// A reference to a heap string object. In the CLR `string` is a
    /// reference type; modelling it as such is what makes managed string
    /// columns expensive compared to the native engine's dictionary offsets.
    Str,
    /// A reference to another object of the given class (nested data, e.g.
    /// `SaleItem.Shop.City` in the paper's §6 example). `None` means the
    /// reference may point to any class (an `object` field).
    Reference(Option<ClassId>),
}

impl FieldKind {
    /// The [`DataType`] the field surfaces to expression trees, if it is a
    /// scalar or string.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            FieldKind::Scalar(dt) => Some(*dt),
            FieldKind::Str => Some(DataType::Str),
            FieldKind::Reference(_) => None,
        }
    }

    /// True if the field holds a heap reference the collector must trace.
    pub fn is_traced(&self) -> bool {
        matches!(self, FieldKind::Str | FieldKind::Reference(_))
    }
}

/// A single field of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDesc {
    /// Field name as it appears in expression trees.
    pub name: String,
    /// What the field stores.
    pub kind: FieldKind,
}

impl FieldDesc {
    /// Creates a scalar field.
    pub fn scalar(name: impl Into<String>, dtype: DataType) -> Self {
        let kind = if dtype == DataType::Str {
            FieldKind::Str
        } else {
            FieldKind::Scalar(dtype)
        };
        FieldDesc {
            name: name.into(),
            kind,
        }
    }

    /// Creates a string field.
    pub fn string(name: impl Into<String>) -> Self {
        FieldDesc {
            name: name.into(),
            kind: FieldKind::Str,
        }
    }

    /// Creates a reference field pointing at objects of `class`.
    pub fn reference(name: impl Into<String>, class: ClassId) -> Self {
        FieldDesc {
            name: name.into(),
            kind: FieldKind::Reference(Some(class)),
        }
    }
}

/// A managed record type: name plus ordered fields.
///
/// Every field occupies one 8-byte slot in the object payload, mirroring how
/// the CLR lays out reference-type instances (references and numerics are
/// word-sized; we do not model field packing because the paper's comparison
/// never depends on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDesc {
    /// Type name, e.g. `Lineitem`.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<FieldDesc>,
}

impl ClassDesc {
    /// Creates a class descriptor.
    pub fn new(name: impl Into<String>, fields: Vec<FieldDesc>) -> Self {
        ClassDesc {
            name: name.into(),
            fields,
        }
    }

    /// Builds a descriptor from a flat relational [`Schema`] (all scalar and
    /// string columns). This is how the TPC-H loader creates its record
    /// classes.
    pub fn from_schema(schema: &Schema) -> Self {
        ClassDesc {
            name: schema.name().to_string(),
            fields: schema
                .fields()
                .iter()
                .map(|f| FieldDesc::scalar(f.name.clone(), f.dtype))
                .collect(),
        }
    }

    /// Number of payload slots an instance occupies.
    pub fn slot_count(&self) -> usize {
        self.fields.len()
    }

    /// Index of the named field.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The relational schema surfaced to expression trees: scalar and string
    /// fields only (reference fields are navigated, not projected).
    pub fn to_schema(&self) -> Schema {
        Schema::new(
            self.name.clone(),
            self.fields
                .iter()
                .filter_map(|f| {
                    f.kind
                        .data_type()
                        .map(|dt| mrq_common::Field::new(f.name.clone(), dt))
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_common::Field;

    #[test]
    fn scalar_fields_classify_strings_as_references() {
        let f = FieldDesc::scalar("name", DataType::Str);
        assert_eq!(f.kind, FieldKind::Str);
        assert!(f.kind.is_traced());
        assert_eq!(f.kind.data_type(), Some(DataType::Str));
        let g = FieldDesc::scalar("qty", DataType::Int64);
        assert!(!g.kind.is_traced());
    }

    #[test]
    fn from_schema_round_trips_field_names_and_types() {
        let schema = Schema::new(
            "Orders",
            vec![
                Field::new("o_orderkey", DataType::Int64),
                Field::new("o_orderdate", DataType::Date),
                Field::new("o_comment", DataType::Str),
            ],
        );
        let class = ClassDesc::from_schema(&schema);
        assert_eq!(class.slot_count(), 3);
        assert_eq!(class.field_index("o_orderdate"), Some(1));
        assert_eq!(class.to_schema(), schema);
    }

    #[test]
    fn reference_fields_are_not_part_of_the_relational_schema() {
        let class = ClassDesc::new(
            "SaleItem",
            vec![
                FieldDesc::scalar("price", DataType::Decimal),
                FieldDesc::reference("shop", ClassId(7)),
            ],
        );
        assert_eq!(class.to_schema().len(), 1);
        assert_eq!(class.field_index("shop"), Some(1));
    }
}
