//! The dependency-free mini-executor behind every serving loop in the
//! workspace: [`block_on`], the batch multiplexer [`drive_all`], and the
//! dynamic [`Multiplexer`] the network server drives connections with.
//!
//! The serving futures (`QueryFuture`, `QueryStream::poll_next_batch`) are
//! executor-agnostic — each poll registers the caller's waker on the
//! query's completion latch or the stream channel's waker slot, and the
//! pool wakes it when something happens. Nothing here spawns threads or
//! takes dependencies: an executor over those primitives is a ready queue,
//! a park, and a [`Wake`] impl.
//!
//! Three shapes cover every caller:
//!
//! * [`block_on`] drives **one** future on the calling thread — poll,
//!   park, repeat.
//! * [`drive_all`] drives a **fixed batch** of futures to completion on
//!   one thread, polling only tasks whose wakers fired, and reports how
//!   many polls that took (the measure of how little work waker-driven
//!   multiplexing does). `examples/async_server.rs` multiplexes its
//!   clients through this.
//! * [`Multiplexer`] is the **open-ended** variant: tasks are injected
//!   while the driver runs (from other threads, through a cloneable
//!   [`MuxHandle`]), which is exactly the shape of a network connection —
//!   a reader thread turns request frames into in-flight queries, one
//!   driver thread polls whichever of them made progress. `mrq-protocol`'s
//!   server runs one per connection.

use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::{pin, Pin};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::task::{Context, Poll, Wake, Waker};

/// Unparks the blocked thread when the future completes: the whole of
/// [`block_on`]'s reactor.
struct Unpark(std::thread::Thread);

impl Wake for Unpark {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives a single future to completion on the calling thread: poll, park
/// until woken, repeat. No runtime, no queues — the minimal executor.
///
/// # Examples
///
/// ```
/// let out = mrq_common::executor::block_on(async { 2 + 2 });
/// assert_eq!(out, 4);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
    let mut context = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut context) {
            Poll::Ready(output) => return output,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// The batch multiplexer's shared state: indices of tasks whose wakers
/// fired, plus the driver thread to unpark.
struct Reactor {
    ready: Mutex<VecDeque<usize>>,
    driver: std::thread::Thread,
}

/// One task's waker: enqueue my index, unpark the driver. Completion wakes
/// each future exactly once, so each index is enqueued at most once beyond
/// the initial seeding.
struct TaskWaker {
    index: usize,
    reactor: Arc<Reactor>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.reactor.ready.lock().unwrap().push_back(self.index);
        self.reactor.driver.unpark();
    }
}

/// Drives every future in the batch to completion on the calling thread,
/// polling only tasks whose wakers fired (after one seeding poll each).
/// Returns the outputs in submission order plus the total number of polls.
///
/// With wake-exactly-once futures (like `QueryFuture`) this settles at
/// roughly two polls per task: the seed and the completion.
///
/// # Examples
///
/// ```
/// use mrq_common::executor::drive_all;
///
/// let futures: Vec<_> = (0..4).map(|i| Box::pin(async move { i * i })).collect();
/// let (outputs, polls) = drive_all(futures);
/// assert_eq!(outputs, vec![0, 1, 4, 9]);
/// assert!(polls >= outputs.len());
/// ```
pub fn drive_all<F: Future + Unpin>(futures: Vec<F>) -> (Vec<F::Output>, usize) {
    let reactor = Arc::new(Reactor {
        ready: Mutex::new((0..futures.len()).collect()),
        driver: std::thread::current(),
    });
    let mut slots: Vec<Option<F>> = futures.into_iter().map(Some).collect();
    let mut results: Vec<Option<F::Output>> = (0..slots.len()).map(|_| None).collect();
    let wakers: Vec<Waker> = (0..slots.len())
        .map(|index| {
            Waker::from(Arc::new(TaskWaker {
                index,
                reactor: Arc::clone(&reactor),
            }))
        })
        .collect();
    let mut pending = slots.len();
    let mut polls = 0usize;
    while pending > 0 {
        let next = reactor.ready.lock().unwrap().pop_front();
        let Some(index) = next else {
            std::thread::park(); // nothing ready: wait for a completion
            continue;
        };
        let Some(future) = slots[index].as_mut() else {
            continue; // spurious wake after completion
        };
        polls += 1;
        let mut context = Context::from_waker(&wakers[index]);
        if let Poll::Ready(result) = Pin::new(future).poll(&mut context) {
            results[index] = Some(result);
            slots[index] = None;
            pending -= 1;
        }
    }
    (
        results.into_iter().map(|r| r.expect("driven")).collect(),
        polls,
    )
}

/// A poll-style task the [`Multiplexer`] drives: poll until `Ready(())`,
/// then drop. The boxed-closure shape (rather than a boxed future) keeps
/// the driver loop free of pinning ceremony and lets a task interleave
/// blocking work — writing a frame to a socket — between polls of an
/// inner future or stream.
pub type MuxTask = Box<dyn FnMut(&mut Context<'_>) -> Poll<()> + Send>;

/// What the driver should do next, decided under the state lock.
enum Step {
    /// Poll this task (taken out of the map while polled).
    Poll(u64, MuxTask),
    /// Nothing ready: park until a waker or an injection fires.
    Park,
    /// Closed and drained: the driver returns.
    Done,
}

struct MuxState {
    /// In-flight tasks by id. A task being polled is temporarily absent —
    /// its waker still enqueues the id, and the driver re-checks the map.
    tasks: HashMap<u64, MuxTask>,
    /// Ids whose wakers fired (or that were just spawned), FIFO.
    ready: VecDeque<u64>,
    next_id: u64,
    /// Set by [`MuxHandle::close`]: no further spawns; the driver exits
    /// once every remaining task completed.
    closed: bool,
    /// The driver thread, registered by [`Multiplexer::run`] so wakers and
    /// injections can unpark it.
    driver: Option<std::thread::Thread>,
}

struct MuxShared {
    state: Mutex<MuxState>,
    /// Signals [`MuxHandle::close`] callers that the driver drained.
    drained: Condvar,
}

impl MuxShared {
    fn lock(&self) -> MutexGuard<'_, MuxState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn unpark_driver(state: &MuxState) {
        if let Some(driver) = &state.driver {
            driver.unpark();
        }
    }
}

/// One task's waker: enqueue my id and unpark the driver. Stale wakes
/// (after the task completed) enqueue an id the driver no longer finds in
/// the map and skips.
struct MuxWaker {
    id: u64,
    shared: Arc<MuxShared>,
}

impl Wake for MuxWaker {
    fn wake(self: Arc<Self>) {
        let mut state = self.shared.lock();
        state.ready.push_back(self.id);
        MuxShared::unpark_driver(&state);
    }
}

/// A dynamic single-thread task multiplexer: the open-ended counterpart of
/// [`drive_all`]. One thread calls [`Multiplexer::run`] and becomes the
/// driver; any number of other threads inject tasks through cloned
/// [`MuxHandle`]s while it runs. The driver polls only tasks whose wakers
/// fired and parks otherwise, so thousands of in-flight queries cost one
/// parked thread — the serving shape `docs/SERVING.md` specifies, and the
/// per-connection engine of `mrq-protocol`'s server (reader thread injects,
/// driver thread polls and writes response frames).
///
/// # Examples
///
/// ```
/// use mrq_common::executor::Multiplexer;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use std::task::Poll;
///
/// let mux = Multiplexer::new();
/// let handle = mux.handle();
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..3 {
///     let hits = Arc::clone(&hits);
///     handle.spawn(Box::new(move |_cx| {
///         hits.fetch_add(1, Ordering::SeqCst);
///         Poll::Ready(())
///     }));
/// }
/// handle.close();
/// mux.run();
/// assert_eq!(hits.load(Ordering::SeqCst), 3);
/// ```
pub struct Multiplexer {
    shared: Arc<MuxShared>,
}

impl Default for Multiplexer {
    fn default() -> Self {
        Multiplexer::new()
    }
}

impl Multiplexer {
    /// A fresh multiplexer with no tasks and no driver.
    pub fn new() -> Multiplexer {
        Multiplexer {
            shared: Arc::new(MuxShared {
                state: Mutex::new(MuxState {
                    tasks: HashMap::new(),
                    ready: VecDeque::new(),
                    next_id: 0,
                    closed: false,
                    driver: None,
                }),
                drained: Condvar::new(),
            }),
        }
    }

    /// A cloneable injector for this multiplexer; hand one to every thread
    /// that creates work.
    pub fn handle(&self) -> MuxHandle {
        MuxHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the driver loop on the calling thread until the multiplexer is
    /// [closed](MuxHandle::close) *and* every task completed. Returns the
    /// total number of task polls.
    ///
    /// Tasks run (and are dropped) on this thread. A task that returns
    /// `Pending` without having registered the provided waker anywhere is
    /// never polled again until something else wakes it — the standard
    /// future contract.
    pub fn run(&self) -> usize {
        {
            let mut state = self.shared.lock();
            state.driver = Some(std::thread::current());
        }
        let mut polls = 0usize;
        loop {
            let step = {
                let mut state = self.shared.lock();
                match state.ready.pop_front() {
                    // Take the task out while polling it so the state lock
                    // is not held across user code; a concurrent wake for
                    // the id lands in `ready` and is honoured next round.
                    Some(id) => match state.tasks.remove(&id) {
                        Some(task) => Step::Poll(id, task),
                        None => continue, // stale wake after completion
                    },
                    None if state.closed && state.tasks.is_empty() => Step::Done,
                    None => Step::Park,
                }
            };
            match step {
                Step::Poll(id, mut task) => {
                    polls += 1;
                    let waker = Waker::from(Arc::new(MuxWaker {
                        id,
                        shared: Arc::clone(&self.shared),
                    }));
                    let mut context = Context::from_waker(&waker);
                    match task(&mut context) {
                        Poll::Ready(()) => drop(task),
                        Poll::Pending => {
                            let mut state = self.shared.lock();
                            state.tasks.insert(id, task);
                        }
                    }
                }
                Step::Park => std::thread::park(),
                Step::Done => break,
            }
        }
        self.shared.drained.notify_all();
        polls
    }
}

/// The injection side of a [`Multiplexer`]: spawn tasks from any thread
/// while the driver runs, then [`close`](MuxHandle::close) to let it
/// drain and return.
#[derive(Clone)]
pub struct MuxHandle {
    shared: Arc<MuxShared>,
}

impl MuxHandle {
    /// Injects a task and marks it ready for a seeding poll. Returns the
    /// task's id. Spawning after [`close`](MuxHandle::close) drops the
    /// task immediately (its queries cancel through their own drop
    /// semantics) and returns `None`.
    pub fn spawn(&self, task: MuxTask) -> Option<u64> {
        let mut state = self.shared.lock();
        if state.closed {
            return None;
        }
        let id = state.next_id;
        state.next_id += 1;
        state.tasks.insert(id, task);
        state.ready.push_back(id);
        MuxShared::unpark_driver(&state);
        Some(id)
    }

    /// Closes the multiplexer: no further spawns are accepted, and the
    /// driver returns once every in-flight task completed. Does not block;
    /// pair with [`MuxHandle::wait_drained`] or join the driver thread to
    /// synchronise.
    pub fn close(&self) {
        let mut state = self.shared.lock();
        state.closed = true;
        MuxShared::unpark_driver(&state);
    }

    /// Blocks until the driver drained after a [`close`](MuxHandle::close).
    pub fn wait_drained(&self) {
        let mut state = self.shared.lock();
        while !(state.closed && state.tasks.is_empty() && state.ready.is_empty()) {
            state = self
                .shared
                .drained
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The number of tasks currently in flight (polled or waiting).
    pub fn in_flight(&self) -> usize {
        self.shared.lock().tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn block_on_completes_an_async_block() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn drive_all_returns_outputs_in_submission_order() {
        let futures: Vec<_> = (0..8).map(|i| Box::pin(async move { i })).collect();
        let (outputs, polls) = drive_all(futures);
        assert_eq!(outputs, (0..8).collect::<Vec<_>>());
        assert_eq!(polls, 8, "immediately-ready futures poll exactly once");
    }

    #[test]
    fn multiplexer_drives_tasks_injected_while_running() {
        let mux = Multiplexer::new();
        let handle = mux.handle();
        let done = Arc::new(AtomicUsize::new(0));
        let injector = {
            let handle = handle.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                for _ in 0..16 {
                    let done = Arc::clone(&done);
                    handle.spawn(Box::new(move |_cx| {
                        done.fetch_add(1, Ordering::SeqCst);
                        Poll::Ready(())
                    }));
                }
                handle.close();
            })
        };
        let polls = mux.run();
        injector.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 16);
        assert_eq!(polls, 16);
        handle.wait_drained();
        assert_eq!(handle.in_flight(), 0);
    }

    #[test]
    fn multiplexer_repolls_only_woken_tasks() {
        // A task that stays pending once, wakes itself from another thread,
        // then completes: exactly two polls.
        let mux = Multiplexer::new();
        let handle = mux.handle();
        let polled = Arc::new(AtomicUsize::new(0));
        {
            let polled = Arc::clone(&polled);
            handle.spawn(Box::new(move |cx| {
                if polled.fetch_add(1, Ordering::SeqCst) == 0 {
                    let waker = cx.waker().clone();
                    thread::spawn(move || waker.wake());
                    Poll::Pending
                } else {
                    Poll::Ready(())
                }
            }));
        }
        handle.close();
        let polls = mux.run();
        assert_eq!(polled.load(Ordering::SeqCst), 2);
        assert_eq!(polls, 2);
    }

    #[test]
    fn spawning_after_close_is_rejected() {
        let mux = Multiplexer::new();
        let handle = mux.handle();
        handle.close();
        assert!(handle.spawn(Box::new(|_cx| Poll::Ready(()))).is_none());
        mux.run();
    }
}
