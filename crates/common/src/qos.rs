//! Quality-of-service classes and the weighted deficit round-robin queue
//! behind the worker pool.
//!
//! The pool used to run a single FIFO of tickets; every query — a client's
//! interactive probe or a bulk analytics sweep — competed equally. This
//! module generalises that FIFO into one queue per [`QosClass`] scheduled
//! by weighted deficit round-robin ([`ClassQueues`]): every ticket has unit
//! cost (one morsel, or one submitted query's dispatch), each class holds a
//! credit balance replenished to its weight whenever all backlogged classes
//! are out of credit, and grants are taken from the first backlogged class
//! (in fixed [`QosClass::ALL`] order) with credit remaining.
//!
//! Two properties matter for serving:
//!
//! * **Bounded interference** — a backlogged Interactive ticket waits for at
//!   most the *remaining credit* of the lower classes before it is served:
//!   Interactive is scanned first and its credit is always replenished while
//!   it has no backlog, so only the Batch and Maintenance remainders can be
//!   spent first. With the default 8:2:1 weights that is at most three
//!   grants (three morsels) of delay.
//! * **No starvation** — every class still receives its weight's share of
//!   grants under full load from the classes above it; weights set the
//!   ratio, the round-robin sets the interleaving.
//!
//! Within a class, ordering stays exactly the pool's PR-3 policy: FIFO with
//! morsel tickets requeued at the back, i.e. round-robin between jobs at
//! morsel granularity.
//!
//! Weights are not fixed for the queue's lifetime: [`ClassQueues::set_weights`]
//! reweights a live queue (the pool exposes it as
//! [`crate::pool::WorkerPool::set_weights`]), taking effect at the next
//! grant — an operator can throttle bulk work during a traffic spike
//! without draining or rebuilding the pool.

use std::collections::VecDeque;

/// Number of scheduling classes (the length of [`QosClass::ALL`]).
const CLASSES: usize = 3;

/// The scheduling class a query's pool tickets are queued under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QosClass {
    /// Latency-sensitive work (the default): scanned first and weighted
    /// heavily, so short queries keep dispatching while bulk work runs.
    #[default]
    Interactive,
    /// Throughput work that tolerates queueing behind Interactive tickets;
    /// it is never starved, only de-weighted.
    Batch,
    /// Background housekeeping (index rebuilds, cache warming, compaction):
    /// scanned last and weighted below [`QosClass::Batch`], so it only
    /// soaks up capacity the serving classes leave on the table — yet its
    /// non-zero weight guarantees it is never starved outright.
    Maintenance,
}

impl QosClass {
    /// Every class, in the fixed order grants are scanned.
    pub const ALL: [QosClass; CLASSES] = [
        QosClass::Interactive,
        QosClass::Batch,
        QosClass::Maintenance,
    ];

    /// How many admission reserves stand between this class and the full
    /// submission budget: under overload, classes with a higher tier hit
    /// their (smaller) limit first and are shed first. The fixed order is
    /// Maintenance (tier 2) → Batch (tier 1) → Interactive (tier 0), the
    /// mirror of the dispatch-priority order above — work we schedule last
    /// is also the work we shed first (see `crate::admission`).
    pub fn shed_tier(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
            QosClass::Maintenance => 2,
        }
    }

    /// Index of this class into per-class arrays ([`QosClass::ALL`] order).
    fn index(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
            QosClass::Maintenance => 2,
        }
    }
}

/// Per-class grant weights for [`ClassQueues`]: out of every
/// `interactive + batch + maintenance` grants under full load, each class
/// receives its weight's share. The default is 8:2:1 — Interactive keeps
/// the historical 4× Batch share, and Maintenance trickles below Batch at
/// one grant in eleven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosWeights {
    /// Grants per round for [`QosClass::Interactive`].
    pub interactive: u32,
    /// Grants per round for [`QosClass::Batch`].
    pub batch: u32,
    /// Grants per round for [`QosClass::Maintenance`].
    pub maintenance: u32,
}

impl Default for QosWeights {
    fn default() -> Self {
        QosWeights {
            interactive: 8,
            batch: 2,
            maintenance: 1,
        }
    }
}

impl QosWeights {
    /// Weights clamped to at least 1 each (a zero weight would starve the
    /// class outright, which deficit round-robin is meant to prevent).
    pub fn new(interactive: u32, batch: u32, maintenance: u32) -> Self {
        QosWeights {
            interactive: interactive.max(1),
            batch: batch.max(1),
            maintenance: maintenance.max(1),
        }
    }

    /// The weights as a per-class array in [`QosClass::ALL`] order.
    fn as_array(&self) -> [u32; CLASSES] {
        [self.interactive, self.batch, self.maintenance]
    }
}

/// One FIFO per [`QosClass`], scheduled by weighted deficit round-robin
/// with unit ticket cost. Deterministic: the grant sequence is a pure
/// function of the push/pop/reweight history, which is what makes the
/// fairness bounds unit-testable without threads or sleeps.
#[derive(Debug)]
pub struct ClassQueues<T> {
    queues: [VecDeque<T>; CLASSES],
    credit: [u32; CLASSES],
    weights: QosWeights,
}

impl<T> ClassQueues<T> {
    /// Empty queues with every class's credit at its full weight. Weights
    /// are re-clamped to at least 1 here (struct-literal `QosWeights`
    /// construction bypasses [`QosWeights::new`]'s clamp): a zero weight
    /// would make [`ClassQueues::pop_front`] spin forever on a backlogged
    /// class that can never earn credit.
    pub fn new(weights: QosWeights) -> Self {
        let weights = QosWeights::new(weights.interactive, weights.batch, weights.maintenance);
        ClassQueues {
            queues: [const { VecDeque::new() }; CLASSES],
            credit: weights.as_array(),
            weights,
        }
    }

    /// Replaces the grant weights on a live queue. Takes effect at the next
    /// grant: every class's credit resets to its new weight (the in-flight
    /// round restarts), so the new ratio applies immediately rather than
    /// after the old round drains. Queued tickets are untouched. Weights
    /// are re-clamped to at least 1, as in [`ClassQueues::new`].
    pub fn set_weights(&mut self, weights: QosWeights) {
        self.weights = QosWeights::new(weights.interactive, weights.batch, weights.maintenance);
        self.credit = self.weights.as_array();
    }

    /// The current grant weights.
    pub fn weights(&self) -> QosWeights {
        self.weights
    }

    /// Enqueues an item at the back of its class's FIFO.
    pub fn push_back(&mut self, class: QosClass, item: T) {
        self.queues[class.index()].push_back(item);
    }

    /// Total queued items across every class.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when no class has queued items.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Grants the next ticket: the first backlogged class in
    /// [`QosClass::ALL`] order with credit remaining, decrementing its
    /// credit. When every backlogged class is out of credit a new round
    /// starts (all credits replenish to their weights). Returns `None` only
    /// when every queue is empty.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        loop {
            for class in QosClass::ALL {
                let i = class.index();
                if self.credit[i] > 0 {
                    if let Some(item) = self.queues[i].pop_front() {
                        self.credit[i] -= 1;
                        return Some(item);
                    }
                }
            }
            // Every backlogged class exhausted its credit: new round.
            // Credits reset (rather than accumulate) because tickets have
            // unit cost — there is no oversized item to amortise, and
            // resetting bounds any burst a class can save up.
            self.credit = self.weights.as_array();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains `n` grants, tagging each with its class (items are the class
    /// they were pushed under, so the item *is* the observed class).
    fn grants(queues: &mut ClassQueues<QosClass>, n: usize) -> Vec<QosClass> {
        (0..n)
            .map(|_| queues.pop_front().expect("backlogged"))
            .collect()
    }

    fn saturate(queues: &mut ClassQueues<QosClass>, class: QosClass, n: usize) {
        for _ in 0..n {
            queues.push_back(class, class);
        }
    }

    fn share(order: &[QosClass], class: QosClass) -> usize {
        order.iter().filter(|c| **c == class).count()
    }

    #[test]
    fn default_weights_interleave_eight_two_one() {
        let mut queues = ClassQueues::new(QosWeights::default());
        saturate(&mut queues, QosClass::Interactive, 80);
        saturate(&mut queues, QosClass::Batch, 20);
        saturate(&mut queues, QosClass::Maintenance, 10);
        let order = grants(&mut queues, 55);
        // 5 full rounds of 11 grants: 8 I + 2 B + 1 M each.
        assert_eq!(share(&order, QosClass::Interactive), 40);
        assert_eq!(share(&order, QosClass::Batch), 10);
        assert_eq!(share(&order, QosClass::Maintenance), 5);
        // And the interleaving is the deterministic 8×I, 2×B, 1×M round.
        let round: Vec<QosClass> = order[..11].to_vec();
        assert_eq!(share(&round[..8], QosClass::Interactive), 8);
        assert_eq!(
            &round[8..],
            &[QosClass::Batch, QosClass::Batch, QosClass::Maintenance,]
        );
    }

    #[test]
    fn interactive_keeps_its_four_to_one_batch_share() {
        // The historical contract: Interactive receives 4× Batch's grants
        // under mixed backlog, under the new default weights too (8:2).
        let mut queues = ClassQueues::new(QosWeights::default());
        saturate(&mut queues, QosClass::Interactive, 800);
        saturate(&mut queues, QosClass::Batch, 200);
        let order = grants(&mut queues, 100);
        assert_eq!(share(&order, QosClass::Interactive), 80);
        assert_eq!(share(&order, QosClass::Batch), 20);
    }

    #[test]
    fn no_class_is_starved_under_load_from_above() {
        let mut queues = ClassQueues::new(QosWeights::new(4, 2, 1));
        saturate(&mut queues, QosClass::Interactive, 1000);
        saturate(&mut queues, QosClass::Batch, 1000);
        saturate(&mut queues, QosClass::Maintenance, 5);
        let order = grants(&mut queues, 35);
        assert_eq!(
            share(&order, QosClass::Maintenance),
            5,
            "all five maintenance tickets granted within five rounds"
        );
    }

    #[test]
    fn maintenance_sits_below_batch() {
        // Below in both senses: scanned after Batch within a round, and
        // a strictly smaller share under full three-way backlog.
        let mut queues = ClassQueues::new(QosWeights::default());
        saturate(&mut queues, QosClass::Batch, 50);
        saturate(&mut queues, QosClass::Maintenance, 50);
        let order = grants(&mut queues, 30);
        assert!(
            share(&order, QosClass::Batch) > share(&order, QosClass::Maintenance),
            "batch outweighs maintenance"
        );
        assert_eq!(order[0], QosClass::Batch, "batch is scanned first");
    }

    #[test]
    fn interactive_behind_saturating_lower_classes_dispatches_within_five_grants() {
        // The acceptance bound: an Interactive ticket arriving while Batch
        // and Maintenance work saturates the pool is granted within 5
        // ticket grants — at *every* phase of the lower classes' credit
        // cycle. Worst case is one grant plus the remaining Batch (2) and
        // Maintenance (1) credit.
        for lower_grants_before_arrival in 0..12 {
            let mut queues = ClassQueues::new(QosWeights::default());
            saturate(&mut queues, QosClass::Batch, 100);
            saturate(&mut queues, QosClass::Maintenance, 100);
            let drained = grants(&mut queues, lower_grants_before_arrival);
            assert!(drained.iter().all(|c| *c != QosClass::Interactive));
            queues.push_back(QosClass::Interactive, QosClass::Interactive);
            let position = (1..=5)
                .find(|_| queues.pop_front() == Some(QosClass::Interactive))
                .expect("interactive granted within 5 grants");
            assert!(
                position <= 5,
                "arrival after {lower_grants_before_arrival} lower-class grants: \
                 granted at position {position}"
            );
        }
    }

    #[test]
    fn set_weights_takes_effect_at_the_next_grant() {
        let mut queues = ClassQueues::new(QosWeights::new(1, 1, 1));
        saturate(&mut queues, QosClass::Interactive, 100);
        saturate(&mut queues, QosClass::Batch, 100);
        // 1:1 alternation under the initial weights.
        assert_eq!(
            grants(&mut queues, 4),
            vec![
                QosClass::Interactive,
                QosClass::Batch,
                QosClass::Interactive,
                QosClass::Batch,
            ]
        );
        // Reweight mid-stream: the very next round is 3 I to 1 B.
        queues.set_weights(QosWeights::new(3, 1, 1));
        assert_eq!(queues.weights(), QosWeights::new(3, 1, 1));
        assert_eq!(
            grants(&mut queues, 8),
            vec![
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Batch,
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Batch,
            ]
        );
        // Reweighting resets credit, so a half-spent round cannot leak the
        // old ratio into the new one.
        queues.set_weights(QosWeights::new(1, 2, 1));
        assert_eq!(
            grants(&mut queues, 3),
            vec![QosClass::Interactive, QosClass::Batch, QosClass::Batch]
        );
    }

    #[test]
    fn empty_queues_return_none_and_single_class_drains_fifo() {
        let mut queues: ClassQueues<u32> = ClassQueues::new(QosWeights::default());
        assert!(queues.pop_front().is_none());
        assert!(queues.is_empty());
        for i in 0..10 {
            queues.push_back(QosClass::Maintenance, i);
        }
        assert_eq!(queues.len(), 10);
        let drained: Vec<u32> = (0..10).map(|_| queues.pop_front().unwrap()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>(), "FIFO within a class");
        assert!(queues.pop_front().is_none());
    }

    #[test]
    fn zero_weights_are_clamped() {
        let weights = QosWeights::new(0, 0, 0);
        assert_eq!(weights, QosWeights::new(1, 1, 1));
        // Struct-literal construction bypasses QosWeights::new; the queue
        // must re-clamp or a backlogged zero-weight class would spin
        // pop_front forever. set_weights must re-clamp too.
        let mut literal = ClassQueues::new(QosWeights {
            interactive: 4,
            batch: 0,
            maintenance: 0,
        });
        literal.push_back(QosClass::Batch, QosClass::Batch);
        assert_eq!(literal.pop_front(), Some(QosClass::Batch));
        literal.set_weights(QosWeights {
            interactive: 1,
            batch: 1,
            maintenance: 0,
        });
        literal.push_back(QosClass::Maintenance, QosClass::Maintenance);
        assert_eq!(literal.pop_front(), Some(QosClass::Maintenance));
        let mut queues = ClassQueues::new(weights);
        saturate(&mut queues, QosClass::Interactive, 2);
        saturate(&mut queues, QosClass::Batch, 2);
        // 1:1 alternation (maintenance credit goes unspent: empty queue).
        assert_eq!(
            grants(&mut queues, 4),
            vec![
                QosClass::Interactive,
                QosClass::Batch,
                QosClass::Interactive,
                QosClass::Batch,
            ]
        );
    }
}
