//! Quality-of-service classes and the weighted deficit round-robin queue
//! behind the worker pool.
//!
//! The pool used to run a single FIFO of tickets; every query — a client's
//! interactive probe or a bulk analytics sweep — competed equally. This
//! module generalises that FIFO into one queue per [`QosClass`] scheduled
//! by weighted deficit round-robin ([`ClassQueues`]): every ticket has unit
//! cost (one morsel, or one submitted query's dispatch), each class holds a
//! credit balance replenished to its weight whenever all backlogged classes
//! are out of credit, and grants are taken from the first backlogged class
//! (in fixed [`QosClass::ALL`] order) with credit remaining.
//!
//! Two properties matter for serving:
//!
//! * **Bounded interference** — a backlogged Interactive ticket waits for at
//!   most `batch` (the Batch weight, default 1) grants before it is served:
//!   Interactive is scanned first and its credit is always replenished while
//!   it has no backlog, so only Batch's *remaining* credit can be spent
//!   first. With the default 4:1 weights that is one morsel of delay.
//! * **No starvation** — Batch still receives `batch` out of every
//!   `interactive + batch` grants under full Interactive load; weights set
//!   the ratio, the round-robin sets the interleaving.
//!
//! Within a class, ordering stays exactly the pool's PR-3 policy: FIFO with
//! morsel tickets requeued at the back, i.e. round-robin between jobs at
//! morsel granularity.

use std::collections::VecDeque;

/// The scheduling class a query's pool tickets are queued under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QosClass {
    /// Latency-sensitive work (the default): scanned first and weighted
    /// heavily, so short queries keep dispatching while bulk work runs.
    #[default]
    Interactive,
    /// Throughput work that tolerates queueing behind Interactive tickets;
    /// it is never starved, only de-weighted.
    Batch,
}

impl QosClass {
    /// Every class, in the fixed order grants are scanned.
    pub const ALL: [QosClass; 2] = [QosClass::Interactive, QosClass::Batch];

    /// Index of this class into per-class arrays ([`QosClass::ALL`] order).
    fn index(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
        }
    }
}

/// Per-class grant weights for [`ClassQueues`]: out of every
/// `interactive + batch` grants under full load, each class receives its
/// weight's share. The default is 4:1 in favour of Interactive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosWeights {
    /// Grants per round for [`QosClass::Interactive`].
    pub interactive: u32,
    /// Grants per round for [`QosClass::Batch`].
    pub batch: u32,
}

impl Default for QosWeights {
    fn default() -> Self {
        QosWeights {
            interactive: 4,
            batch: 1,
        }
    }
}

impl QosWeights {
    /// Weights clamped to at least 1 each (a zero weight would starve the
    /// class outright, which deficit round-robin is meant to prevent).
    pub fn new(interactive: u32, batch: u32) -> Self {
        QosWeights {
            interactive: interactive.max(1),
            batch: batch.max(1),
        }
    }
}

/// One FIFO per [`QosClass`], scheduled by weighted deficit round-robin
/// with unit ticket cost. Deterministic: the grant sequence is a pure
/// function of the push/pop history, which is what makes the fairness
/// bounds unit-testable without threads or sleeps.
#[derive(Debug)]
pub struct ClassQueues<T> {
    queues: [VecDeque<T>; 2],
    credit: [u32; 2],
    weights: QosWeights,
}

impl<T> ClassQueues<T> {
    /// Empty queues with every class's credit at its full weight. Weights
    /// are re-clamped to at least 1 here (struct-literal `QosWeights`
    /// construction bypasses [`QosWeights::new`]'s clamp): a zero weight
    /// would make [`ClassQueues::pop_front`] spin forever on a backlogged
    /// class that can never earn credit.
    pub fn new(weights: QosWeights) -> Self {
        let weights = QosWeights::new(weights.interactive, weights.batch);
        ClassQueues {
            queues: [VecDeque::new(), VecDeque::new()],
            credit: [weights.interactive, weights.batch],
            weights,
        }
    }

    /// Enqueues an item at the back of its class's FIFO.
    pub fn push_back(&mut self, class: QosClass, item: T) {
        self.queues[class.index()].push_back(item);
    }

    /// Total queued items across every class.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when no class has queued items.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Grants the next ticket: the first backlogged class in
    /// [`QosClass::ALL`] order with credit remaining, decrementing its
    /// credit. When every backlogged class is out of credit a new round
    /// starts (all credits replenish to their weights). Returns `None` only
    /// when every queue is empty.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        loop {
            for class in QosClass::ALL {
                let i = class.index();
                if self.credit[i] > 0 {
                    if let Some(item) = self.queues[i].pop_front() {
                        self.credit[i] -= 1;
                        return Some(item);
                    }
                }
            }
            // Every backlogged class exhausted its credit: new round.
            // Credits reset (rather than accumulate) because tickets have
            // unit cost — there is no oversized item to amortise, and
            // resetting bounds any burst a class can save up.
            self.credit = [self.weights.interactive, self.weights.batch];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains `n` grants, tagging each with its class (items are the class
    /// they were pushed under, so the item *is* the observed class).
    fn grants(queues: &mut ClassQueues<QosClass>, n: usize) -> Vec<QosClass> {
        (0..n)
            .map(|_| queues.pop_front().expect("backlogged"))
            .collect()
    }

    fn saturate(queues: &mut ClassQueues<QosClass>, class: QosClass, n: usize) {
        for _ in 0..n {
            queues.push_back(class, class);
        }
    }

    #[test]
    fn default_weights_interleave_four_to_one() {
        let mut queues = ClassQueues::new(QosWeights::default());
        saturate(&mut queues, QosClass::Interactive, 80);
        saturate(&mut queues, QosClass::Batch, 20);
        let order = grants(&mut queues, 100);
        let batch = order.iter().filter(|c| **c == QosClass::Batch).count();
        assert_eq!(batch, 20, "batch receives exactly its 1-in-5 share");
        // And the interleaving is the deterministic I,I,I,I,B round.
        assert_eq!(
            &order[..10],
            &[
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Batch,
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Interactive,
                QosClass::Batch,
            ]
        );
    }

    #[test]
    fn batch_is_never_starved_under_interactive_load() {
        let mut queues = ClassQueues::new(QosWeights::new(4, 1));
        saturate(&mut queues, QosClass::Interactive, 1000);
        saturate(&mut queues, QosClass::Batch, 5);
        let order = grants(&mut queues, 25);
        assert_eq!(
            order.iter().filter(|c| **c == QosClass::Batch).count(),
            5,
            "all five batch tickets granted within five rounds"
        );
    }

    #[test]
    fn interactive_behind_saturating_batch_dispatches_within_five_grants() {
        // The acceptance bound: with 4:1 weights, an Interactive ticket
        // arriving while Batch work saturates the pool is granted within 5
        // ticket grants — at *every* phase of the batch credit cycle.
        for batch_grants_before_arrival in 0..10 {
            let mut queues = ClassQueues::new(QosWeights::new(4, 1));
            saturate(&mut queues, QosClass::Batch, 100);
            let drained = grants(&mut queues, batch_grants_before_arrival);
            assert!(drained.iter().all(|c| *c == QosClass::Batch));
            queues.push_back(QosClass::Interactive, QosClass::Interactive);
            let position = (1..=5)
                .find(|_| queues.pop_front() == Some(QosClass::Interactive))
                .expect("interactive granted within 5 grants");
            assert!(
                position <= 5,
                "arrival after {batch_grants_before_arrival} batch grants: \
                 granted at position {position}"
            );
        }
    }

    #[test]
    fn empty_queues_return_none_and_single_class_drains_fifo() {
        let mut queues: ClassQueues<u32> = ClassQueues::new(QosWeights::default());
        assert!(queues.pop_front().is_none());
        assert!(queues.is_empty());
        for i in 0..10 {
            queues.push_back(QosClass::Batch, i);
        }
        assert_eq!(queues.len(), 10);
        let drained: Vec<u32> = (0..10).map(|_| queues.pop_front().unwrap()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>(), "FIFO within a class");
        assert!(queues.pop_front().is_none());
    }

    #[test]
    fn zero_weights_are_clamped() {
        let weights = QosWeights::new(0, 0);
        assert_eq!(weights, QosWeights::new(1, 1));
        // Struct-literal construction bypasses QosWeights::new; the queue
        // must re-clamp or a backlogged zero-weight class would spin
        // pop_front forever.
        let mut literal = ClassQueues::new(QosWeights {
            interactive: 4,
            batch: 0,
        });
        literal.push_back(QosClass::Batch, QosClass::Batch);
        assert_eq!(literal.pop_front(), Some(QosClass::Batch));
        let mut queues = ClassQueues::new(weights);
        saturate(&mut queues, QosClass::Interactive, 2);
        saturate(&mut queues, QosClass::Batch, 2);
        // 1:1 alternation.
        assert_eq!(
            grants(&mut queues, 4),
            vec![
                QosClass::Interactive,
                QosClass::Batch,
                QosClass::Interactive,
                QosClass::Batch,
            ]
        );
    }
}
