//! Deterministic per-query work accounting.
//!
//! The build/CI host has a single CPU, so wall-clock comparisons between
//! strategies are noise-bound there. This module provides the counted
//! alternative (in the spirit of callgrind-style instruction counting):
//! every fused loop increments a small set of [`WorkCounters`] — rows
//! scanned, hash-build inserts, probe lookups, key comparisons, rows
//! materialized, morsels executed, staging copies, batches/rows streamed —
//! and the per-worker counters aggregate per query into the [`WorkStats`]
//! surfaced on the final query output.
//!
//! # Determinism contract
//!
//! For a fixed query, data set and strategy, every counter except
//! [`WorkCounters::morsels_executed`] is **invariant across thread counts,
//! morsel sizes and stealing modes**: parallel execution partitions the
//! same probe scan into disjoint ranges, so per-range counters sum to the
//! sequential totals exactly. `morsels_executed` is the one documented
//! exception — it counts how the scan was *partitioned*, which is exactly
//! what changes with the scheduler shape. Tests and the counted bench mode
//! compare [`WorkCounters::partition_invariant`] snapshots when they need
//! cross-scheduler bit-identity.
//!
//! Counters are plain `u64` fields bumped through `#[inline]` accessors;
//! in the fused loops they compile to a register increment with no branch,
//! so the accounting is cheap enough to stay on permanently.

/// Per-worker (and, after merging, per-query) deterministic work counters.
///
/// Each parallel worker owns a forked counter set (forks start at zero);
/// partial states merge with [`WorkCounters::add`], so totals are
/// independent of which worker ran which morsel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct WorkCounters {
    /// Rows read from base tables: probe-side rows consumed plus build-side
    /// rows scanned while constructing join hash tables (and, for the
    /// interpreted baseline, elements pulled through the enumerable chain).
    pub rows_scanned: u64,
    /// Rows inserted into join hash tables (rows surviving build filters).
    pub build_inserts: u64,
    /// Hash-table lookups performed while probing joins.
    pub probe_lookups: u64,
    /// Encoded key parts compared/hashed across all probe lookups.
    pub key_comparisons: u64,
    /// Rows that survived every filter and join and reached the output
    /// (group update, top-N offer or plain materialization).
    pub rows_materialized: u64,
    /// Execution chunks processed (one per sequential pass, one per
    /// parallel morsel, one per staged chunk in the hybrid engine). The
    /// only counter that legitimately varies with [`crate::ParallelConfig`].
    pub morsels_executed: u64,
    /// Rows copied into hybrid staging buffers (§6 staging cost).
    pub staging_copies: u64,
    /// Row batches published through a streamed query's channel (the final
    /// short batch counts). Partition-invariant: batches are re-chunked
    /// from the total ordered row sequence by [`crate::stream`], so the
    /// count depends only on rows and `stream_batch_rows`, not scheduling.
    pub batches_streamed: u64,
    /// Rows published through a streamed query's channel (streamed prefix;
    /// rows returned as the residual `QueryOutput` are not counted here).
    pub rows_streamed: u64,
}

/// The aggregated per-query view of [`WorkCounters`] (same representation;
/// the alias marks aggregation boundaries in signatures).
pub type WorkStats = WorkCounters;

impl WorkCounters {
    /// A zeroed counter set.
    pub const fn new() -> Self {
        WorkCounters {
            rows_scanned: 0,
            build_inserts: 0,
            probe_lookups: 0,
            key_comparisons: 0,
            rows_materialized: 0,
            morsels_executed: 0,
            staging_copies: 0,
            batches_streamed: 0,
            rows_streamed: 0,
        }
    }

    /// Records one row read from a base table.
    #[inline]
    pub fn scanned_row(&mut self) {
        self.rows_scanned += 1;
    }

    /// Records `n` rows read from a base table (bulk accounting for
    /// parallel builds, where totals are derived after the fan-out so they
    /// stay identical to a sequential scan).
    #[inline]
    pub fn scanned_rows(&mut self, n: u64) {
        self.rows_scanned += n;
    }

    /// Records one row inserted into a join hash table.
    #[inline]
    pub fn built_insert(&mut self) {
        self.build_inserts += 1;
    }

    /// Records `n` hash-table inserts (bulk accounting for parallel builds).
    #[inline]
    pub fn built_inserts(&mut self, n: u64) {
        self.build_inserts += n;
    }

    /// Records one probe lookup with a composite key of `key_parts` parts.
    #[inline]
    pub fn probed(&mut self, key_parts: u64) {
        self.probe_lookups += 1;
        self.key_comparisons += key_parts;
    }

    /// Records one row reaching the output stage.
    #[inline]
    pub fn materialized_row(&mut self) {
        self.rows_materialized += 1;
    }

    /// Records one execution chunk (sequential pass, morsel, staged chunk).
    #[inline]
    pub fn executed_morsel(&mut self) {
        self.morsels_executed += 1;
    }

    /// Records `n` rows copied into a staging buffer.
    #[inline]
    pub fn staged_rows(&mut self, n: u64) {
        self.staging_copies += n;
    }

    /// Records a streamed query's channel totals: `batches` published
    /// batches carrying `rows` rows (folded in once, at stream close).
    #[inline]
    pub fn streamed(&mut self, batches: u64, rows: u64) {
        self.batches_streamed += batches;
        self.rows_streamed += rows;
    }

    /// Folds another counter set into this one (parallel merge).
    pub fn add(&mut self, other: &WorkCounters) {
        self.rows_scanned += other.rows_scanned;
        self.build_inserts += other.build_inserts;
        self.probe_lookups += other.probe_lookups;
        self.key_comparisons += other.key_comparisons;
        self.rows_materialized += other.rows_materialized;
        self.morsels_executed += other.morsels_executed;
        self.staging_copies += other.staging_copies;
        self.batches_streamed += other.batches_streamed;
        self.rows_streamed += other.rows_streamed;
    }

    /// This counter set with the partitioning-dependent counter
    /// ([`WorkCounters::morsels_executed`]) zeroed: the projection that must
    /// be bit-identical across thread counts, morsel sizes and stealing
    /// modes for the same query and data.
    pub fn partition_invariant(&self) -> WorkCounters {
        WorkCounters {
            morsels_executed: 0,
            ..*self
        }
    }

    /// Sum of every counter — a convenient monotone progress measure.
    pub fn total(&self) -> u64 {
        self.as_pairs().iter().map(|(_, v)| *v).sum()
    }

    /// True if no work has been recorded.
    pub fn is_zero(&self) -> bool {
        *self == WorkCounters::new()
    }

    /// The counters as stable `(name, value)` pairs, in declaration order —
    /// the counted bench mode and tests iterate these so metric names stay
    /// in one place.
    pub fn as_pairs(&self) -> [(&'static str, u64); 9] {
        [
            ("rows_scanned", self.rows_scanned),
            ("build_inserts", self.build_inserts),
            ("probe_lookups", self.probe_lookups),
            ("key_comparisons", self.key_comparisons),
            ("rows_materialized", self.rows_materialized),
            ("morsels_executed", self.morsels_executed),
            ("staging_copies", self.staging_copies),
            ("batches_streamed", self.batches_streamed),
            ("rows_streamed", self.rows_streamed),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sums_every_counter() {
        let mut a = WorkCounters::new();
        a.scanned_row();
        a.built_insert();
        a.probed(3);
        a.materialized_row();
        a.executed_morsel();
        a.staged_rows(5);
        a.streamed(2, 7);
        let mut b = a;
        b.add(&a);
        for ((name, doubled), (_, single)) in b.as_pairs().iter().zip(a.as_pairs().iter()) {
            assert_eq!(*doubled, single * 2, "{name}");
        }
        assert_eq!(b.total(), a.total() * 2);
    }

    #[test]
    fn partition_invariant_zeroes_only_morsels() {
        let mut w = WorkCounters::new();
        w.scanned_rows(10);
        w.executed_morsel();
        w.executed_morsel();
        w.streamed(1, 10);
        let inv = w.partition_invariant();
        assert_eq!(inv.morsels_executed, 0);
        assert_eq!(inv.rows_scanned, 10);
        // Streaming counters are re-chunked from the total row sequence,
        // so they survive the partition-invariant projection.
        assert_eq!(inv.batches_streamed, 1);
        assert_eq!(inv.rows_streamed, 10);
        assert!(!w.is_zero());
        assert!(WorkCounters::new().is_zero());
    }

    #[test]
    fn pairs_cover_every_field_exactly_once() {
        let mut w = WorkCounters::new();
        w.scanned_row();
        w.built_inserts(2);
        w.probed(4);
        w.materialized_row();
        w.executed_morsel();
        w.staged_rows(6);
        w.streamed(2, 7);
        // 1 + 2 + 1 + 4 + 1 + 1 + 6 + 2 + 7: if a field were missing from
        // `as_pairs` (or double-counted) the total would not match.
        assert_eq!(w.total(), 25);
    }
}
