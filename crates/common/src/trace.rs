//! Memory-access tracing.
//!
//! Figure 14 of the paper reports last-level cache misses measured with
//! hardware counters. This reproduction cannot rely on PMU access, so the
//! engines are instrumented: every data access that matters for cache
//! behaviour (object field reads through the managed heap, sequential reads
//! of native row buffers, hash-table probes, staging writes) is reported to a
//! [`MemTracer`]. The `mrq-cachesim` crate provides the set-associative LLC
//! model that consumes these events; a [`NullTracer`] (or simply running
//! without a tracer) keeps the fast path free of simulation cost.

/// Classifies an access so the cache simulator can keep per-category stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read of a managed object header or field.
    ManagedRead,
    /// Write of a managed object (allocation, result construction).
    ManagedWrite,
    /// Sequential read of a native row/column buffer.
    NativeRead,
    /// Write into a native buffer (staging, hash-table insert).
    NativeWrite,
    /// Hash-table probe (random access).
    HashProbe,
}

/// A sink for memory-access events.
///
/// Addresses are byte addresses in a flat simulated address space; producers
/// use stable per-structure base addresses (e.g. the managed heap's segment
/// addresses, a buffer's pointer value) so that re-running a query produces
/// the same trace shape.
pub trait MemTracer {
    /// Records an access of `len` bytes starting at `addr`.
    fn access(&mut self, kind: AccessKind, addr: u64, len: u32);
}

/// A tracer that discards every event. Exists so code can be written against
/// `&mut dyn MemTracer` unconditionally when convenient.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl MemTracer for NullTracer {
    #[inline]
    fn access(&mut self, _kind: AccessKind, _addr: u64, _len: u32) {}
}

/// A tracer that simply counts events and bytes per category. Used in tests
/// and as a cheap sanity check that instrumentation points fire.
#[derive(Debug, Default, Clone)]
pub struct CountingTracer {
    /// Number of events seen per category, indexed by [`AccessKind`] order.
    pub events: [u64; 5],
    /// Number of bytes seen per category.
    pub bytes: [u64; 5],
}

impl CountingTracer {
    fn slot(kind: AccessKind) -> usize {
        match kind {
            AccessKind::ManagedRead => 0,
            AccessKind::ManagedWrite => 1,
            AccessKind::NativeRead => 2,
            AccessKind::NativeWrite => 3,
            AccessKind::HashProbe => 4,
        }
    }

    /// Total number of recorded events.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Events recorded for one category.
    pub fn events_of(&self, kind: AccessKind) -> u64 {
        self.events[Self::slot(kind)]
    }
}

impl MemTracer for CountingTracer {
    #[inline]
    fn access(&mut self, kind: AccessKind, _addr: u64, len: u32) {
        let slot = Self::slot(kind);
        self.events[slot] += 1;
        self.bytes[slot] += len as u64;
    }
}

/// Optional tracer handle threaded through engine internals.
///
/// `None` is the common case and costs a single branch per instrumentation
/// point; benchmark runs that measure time use `None`, runs that measure
/// cache behaviour pass a simulator.
pub type TraceHandle<'a> = Option<&'a mut dyn MemTracer>;

/// Reports an access to an optional tracer. Keeping this as a free function
/// (instead of a method on `Option`) keeps call sites short.
#[inline]
pub fn trace(handle: &mut TraceHandle<'_>, kind: AccessKind, addr: u64, len: u32) {
    if let Some(tracer) = handle.as_deref_mut() {
        tracer.access(kind, addr, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_accumulates() {
        let mut t = CountingTracer::default();
        t.access(AccessKind::ManagedRead, 0x1000, 8);
        t.access(AccessKind::ManagedRead, 0x1008, 8);
        t.access(AccessKind::HashProbe, 0x9000, 16);
        assert_eq!(t.events_of(AccessKind::ManagedRead), 2);
        assert_eq!(t.events_of(AccessKind::HashProbe), 1);
        assert_eq!(t.total_events(), 3);
        assert_eq!(t.bytes[0], 16);
    }

    #[test]
    fn trace_helper_handles_none_and_some() {
        let mut none: TraceHandle<'_> = None;
        trace(&mut none, AccessKind::NativeRead, 0, 4); // must not panic
        let mut counter = CountingTracer::default();
        {
            let mut some: TraceHandle<'_> = Some(&mut counter);
            trace(&mut some, AccessKind::NativeRead, 0, 4);
        }
        assert_eq!(counter.events_of(AccessKind::NativeRead), 1);
    }

    #[test]
    fn null_tracer_is_a_no_op() {
        let mut t = NullTracer;
        t.access(AccessKind::NativeWrite, 1, 1);
    }
}
