//! The shared morsel scheduler: contiguous range partitioning plus scoped
//! worker threads.
//!
//! The paper leaves parallel execution to future work (§4, §9) but observes
//! that its database-style plan shape makes standard parallelisation
//! directly applicable. Every parallel path in this workspace — the native
//! engine's partitioned probe scan, the compiled-C# fused loops over managed
//! objects and the hybrid engine's parallel staging — follows the same
//! morsel-driven recipe:
//!
//! 1. split the probe-side input `0..total` into at most
//!    [`ParallelConfig::threads`] contiguous ranges (*morsels*), never
//!    smaller than [`ParallelConfig::min_rows_per_thread`] rows,
//! 2. run one worker per morsel on a scoped thread, producing a partial
//!    result (an execution state, a staged buffer shard, …),
//! 3. merge the partials **in partition order**, which preserves the source
//!    enumeration order for order-sensitive outputs.
//!
//! This module owns steps 1 and 2 ([`partition`], [`scatter`], [`run`]);
//! what a worker computes and how partials merge stays with each engine.

use std::ops::Range;

/// Degree-of-parallelism configuration shared by every engine.
///
/// A `threads` value of 1 (the [`ParallelConfig::sequential`] default used
/// by the provider) always takes the engines' sequential paths, so results
/// and timings are bit-identical to the unparallelised seed code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads (1 falls back to the sequential path).
    pub threads: usize,
    /// Minimum number of probe-side rows per worker; partitions smaller than
    /// this are not split further, so tiny inputs do not pay thread overhead.
    pub min_rows_per_thread: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            min_rows_per_thread: 4096,
        }
    }
}

impl ParallelConfig {
    /// A configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            ..ParallelConfig::default()
        }
    }

    /// The single-threaded configuration: every engine takes its sequential
    /// path, matching the seed engines exactly.
    pub fn sequential() -> Self {
        ParallelConfig {
            threads: 1,
            min_rows_per_thread: usize::MAX,
        }
    }

    /// True if this configuration never spawns workers.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// The number of partitions to use for `rows` probe-side rows.
    pub fn partitions_for(&self, rows: usize) -> usize {
        if self.threads <= 1 || rows == 0 {
            return 1;
        }
        let by_size = rows.div_ceil(self.min_rows_per_thread.max(1));
        self.threads.min(by_size).max(1)
    }
}

/// Splits `0..total` into the contiguous morsel ranges this configuration
/// prescribes. Returns at least one (possibly empty) range so callers can
/// treat the sequential case uniformly.
pub fn partition(total: usize, config: ParallelConfig) -> Vec<Range<usize>> {
    let partitions = config.partitions_for(total);
    if partitions <= 1 {
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..total];
    }
    let chunk = total.div_ceil(partitions);
    (0..partitions)
        .map(|p| (p * chunk)..((p + 1) * chunk).min(total))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Runs `worker(partition_index, range)` once per range on scoped threads and
/// returns the partial results **in partition order**. A single range runs on
/// the calling thread (no spawn).
pub fn scatter<T, F>(ranges: &[Range<usize>], worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    if ranges.len() <= 1 {
        return ranges
            .iter()
            .enumerate()
            .map(|(i, r)| worker(i, r.clone()))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(i, range)| {
                let range = range.clone();
                let worker = &worker;
                scope.spawn(move || worker(i, range))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel workers do not panic"))
            .collect()
    })
}

/// Convenience composition of [`partition`] and [`scatter`]: partitions
/// `0..total` per `config` and fans the morsels out to `worker`.
pub fn run<T, F>(total: usize, config: ParallelConfig, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    scatter(&partition(total, config), worker)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_the_input_contiguously() {
        for total in [0usize, 1, 7, 100, 4097, 100_000] {
            for threads in [1usize, 2, 3, 8] {
                let config = ParallelConfig {
                    threads,
                    min_rows_per_thread: 64,
                };
                let ranges = partition(total, config);
                assert!(!ranges.is_empty());
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, total);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous, in order");
                }
                assert!(ranges.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn small_inputs_do_not_split() {
        let config = ParallelConfig {
            threads: 8,
            min_rows_per_thread: 4096,
        };
        assert_eq!(config.partitions_for(100), 1);
        assert_eq!(config.partitions_for(0), 1);
        assert_eq!(config.partitions_for(10_000), 3);
        assert_eq!(ParallelConfig::with_threads(1).partitions_for(1_000_000), 1);
        assert!(ParallelConfig::sequential().is_sequential());
    }

    #[test]
    fn scatter_returns_results_in_partition_order() {
        let config = ParallelConfig {
            threads: 4,
            min_rows_per_thread: 1,
        };
        let sums = run(1000, config, |_, range| range.sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), (0..1000).sum::<usize>());
        let firsts = run(1000, config, |_, range| range.start);
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        assert_eq!(firsts, sorted, "partition order equals range order");
    }

    #[test]
    fn worker_indexes_match_positions() {
        let config = ParallelConfig {
            threads: 3,
            min_rows_per_thread: 1,
        };
        let idx = run(300, config, |i, _| i);
        assert_eq!(idx, (0..idx.len()).collect::<Vec<_>>());
    }
}
