//! The shared morsel scheduler: static range partitioning plus a
//! work-stealing dispatcher over fixed-size morsels.
//!
//! The paper leaves parallel execution to future work (§4, §9) but observes
//! that its database-style plan shape makes standard parallelisation
//! directly applicable. Every parallel path in this workspace — the native
//! engine's partitioned probe scan, the compiled-C# fused loops over managed
//! objects, the hybrid engine's parallel staging and the hash-partitioned
//! join builds — follows the same morsel-driven recipe (Leis et al.,
//! "Morsel-Driven Parallelism", SIGMOD 2014):
//!
//! 1. split the input `0..total` into contiguous *morsels* — either one
//!    static range per worker ([`partition`]) or fixed-size ranges of
//!    [`ParallelConfig::morsel_rows`] rows ([`morsels`]) handed out by a
//!    shared atomic cursor so idle workers steal the remaining work,
//! 2. run the morsels on the **persistent worker pool**
//!    ([`crate::pool::WorkerPool`]) — long-lived threads shared by every
//!    query; the calling thread participates, and nothing is spawned per
//!    query — producing one partial result per morsel (an execution state,
//!    a staged buffer shard, a scatter bucket, …),
//! 3. gather the partials **in morsel order** (each morsel writes the slot
//!    of its index), so merging stays deterministic and order-sensitive
//!    outputs are bit-identical to a sequential run regardless of which
//!    worker ran which morsel.
//!
//! This module owns steps 1 and 3 and the hand-off to the pool for step 2
//! ([`partition`], [`morsels`], [`plan`], [`scatter`], [`steal`],
//! [`dispatch`]) plus the shared two-phase hash-partitioned build recipe
//! ([`build_hash_shards`]); what a worker computes and how partials merge
//! stays with each engine, and thread lifecycle/fairness live in
//! [`crate::pool`].

use std::ops::Range;

/// Degree-of-parallelism configuration shared by every engine.
///
/// A `threads` value of 1 (the [`ParallelConfig::sequential`] default used
/// by the provider) always takes the engines' sequential paths, so results
/// and timings are bit-identical to the unparallelised seed code.
///
/// # Examples
///
/// ```
/// use mrq_common::ParallelConfig;
///
/// // Sequential: what the provider defaults to — never touches the pool.
/// assert!(ParallelConfig::sequential().is_sequential());
///
/// // 8 workers, 16k-row stolen morsels, stealing on (the default).
/// let cfg = ParallelConfig::with_threads(8).with_morsel_rows(16 * 1024);
/// assert_eq!(cfg.threads, 8);
/// assert!(cfg.stealing);
///
/// // Tiny inputs never split: below `min_rows_per_thread`, one partition.
/// assert_eq!(cfg.partitions_for(100), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelConfig {
    /// Number of worker threads (1 falls back to the sequential path).
    pub threads: usize,
    /// Minimum number of probe-side rows per worker; partitions smaller than
    /// this are not split further, so tiny inputs do not pay thread overhead.
    pub min_rows_per_thread: usize,
    /// Rows per morsel under work stealing. Smaller morsels balance skewed
    /// work better but pay more dispatch/merge overhead; the default (32k
    /// rows, the middle of the classic 16–64k band) keeps dispatch cost
    /// negligible while still splitting any input worth parallelising.
    pub morsel_rows: usize,
    /// When true (the default), morsels are handed out by a shared atomic
    /// cursor so workers that finish early steal the remaining ones — skewed
    /// filters no longer leave workers idle. When false, each worker gets
    /// one static contiguous range, reproducing the PR-1 scheduler exactly.
    pub stealing: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            min_rows_per_thread: 4096,
            morsel_rows: 32 * 1024,
            stealing: true,
        }
    }
}

impl ParallelConfig {
    /// A configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            ..ParallelConfig::default()
        }
    }

    /// The single-threaded configuration: every engine takes its sequential
    /// path, matching the seed engines exactly.
    pub fn sequential() -> Self {
        ParallelConfig {
            threads: 1,
            min_rows_per_thread: usize::MAX,
            morsel_rows: 32 * 1024,
            stealing: false,
        }
    }

    /// The same configuration with the given morsel size (rows handed out
    /// per steal; clamped to at least 1).
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    /// The same configuration with work stealing switched on or off.
    pub fn with_stealing(mut self, stealing: bool) -> Self {
        self.stealing = stealing;
        self
    }

    /// The default configuration with scheduler knobs overridden from the
    /// environment: `MRQ_THREADS` (worker count), `MRQ_STEALING`
    /// (`0`/`false`/`off` disables the shared-cursor dispatch) and
    /// `MRQ_MORSEL_ROWS` (rows per stolen morsel). Unset or unparsable
    /// variables leave the default untouched.
    ///
    /// This is how the CI matrix drives the parallel paths: the test jobs
    /// export `MRQ_THREADS` × `MRQ_STEALING` and the suites build their
    /// configs through `from_env`, so every scheduler shape is exercised on
    /// every push rather than only where a test hardcodes it.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrq_common::ParallelConfig;
    ///
    /// // With no MRQ_* variables set this is ParallelConfig::default().
    /// let config = ParallelConfig::from_env();
    /// assert!(config.threads >= 1);
    /// assert!(config.morsel_rows >= 1);
    /// ```
    pub fn from_env() -> Self {
        fn parsed(name: &str) -> Option<usize> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let mut config = ParallelConfig::default();
        if let Some(threads) = parsed("MRQ_THREADS") {
            config.threads = threads.max(1);
        }
        if let Ok(value) = std::env::var("MRQ_STEALING") {
            config.stealing = !matches!(value.trim(), "0" | "false" | "off");
        }
        if let Some(rows) = parsed("MRQ_MORSEL_ROWS") {
            config.morsel_rows = rows.max(1);
        }
        config
    }

    /// True if this configuration never spawns workers.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// The number of workers to use for `rows` input rows.
    pub fn partitions_for(&self, rows: usize) -> usize {
        if self.threads <= 1 || rows == 0 {
            return 1;
        }
        let by_size = rows.div_ceil(self.min_rows_per_thread.max(1));
        self.threads.min(by_size).max(1)
    }
}

/// Splits `0..total` into one contiguous range per worker. The remainder is
/// spread one row per leading partition, so range lengths never differ by
/// more than one (8193 rows / 8 workers → 1025×1 + 1024×7, not 1025×7 +
/// 1018). Returns at least one (possibly empty) range so callers can treat
/// the sequential case uniformly.
pub fn partition(total: usize, config: ParallelConfig) -> Vec<Range<usize>> {
    let partitions = config.partitions_for(total);
    if partitions <= 1 {
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..total];
    }
    let base = total / partitions;
    let remainder = total % partitions;
    let mut ranges = Vec::with_capacity(partitions);
    let mut start = 0usize;
    for p in 0..partitions {
        let len = base + usize::from(p < remainder);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Splits `0..total` into fixed-size morsels of (at most)
/// [`ParallelConfig::morsel_rows`] rows each, for work-stealing dispatch.
/// The morsel size shrinks when needed so every eligible worker gets at
/// least one morsel; inputs too small to parallelise return a single range.
pub fn morsels(total: usize, config: ParallelConfig) -> Vec<Range<usize>> {
    let workers = config.partitions_for(total);
    if workers <= 1 {
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..total];
    }
    let size = config
        .morsel_rows
        .max(1)
        .min(total.div_ceil(workers))
        .max(1);
    (0..total.div_ceil(size))
        .map(|m| (m * size)..((m + 1) * size).min(total))
        .collect()
}

/// Plans the morsel ranges for an input: returns the ranges plus whether
/// they should be dispatched by work stealing ([`steal`]) or statically
/// ([`scatter`]). A single range means "run sequentially" either way.
pub fn plan(total: usize, config: ParallelConfig) -> (Vec<Range<usize>>, bool) {
    if config.stealing {
        (morsels(total, config), true)
    } else {
        (partition(total, config), false)
    }
}

/// Runs `worker(partition_index, range)` once per range on the persistent
/// worker pool ([`crate::pool::WorkerPool::global`]), one worker per range,
/// and returns the partial results **in partition order**. A single range
/// runs on the calling thread (no pool round trip).
pub fn scatter<T, F>(ranges: &[Range<usize>], worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    run_pooled(ranges, ranges.len(), worker)
}

/// Runs `worker(morsel_index, range)` for every range on the persistent
/// worker pool, using at most `threads` workers (pool threads plus the
/// calling thread). The pool's shared cursor hands the next unclaimed
/// morsel to whichever worker asks first, so a worker stuck on a dense
/// (slow) morsel never blocks the others from draining the rest of the
/// input. Every partial lands in the slot of its morsel index, so the
/// returned partials are **in morsel order** — merging them is
/// deterministic no matter how the steal race resolved.
pub fn steal<T, F>(ranges: &[Range<usize>], threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    run_pooled(ranges, threads, worker)
}

/// The shared pool fan-out behind [`scatter`] and [`steal`]: every range is
/// one morsel of a [`crate::pool::WorkerPool::run_morsels`] job (the calling
/// thread participates; no thread is ever spawned per query), and each
/// partial is written to the slot of its morsel index so the gather is
/// deterministic. Sequential shapes (zero or one range, one worker) run on
/// the calling thread without touching the pool.
fn run_pooled<T, F>(ranges: &[Range<usize>], max_workers: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    // Lifecycle control ([`crate::cancel`]): a query submitted with a
    // cancel token/deadline installs a scope on the thread driving it; the
    // fan-out inherits the token (workers then check it between morsels)
    // and the query's QoS class (its tickets queue under that class).
    if ranges.len() <= 1 || max_workers <= 1 {
        return ranges
            .iter()
            .enumerate()
            .map(|(i, r)| {
                crate::cancel::checkpoint();
                worker(i, r.clone())
            })
            .collect();
    }
    let control = crate::cancel::current();
    let (class, token) = match &control {
        Some(control) => (control.class, Some(std::sync::Arc::clone(&control.token))),
        None => (crate::qos::QosClass::default(), None),
    };
    // One slot per morsel: each index is handed out exactly once by the
    // pool's cursor, so every lock below is uncontended (noise next to a
    // multi-thousand-row morsel) and the completion latch inside
    // `run_morsels` orders all writes before the gather. A `Mutex` rather
    // than `OnceLock` keeps the public bound at `T: Send` (partials need
    // not be `Sync`).
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        ranges.iter().map(|_| std::sync::Mutex::new(None)).collect();
    crate::pool::WorkerPool::global().run_morsels_as(
        ranges.len(),
        max_workers,
        class,
        token,
        &|m| {
            let partial = worker(m, ranges[m].clone());
            *slots[m].lock().unwrap_or_else(|e| e.into_inner()) = Some(partial);
        },
    );
    // An abandoned fan-out (cancelled or past deadline) leaves empty slots;
    // unwind with the reason before the gather can observe them. The
    // serving layer catches this at the query boundary.
    crate::cancel::checkpoint();
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every morsel produced exactly one partial")
        })
        .collect()
}

/// [`steal`]/[`scatter`] with **incremental in-order publication**: the
/// same pool fan-out and deterministic slot-table gather, plus a `publish`
/// callback invoked on every partial *in morsel order, as soon as all
/// earlier slots have been published* — not at the end of the fan-out.
/// This is the streaming gather: slot `m` becomes visible the moment slots
/// `0..m` are done, so a consumer sees the sequential row order while later
/// morsels still run.
///
/// `publish` receives `&mut T` so it can drain the publishable part of the
/// partial (e.g. materialized rows) and leave the rest for the final merge;
/// the partials are still returned in morsel order afterwards. The worker
/// that completes the lowest unpublished slot advances the frontier over
/// every contiguously completed slot while holding the frontier lock —
/// meaning a `publish` that blocks (a bounded channel under backpressure)
/// stalls the frontier and, transitively, every worker that finishes its
/// morsel meanwhile: that is the intended backpressure path, and it stays
/// cancellable because channel sends re-check the query's token.
///
/// With zero/one ranges or one worker this publishes inline on the calling
/// thread between morsels, pool untouched — the sequential shape.
pub fn run_ordered<T, F, P>(
    ranges: &[Range<usize>],
    max_workers: usize,
    worker: F,
    publish: P,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
    P: Fn(usize, &mut T) + Sync,
{
    if ranges.len() <= 1 || max_workers <= 1 {
        return ranges
            .iter()
            .enumerate()
            .map(|(i, r)| {
                crate::cancel::checkpoint();
                let mut partial = worker(i, r.clone());
                publish(i, &mut partial);
                partial
            })
            .collect();
    }
    let control = crate::cancel::current();
    let (class, token) = match &control {
        Some(control) => (control.class, Some(std::sync::Arc::clone(&control.token))),
        None => (crate::qos::QosClass::default(), None),
    };
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        ranges.iter().map(|_| std::sync::Mutex::new(None)).collect();
    // The publication frontier: index of the first slot not yet published.
    // Only the holder of this lock publishes, so `publish` calls are
    // serialized and strictly ascending — the in-order guarantee.
    let frontier = std::sync::Mutex::new(0usize);
    crate::pool::WorkerPool::global().run_morsels_as(
        ranges.len(),
        max_workers,
        class,
        token,
        &|m| {
            let partial = worker(m, ranges[m].clone());
            *slots[m].lock().unwrap_or_else(|e| e.into_inner()) = Some(partial);
            // Advance the frontier over every contiguously completed slot.
            // The slot store above happens-before this attempt, so whichever
            // worker completes the lowest missing slot publishes the run.
            let mut next = frontier.lock().unwrap_or_else(|e| e.into_inner());
            while *next < slots.len() {
                let mut slot = slots[*next].lock().unwrap_or_else(|e| e.into_inner());
                match slot.as_mut() {
                    Some(partial) => publish(*next, partial),
                    None => break,
                }
                drop(slot);
                *next += 1;
            }
        },
    );
    crate::cancel::checkpoint();
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every morsel produced exactly one partial")
        })
        .collect()
}

/// Convenience composition of [`plan`] with [`steal`]/[`scatter`]: splits
/// `0..total` per `config`, fans the morsels out (stealing or static), and
/// returns the partials in morsel order.
pub fn dispatch<T, F>(total: usize, config: ParallelConfig, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let (ranges, stealing) = plan(total, config);
    if stealing {
        steal(&ranges, config.threads, worker)
    } else {
        scatter(&ranges, worker)
    }
}

/// The shared two-phase hash-partitioned build used by join tables and
/// pre-built indexes:
///
/// 1. **Scan/scatter** — morsel workers walk `0..total` (stealing or static,
///    per `config`) and call `scatter_rows(range, buckets)` to drop
///    `(key, row)` pairs into the per-shard bucket the caller's hash
///    routing selects. Partials come back in morsel order, so each shard's
///    buckets concatenate with rows still ascending.
/// 2. **Finalise** — shards are built into independent maps (no two workers
///    ever touch the same shard, so there is nothing to lock or merge),
///    using at most the same worker budget as phase 1.
///
/// Returns the per-shard maps in shard order; per-key row lists are in
/// ascending row order, identical to a sequential insert-in-row-order build.
pub fn build_hash_shards<K, F>(
    total: usize,
    config: ParallelConfig,
    shard_count: usize,
    scatter_rows: F,
) -> Vec<crate::hash::FxHashMap<K, Vec<usize>>>
where
    K: std::hash::Hash + Eq + Copy + Send + Sync,
    F: Fn(Range<usize>, &mut [Vec<(K, usize)>]) + Sync,
{
    let partials: Vec<Vec<Vec<(K, usize)>>> = dispatch(total, config, |_, range| {
        let mut buckets: Vec<Vec<(K, usize)>> = vec![Vec::new(); shard_count];
        scatter_rows(range, &mut buckets);
        buckets
    });
    // Finalise within the configured worker budget: contiguous shard ranges,
    // one pool worker each, results (and therefore shards) in order.
    let finalise = ParallelConfig {
        threads: config.partitions_for(total).min(shard_count).max(1),
        min_rows_per_thread: 1,
        stealing: false,
        ..config
    };
    let groups: Vec<Vec<crate::hash::FxHashMap<K, Vec<usize>>>> =
        scatter(&partition(shard_count, finalise), |_, shards| {
            shards
                .map(|shard| {
                    let cap: usize = partials.iter().map(|p| p[shard].len()).sum();
                    let mut map: crate::hash::FxHashMap<K, Vec<usize>> =
                        crate::hash::FxHashMap::with_capacity_and_hasher(cap, Default::default());
                    for bucket in partials.iter().map(|p| &p[shard]) {
                        for (key, row) in bucket {
                            map.entry(*key).or_default().push(*row);
                        }
                    }
                    map
                })
                .collect()
        });
    groups.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn config(threads: usize, min_rows: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            min_rows_per_thread: min_rows,
            ..ParallelConfig::default()
        }
    }

    #[test]
    fn partitions_cover_the_input_contiguously() {
        for total in [0usize, 1, 7, 100, 4097, 8193, 100_000] {
            for threads in [1usize, 2, 3, 8] {
                let ranges = partition(total, config(threads, 64));
                assert!(!ranges.is_empty());
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, total);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous, in order");
                }
                assert!(ranges.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn partition_tails_are_balanced() {
        // 8193 rows / 8 workers: lengths must be 1025, 1024 × 7 — never a
        // short tail that idles the last worker.
        let ranges = partition(8193, config(8, 64));
        let lengths: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(
            lengths,
            vec![1025, 1024, 1024, 1024, 1024, 1024, 1024, 1024]
        );
        for total in [10_000usize, 4097, 99_991] {
            for threads in [2usize, 3, 7, 8] {
                let ranges = partition(total, config(threads, 1));
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                assert!(
                    max - min <= 1,
                    "{total} rows / {threads} workers: {min}..{max}"
                );
            }
        }
    }

    #[test]
    fn small_inputs_do_not_split() {
        let config = config(8, 4096);
        assert_eq!(config.partitions_for(100), 1);
        assert_eq!(config.partitions_for(0), 1);
        assert_eq!(config.partitions_for(10_000), 3);
        assert_eq!(ParallelConfig::with_threads(1).partitions_for(1_000_000), 1);
        assert!(ParallelConfig::sequential().is_sequential());
        assert!(!ParallelConfig::sequential().stealing);
    }

    #[test]
    fn morsels_are_fixed_size_and_cover_the_input() {
        let cfg = config(4, 16).with_morsel_rows(100);
        let ranges = morsels(1_050, cfg);
        assert_eq!(ranges.len(), 11);
        assert!(ranges[..10].iter().all(|r| r.len() == 100));
        assert_eq!(ranges[10].len(), 50);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 1_050);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // Tiny inputs stay sequential; morsel size shrinks so every worker
        // gets at least one morsel when the input is worth splitting.
        assert_eq!(morsels(10, config(4, 4096)).len(), 1);
        assert!(morsels(64, config(4, 16).with_morsel_rows(1_000_000)).len() >= 4);
    }

    #[test]
    fn scatter_returns_results_in_partition_order() {
        let cfg = config(4, 1);
        let sums = dispatch(1000, cfg.with_stealing(false), |_, range| {
            range.sum::<usize>()
        });
        assert_eq!(sums.iter().sum::<usize>(), (0..1000).sum::<usize>());
        let firsts = dispatch(1000, cfg.with_stealing(false), |_, range| range.start);
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        assert_eq!(firsts, sorted, "partition order equals range order");
    }

    #[test]
    fn worker_indexes_match_positions() {
        let idx = dispatch(300, config(3, 1).with_stealing(false), |i, _| i);
        assert_eq!(idx, (0..idx.len()).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_gathers_partials_in_morsel_order() {
        let cfg = config(4, 1).with_morsel_rows(37);
        for total in [0usize, 1, 36, 37, 38, 1_000, 10_007] {
            let partials = dispatch(total, cfg, |i, range| {
                (i, range.start, range.sum::<usize>())
            });
            // Slot-table gather: partial i sits at position i, ranges ascend.
            for (pos, (i, _, _)) in partials.iter().enumerate() {
                assert_eq!(pos, *i);
            }
            let starts: Vec<usize> = partials.iter().map(|(_, s, _)| *s).collect();
            let mut sorted = starts.clone();
            sorted.sort_unstable();
            assert_eq!(starts, sorted);
            let sum: usize = partials.iter().map(|(_, _, s)| s).sum();
            assert_eq!(sum, (0..total).sum::<usize>(), "total = {total}");
        }
    }

    #[test]
    fn run_ordered_publishes_every_slot_in_ascending_order() {
        for workers in [1usize, 2, 4, 8] {
            let ranges: Vec<Range<usize>> = (0..9).map(|i| i * 13..(i + 1) * 13).collect();
            let published = std::sync::Mutex::new(Vec::new());
            let partials = run_ordered(
                &ranges,
                workers,
                |m, range| (m, range.sum::<usize>()),
                |m, partial: &mut (usize, usize)| {
                    // Drain the publishable half; the final gather must still
                    // see the partial (with the drained part zeroed).
                    let sum = std::mem::take(&mut partial.1);
                    published
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((m, sum));
                },
            );
            let published = published.into_inner().unwrap_or_else(|e| e.into_inner());
            let order: Vec<usize> = published.iter().map(|(m, _)| *m).collect();
            assert_eq!(order, (0..9).collect::<Vec<_>>(), "workers = {workers}");
            let total: usize = published.iter().map(|(_, s)| *s).sum();
            assert_eq!(total, (0..9 * 13).sum::<usize>());
            for (pos, (m, drained)) in partials.iter().enumerate() {
                assert_eq!(pos, *m, "slot-table order preserved");
                assert_eq!(*drained, 0, "publish drained each partial once");
            }
        }
    }

    #[test]
    fn stealing_and_static_dispatch_agree() {
        let total = 12_345usize;
        for threads in [1usize, 2, 3, 8] {
            let stealing = config(threads, 16).with_morsel_rows(256);
            let fixed = stealing.with_stealing(false);
            let a: usize = dispatch(total, stealing, |_, r| r.sum::<usize>())
                .into_iter()
                .sum();
            let b: usize = dispatch(total, fixed, |_, r| r.sum::<usize>())
                .into_iter()
                .sum();
            assert_eq!(a, b, "threads = {threads}");
        }
    }

    #[test]
    fn hash_shard_build_matches_a_sequential_insert() {
        // Route keys to 4 shards by low bits; per-key row lists must come
        // back in ascending row order whatever the dispatch mode.
        for stealing in [false, true] {
            let cfg = config(3, 16).with_morsel_rows(100).with_stealing(stealing);
            let shards = build_hash_shards(10_000, cfg, 4, |range, buckets| {
                for row in range {
                    let key = (row % 37) as u64;
                    buckets[(key % 4) as usize].push((key, row));
                }
            });
            assert_eq!(shards.len(), 4);
            let total: usize = shards.iter().flat_map(|s| s.values()).map(Vec::len).sum();
            assert_eq!(total, 10_000);
            for (s, shard) in shards.iter().enumerate() {
                for (key, rows) in shard {
                    assert_eq!((key % 4) as usize, s, "key routed to its shard");
                    assert!(
                        rows.windows(2).all(|w| w[0] < w[1]),
                        "rows ascend (stealing={stealing})"
                    );
                    assert!(rows.iter().all(|r| (r % 37) as u64 == *key));
                }
            }
        }
    }

    #[test]
    fn from_env_overrides_threads_stealing_and_morsel_rows() {
        // Narrow env-mutation window; no other test in this crate touches
        // MRQ_* variables.
        std::env::set_var("MRQ_THREADS", "3");
        std::env::set_var("MRQ_STEALING", "0");
        std::env::set_var("MRQ_MORSEL_ROWS", "1234");
        let config = ParallelConfig::from_env();
        std::env::remove_var("MRQ_THREADS");
        std::env::remove_var("MRQ_STEALING");
        std::env::remove_var("MRQ_MORSEL_ROWS");
        assert_eq!(config.threads, 3);
        assert!(!config.stealing);
        assert_eq!(config.morsel_rows, 1234);
        // Unset variables leave the defaults in place.
        let default = ParallelConfig::from_env();
        assert_eq!(default.stealing, ParallelConfig::default().stealing);
        assert_eq!(default.morsel_rows, ParallelConfig::default().morsel_rows);
    }

    #[test]
    fn dispatch_under_a_tripped_scope_unwinds_with_the_reason() {
        use crate::cancel::{self, CancelReason, CancelToken, JobControl};
        let token = std::sync::Arc::new(CancelToken::new());
        token.cancel();
        let control = JobControl {
            token,
            class: crate::qos::QosClass::Interactive,
        };
        let hits = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cancel::scope(control, || {
                dispatch(10_000, config(4, 1).with_morsel_rows(64), |_, _| {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
            })
        }));
        let payload = result.expect_err("tripped dispatch must unwind");
        assert_eq!(
            *payload.downcast::<CancelReason>().expect("reason payload"),
            CancelReason::Cancelled
        );
        assert_eq!(hits.load(Ordering::Relaxed), 0, "no morsel ran");
    }

    #[test]
    fn skewed_morsels_drain_through_the_shared_cursor() {
        // One deliberately slow morsel must not serialise the rest: with
        // stealing, every morsel is still processed exactly once and the
        // gather stays in morsel order even when later morsels finish first.
        let cfg = config(4, 1).with_morsel_rows(10);
        let hits = AtomicUsize::new(0);
        let partials = steal(&morsels(100, cfg), 4, |i, range| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            hits.fetch_add(1, Ordering::Relaxed);
            range.len()
        });
        assert_eq!(hits.load(Ordering::Relaxed), partials.len());
        assert_eq!(partials.iter().sum::<usize>(), 100);
    }
}
