//! Bounded, in-order row-batch channels for streaming query results.
//!
//! A streamed query publishes rows *while later morsels still run*: the
//! engines push completed rows into a [`StreamSink`], the serving layer
//! hands the matching [`StreamReceiver`] to the client behind a
//! `QueryStream`, and the channel in between enforces three properties:
//!
//! * **Order.** Rows arrive in the exact order the sequential gather would
//!   have produced them (the morsel scheduler publishes slot *m* only after
//!   every slot `< m`, see [`crate::morsel::run_ordered`]), so the
//!   concatenated batches are bit-identical to the buffered `QueryOutput`.
//! * **Backpressure.** The queue holds at most [`CHANNEL_BATCHES`] batches.
//!   A producer that finds it full blocks on a condvar — which stalls the
//!   publication frontier and, transitively, the workers — until the
//!   consumer drains a batch, the receiver is dropped, or the query's
//!   [`CancelToken`] trips. The wait re-checks the token on a short tick so
//!   deadlines and cancellation are honoured even while the consumer lags.
//! * **Determinism.** Rows are re-chunked into fixed `batch_rows`-sized
//!   batches as they pass through (the final batch may be short), so batch
//!   boundaries — and the [`batches_streamed`](StreamSink::counters) /
//!   `rows_streamed` counters — depend only on the total row sequence,
//!   never on how morsels were partitioned or interleaved.
//!
//! The sink side is installed on the query's driving thread with [`scope`]
//! (mirroring [`crate::cancel::scope`]); engines read it once at entry via
//! [`current`] and attach it explicitly to their execution state, so worker
//! closures never consult the thread-local and caller participation in
//! *other* queries' morsels cannot misroute rows.
//!
//! [`WakerSlot`] — the register/take half of an async waker latch — lives
//! here because both this channel's receiver and `mrq-core`'s completion
//! latch (`future.rs`) share the same wake-exactly-once discipline.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::task::{Poll, Waker};
use std::time::Duration;

use crate::cancel::CancelToken;
use crate::value::Value;
use crate::MrqError;

/// One batch of result rows, in output order. Concatenating every batch a
/// stream yields reconstructs `QueryOutput::rows` exactly.
pub type RowBatch = Vec<Vec<Value>>;

/// Maximum number of full batches buffered in the channel before producers
/// block. Small on purpose: the channel is a hand-off buffer, not a spool —
/// a lagging consumer is supposed to stall the workers (that is the
/// backpressure contract), not grow memory.
pub const CHANNEL_BATCHES: usize = 8;

/// How long a blocked producer sleeps between re-checks of the cancel
/// token while the queue is full. Bounds cancellation latency under
/// backpressure without a timer thread.
const FULL_QUEUE_TICK: Duration = Duration::from_millis(5);

/// Defensive re-check tick for a blocking consumer wait; every producer
/// exit notifies the condvar, so this only matters if a producer dies in a
/// way that skips its close path.
const RECV_TICK: Duration = Duration::from_millis(100);

/// Default rows per streamed batch when `QueryOptions` does not override
/// it, tunable with `MRQ_STREAM_BATCH_ROWS`. Matches
/// [`crate::cancel::CHECK_EVERY_ROWS`] so one engine flush at checkpoint
/// cadence fills roughly one batch.
pub const DEFAULT_BATCH_ROWS: usize = crate::cancel::CHECK_EVERY_ROWS;

/// The rows-per-batch default for this process: `MRQ_STREAM_BATCH_ROWS` if
/// set to a positive integer, else [`DEFAULT_BATCH_ROWS`]. Read on every
/// call (it is consulted once per `QueryOptions::default()`, not per row).
pub fn default_batch_rows() -> usize {
    std::env::var("MRQ_STREAM_BATCH_ROWS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&rows| rows > 0)
        .unwrap_or(DEFAULT_BATCH_ROWS)
}

/// A single-waker latch: `register` stores the most recent waker (skipping
/// the clone when [`Waker::will_wake`] says it is the same task), `take`
/// removes it for waking *after* the protecting lock is released. Shared by
/// the stream channel and `mrq-core`'s query-completion latch.
#[derive(Debug, Default)]
pub struct WakerSlot(Option<Waker>);

impl WakerSlot {
    /// An empty slot.
    pub fn new() -> WakerSlot {
        WakerSlot(None)
    }

    /// Stores `waker` as the task to wake, replacing a stale one. A waker
    /// that [`Waker::will_wake`] the stored one is not re-cloned.
    pub fn register(&mut self, waker: &Waker) {
        match &self.0 {
            Some(existing) if existing.will_wake(waker) => {}
            _ => self.0 = Some(waker.clone()),
        }
    }

    /// Removes and returns the registered waker. The caller must invoke
    /// [`Waker::wake`] only after releasing whatever lock guards this slot,
    /// so an executor that polls inline cannot deadlock re-entering it.
    pub fn take(&mut self) -> Option<Waker> {
        self.0.take()
    }

    /// Drops the registered waker without waking it (a future that is being
    /// dropped deregisters itself).
    pub fn clear(&mut self) {
        self.0 = None;
    }
}

/// Everything both endpoints share, guarded by one mutex.
#[derive(Debug)]
struct ChannelState {
    /// Completed fixed-size batches, oldest first.
    queue: VecDeque<RowBatch>,
    /// Rows accumulated toward the next batch (always `< batch_rows` long
    /// between sink calls).
    buffer: RowBatch,
    /// Producer called [`StreamSink::close`]; no more batches will arrive.
    finished: bool,
    /// Terminal error, delivered once after the queue drains.
    error: Option<MrqError>,
    /// The receiver was dropped; producers stop publishing.
    receiver_gone: bool,
    /// Consumer task to wake when a batch or the end of stream arrives.
    waker: WakerSlot,
    /// Full batches pushed into the queue (the final short batch counts).
    batches_streamed: u64,
    /// Rows accepted by the sink, whether or not yet batched.
    rows_streamed: u64,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<ChannelState>,
    /// Producers wait here while the queue is full.
    producer_cv: Condvar,
    /// A blocking consumer waits here while the queue is empty.
    consumer_cv: Condvar,
    /// Re-chunking size; every queued batch except the last holds exactly
    /// this many rows.
    batch_rows: usize,
}

impl Shared {
    /// Locks the state, recovering from poison: the channel's invariants
    /// hold at every await/unlock point, and a poisoned-side panic is
    /// already reported through the query's error path.
    fn lock(&self) -> MutexGuard<'_, ChannelState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The producer endpoint: engines push rows, the channel re-chunks them
/// into `batch_rows`-sized batches and blocks when the consumer lags.
/// Cloneable so the serving layer can keep one for the final residual
/// flush while the engine holds another; all clones feed the same queue.
#[derive(Debug, Clone)]
pub struct StreamSink {
    shared: Arc<Shared>,
    token: Arc<CancelToken>,
}

impl StreamSink {
    /// Appends `rows` (drained) to the stream. Full batches become visible
    /// to the consumer immediately; a partial remainder is buffered until
    /// more rows arrive or [`close`](StreamSink::close) flushes it.
    ///
    /// Returns `false` once publishing is pointless — the receiver was
    /// dropped or the query's token tripped. Callers treat that as "stop
    /// flushing" (the cooperative cancel checkpoint unwinds the query
    /// itself); rows not yet transferred stay drained and are dropped.
    pub fn send_rows(&self, rows: &mut Vec<Vec<Value>>) -> bool {
        let mut guard = self.shared.lock();
        if guard.receiver_gone {
            rows.clear();
            return false;
        }
        for row in rows.drain(..) {
            guard.buffer.push(row);
            guard.rows_streamed += 1;
            if guard.buffer.len() >= self.shared.batch_rows {
                let batch = std::mem::take(&mut guard.buffer);
                guard = match self.enqueue(guard, batch) {
                    Some(reacquired) => reacquired,
                    None => return false,
                };
            }
        }
        true
    }

    /// Marks the stream finished. With `error == None` the buffered partial
    /// batch is flushed first (so the stream's total row sequence is exact);
    /// with an error the partial batch is discarded — the consumer receives
    /// every already-queued batch, then the error. Idempotent; the first
    /// close wins.
    pub fn close(&self, error: Option<MrqError>) {
        let mut guard = self.shared.lock();
        if guard.finished {
            return;
        }
        if error.is_none() && !guard.buffer.is_empty() && !guard.receiver_gone {
            let batch = std::mem::take(&mut guard.buffer);
            guard = match self.enqueue(guard, batch) {
                Some(reacquired) => reacquired,
                // Receiver gone or token tripped mid-flush: finish anyway.
                None => self.shared.lock(),
            };
        }
        guard.buffer.clear();
        guard.finished = true;
        if guard.error.is_none() {
            guard.error = error;
        }
        let waker = guard.waker.take();
        drop(guard);
        self.shared.consumer_cv.notify_all();
        self.shared.producer_cv.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// `(batches_streamed, rows_streamed)` so far — deterministic for a
    /// given query because batches are re-chunked from the total ordered
    /// row sequence, independent of morsel partitioning.
    pub fn counters(&self) -> (u64, u64) {
        let guard = self.shared.lock();
        (guard.batches_streamed, guard.rows_streamed)
    }

    /// True while the consumer still exists and the token has not tripped;
    /// engines may use this to skip flush work early.
    pub fn is_open(&self) -> bool {
        !self.shared.lock().receiver_gone && !self.token.is_tripped()
    }

    /// Waits for queue capacity, pushes `batch`, wakes the consumer, and
    /// re-acquires the lock. `None` means publishing stopped (receiver
    /// dropped or token tripped); the batch is discarded.
    fn enqueue(
        &self,
        mut guard: MutexGuard<'_, ChannelState>,
        batch: RowBatch,
    ) -> Option<MutexGuard<'_, ChannelState>> {
        loop {
            if guard.receiver_gone {
                return None;
            }
            if guard.queue.len() < CHANNEL_BATCHES {
                break;
            }
            if self.token.is_tripped() {
                return None;
            }
            guard = self
                .shared
                .producer_cv
                .wait_timeout(guard, FULL_QUEUE_TICK)
                .map(|(reacquired, _timeout)| reacquired)
                .unwrap_or_else(|poison| poison.into_inner().0);
        }
        guard.queue.push_back(batch);
        guard.batches_streamed += 1;
        let waker = guard.waker.take();
        drop(guard);
        self.shared.consumer_cv.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
        Some(self.shared.lock())
    }
}

/// The consumer endpoint. Dropping it disconnects the channel: queued
/// batches are freed and every subsequent producer call returns `false`
/// immediately, so workers blocked on backpressure unblock at once.
#[derive(Debug)]
pub struct StreamReceiver {
    shared: Arc<Shared>,
}

impl StreamReceiver {
    /// Blocks until the next batch is available. Returns `Some(Ok(batch))`
    /// per batch in order, then — after the producer closed — `Some(Err)`
    /// exactly once if the query failed, else `None` for a clean end.
    pub fn recv_blocking(&mut self) -> Option<crate::Result<RowBatch>> {
        let mut guard = self.shared.lock();
        loop {
            if let Some(batch) = guard.queue.pop_front() {
                drop(guard);
                self.shared.producer_cv.notify_all();
                return Some(Ok(batch));
            }
            if guard.finished {
                return guard.error.take().map(Err);
            }
            guard = self
                .shared
                .consumer_cv
                .wait_timeout(guard, RECV_TICK)
                .map(|(reacquired, _timeout)| reacquired)
                .unwrap_or_else(|poison| poison.into_inner().0);
        }
    }

    /// Non-blocking poll: yields the next batch, the terminal error, or end
    /// of stream; otherwise registers `waker` (replacing a stale one, as in
    /// the query-completion latch) and returns [`Poll::Pending`]. The waker
    /// is woken exactly once per state change, after the lock is released.
    pub fn poll_recv(&mut self, waker: &Waker) -> Poll<Option<crate::Result<RowBatch>>> {
        let mut guard = self.shared.lock();
        if let Some(batch) = guard.queue.pop_front() {
            drop(guard);
            self.shared.producer_cv.notify_all();
            return Poll::Ready(Some(Ok(batch)));
        }
        if guard.finished {
            return Poll::Ready(guard.error.take().map(Err));
        }
        guard.waker.register(waker);
        Poll::Pending
    }

    /// Drops a waker registered by [`poll_recv`](StreamReceiver::poll_recv)
    /// without waking it (called when the owning future/stream is dropped).
    pub fn clear_waker(&mut self) {
        self.shared.lock().waker.clear();
    }
}

impl Drop for StreamReceiver {
    fn drop(&mut self) {
        let mut guard = self.shared.lock();
        guard.receiver_gone = true;
        guard.queue.clear();
        guard.buffer.clear();
        drop(guard);
        // Unblock any producer waiting on backpressure; it observes
        // `receiver_gone` and stops publishing.
        self.shared.producer_cv.notify_all();
    }
}

/// Creates a bounded stream channel re-chunking rows into
/// `batch_rows`-sized batches (clamped to at least 1). `token` is the
/// query's cancel token: producers blocked on a full queue re-check it so
/// cancellation and deadlines cut through backpressure.
pub fn channel(batch_rows: usize, token: Arc<CancelToken>) -> (StreamSink, StreamReceiver) {
    let shared = Arc::new(Shared {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            buffer: Vec::new(),
            finished: false,
            error: None,
            receiver_gone: false,
            waker: WakerSlot::new(),
            batches_streamed: 0,
            rows_streamed: 0,
        }),
        producer_cv: Condvar::new(),
        consumer_cv: Condvar::new(),
        batch_rows: batch_rows.max(1),
    });
    (
        StreamSink {
            shared: Arc::clone(&shared),
            token,
        },
        StreamReceiver { shared },
    )
}

thread_local! {
    static CURRENT: RefCell<Option<StreamSink>> = const { RefCell::new(None) };
}

/// Runs `f` with `sink` installed as the thread's active stream sink; the
/// previous sink (if any) is restored afterwards, including on unwind.
/// The serving layer wraps a streamed query's execution in this exactly
/// like [`crate::cancel::scope`]; engines pick the sink up once at entry
/// with [`current`].
pub fn scope<R>(sink: StreamSink, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<StreamSink>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|current| *current.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CURRENT.with(|current| current.borrow_mut().replace(sink)));
    f()
}

/// The stream sink installed on this thread by the nearest [`scope`], if
/// any. Buffered (non-streamed) execution runs with none and is entirely
/// unaffected.
pub fn current() -> Option<StreamSink> {
    CURRENT.with(|current| current.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Wake;

    fn rows(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
        range.map(|n| vec![Value::Int64(n)]).collect()
    }

    #[test]
    fn rechunks_into_fixed_batches_and_flushes_remainder_on_close() {
        let (sink, mut receiver) = channel(4, Arc::new(CancelToken::new()));
        assert!(sink.send_rows(&mut rows(0..3)));
        assert!(sink.send_rows(&mut rows(3..10)));
        sink.close(None);
        let mut collected = Vec::new();
        let mut sizes = Vec::new();
        while let Some(batch) = receiver.recv_blocking() {
            let batch = batch.expect("clean stream");
            sizes.push(batch.len());
            collected.extend(batch);
        }
        assert_eq!(sizes, vec![4, 4, 2], "fixed chunks, short tail");
        assert_eq!(collected, rows(0..10));
        assert_eq!(sink.counters(), (3, 10));
    }

    #[test]
    fn error_is_delivered_once_after_queued_batches() {
        let (sink, mut receiver) = channel(2, Arc::new(CancelToken::new()));
        assert!(sink.send_rows(&mut rows(0..3)));
        sink.close(Some(MrqError::DeadlineExceeded));
        assert_eq!(receiver.recv_blocking(), Some(Ok(rows(0..2))));
        // The partial third row is discarded on an error close.
        assert_eq!(
            receiver.recv_blocking(),
            Some(Err(MrqError::DeadlineExceeded))
        );
        assert_eq!(receiver.recv_blocking(), None, "error delivered once");
    }

    #[test]
    fn receiver_drop_disconnects_producers() {
        let (sink, receiver) = channel(1, Arc::new(CancelToken::new()));
        // Fill the queue to capacity so a further send would block.
        assert!(sink.send_rows(&mut rows(0..CHANNEL_BATCHES as i64)));
        drop(receiver);
        let mut more = rows(100..200);
        assert!(!sink.send_rows(&mut more), "disconnected sink refuses rows");
        sink.close(None); // must not block or panic
    }

    #[test]
    fn tripped_token_unblocks_a_backpressured_producer() {
        let token = Arc::new(CancelToken::new());
        let (sink, _receiver) = channel(1, Arc::clone(&token));
        assert!(sink.send_rows(&mut rows(0..CHANNEL_BATCHES as i64)));
        token.cancel();
        // Queue is full and nobody is draining: only the token re-check
        // can let this return (false), proving cancel cuts backpressure.
        assert!(!sink.send_rows(&mut rows(0..2)));
    }

    #[test]
    fn poll_recv_registers_waker_and_wakes_on_publish() {
        struct CountingWake(AtomicUsize);
        impl Wake for CountingWake {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let wake = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&wake));
        let (sink, mut receiver) = channel(2, Arc::new(CancelToken::new()));
        assert!(receiver.poll_recv(&waker).is_pending());
        assert!(receiver.poll_recv(&waker).is_pending(), "re-poll is fine");
        assert!(sink.send_rows(&mut rows(0..2)));
        assert_eq!(wake.0.load(Ordering::SeqCst), 1, "woken exactly once");
        assert_eq!(
            receiver.poll_recv(&waker),
            Poll::Ready(Some(Ok(rows(0..2))))
        );
        assert!(receiver.poll_recv(&waker).is_pending());
        sink.close(None);
        assert_eq!(wake.0.load(Ordering::SeqCst), 2);
        assert_eq!(receiver.poll_recv(&waker), Poll::Ready(None));
    }

    #[test]
    fn scope_installs_and_restores_the_sink() {
        assert!(current().is_none());
        let (sink, _receiver) = channel(4, Arc::new(CancelToken::new()));
        scope(sink, || {
            assert!(current().is_some());
            let (inner, _rx) = channel(2, Arc::new(CancelToken::new()));
            scope(inner, || assert!(current().is_some()));
            assert!(current().is_some(), "outer sink restored");
        });
        assert!(current().is_none());
    }

    #[test]
    fn default_batch_rows_matches_checkpoint_cadence() {
        // The env override is exercised by the integration suite; in-proc
        // the default must track the cancel checkpoint cadence.
        assert_eq!(DEFAULT_BATCH_ROWS, crate::cancel::CHECK_EVERY_ROWS);
        assert!(default_batch_rows() > 0);
    }
}
