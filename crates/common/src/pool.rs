//! The persistent worker pool behind every parallel code path.
//!
//! Earlier revisions spawned scoped threads per query: each parallel scan,
//! join build or staging pass paid a `thread::spawn`/`join` round trip, and
//! nothing survived from one query to the next. This module replaces that
//! with a process-wide pool of long-lived workers that all queries share —
//! the prerequisite for serving many concurrent clients from one provider
//! (and, later, for NUMA pinning: workers now exist long enough to pin).
//!
//! # Architecture
//!
//! A [`WorkerPool`] owns a set of OS threads and one ticket queue per
//! [`QosClass`], scheduled by weighted deficit round-robin
//! ([`crate::qos::ClassQueues`]). A ticket is either
//!
//! * a **morsel ticket** — permission to run *one* morsel of a blocking
//!   [`WorkerPool::run_morsels`] call (the unit every engine's scan, build
//!   and staging loop decomposes into), or
//! * a **task ticket** — a detached one-shot job, used by
//!   `Provider::submit` to run a whole query on the pool.
//!
//! ## Fairness
//!
//! Across classes, grants follow the weighted deficit round-robin of
//! [`crate::qos`]: with the default 8:2:1 weights, Interactive tickets
//! receive four grants for every Batch grant (and eight for every
//! Maintenance grant) whenever the classes are backlogged, and a newly
//! arrived Interactive ticket waits for at most the lower classes'
//! remaining credit (three grants) before dispatching. Weights are
//! runtime-tunable via [`WorkerPool::set_weights`]. Within a
//! class, workers always pop the *front* ticket and, after finishing a
//! morsel, requeue its job's ticket at the *back* of its class. Scheduling
//! therefore round-robins between every job of a class at morsel
//! granularity: a long scan holds at most as many workers as it has live
//! tickets, and a short probe that arrives later gets its first worker
//! after at most one morsel's worth of delay per worker — a long scan
//! cannot starve short probes.
//!
//! ## Cancellation
//!
//! A job may carry a [`CancelToken`] (see [`crate::cancel`]). Every morsel
//! claim checks it: once the token trips — explicit cancel or a lapsed
//! deadline — remaining morsels are claimed and retired *without running*,
//! so workers abandon the job within one in-progress morsel and the queue
//! drains at memory speed. The blocking submitter still waits for the
//! completion latch (claimed morsels finish; skipped ones just decrement
//! it), which keeps the lifetime-erasure safety argument unchanged.
//!
//! Cancellation also reaches *inside* a claimed morsel: a controlled job's
//! runner executes under its [`crate::cancel`] scope on the worker, so the
//! intra-morsel checkpoints the fused loops plant every few thousand rows
//! can trip mid-morsel. The resulting unwind carries a
//! [`CancelReason`] payload and is treated as
//! retirement, not as a panic: the morsel's latch count still decrements,
//! so the moment the last in-flight morsel retires the completion latch
//! fires — which is what wakes a blocked `join` *or a registered async
//! waker* promptly after a cancel (wake-on-retire), instead of after the
//! rest of the morsel's rows.
//!
//! ## Panic isolation
//!
//! A panicking morsel must not take down the worker that ran it, the
//! sibling queries sharing the pool, or — since PR 7 — the submitting
//! caller's process either. The catch site records the *first* panic's
//! payload message on the job and flips its failed flag; from that moment
//! the job is treated exactly like a cancelled one (remaining morsels are
//! claimed and retired unrun, the queue drains at memory speed), and the
//! submitting `run_morsels` frame re-raises the unwind with the **original
//! payload string** once the latch fires. The serving layer catches that
//! unwind at the query boundary and surfaces it as a per-query
//! `MrqError::Internal(payload)` through `QueryHandle::join` /
//! `QueryFuture` — one query fails, its neighbours and the pool itself
//! stay serviceable.
//!
//! ## Concurrency capping
//!
//! A `run_morsels` job with a degree-of-parallelism budget of `max_workers`
//! announces `max_workers - 1` tickets (the calling thread is the remaining
//! worker: it claims morsels from the same cursor while it waits). Because a
//! ticket is requeued only after its morsel completes, at most
//! `max_workers - 1` pool workers ever run the job simultaneously — a
//! query's [`ParallelConfig::threads`](crate::ParallelConfig::threads) stays
//! an upper bound even when the pool is larger.
//!
//! ## Deadlock freedom
//!
//! The caller of `run_morsels` participates until the morsel cursor is
//! exhausted, so every job completes even if no pool worker ever picks it
//! up. Queries submitted as task tickets run `run_morsels` *on* a worker;
//! the same self-draining argument applies, so nesting jobs inside tasks
//! cannot deadlock regardless of pool size.
//!
//! ## Streaming backpressure
//!
//! A streamed query's morsel runner ([`crate::morsel::run_ordered`]) may
//! *block inside a morsel* while publishing rows to a full bounded channel
//! ([`crate::stream`]). From the pool's perspective that is just a long
//! morsel: the worker is held, the job's ticket is not requeued until the
//! morsel ends, and sibling jobs keep dispatching on the remaining workers
//! under the usual WDRR fairness — a lagging consumer slows its own query,
//! not the pool. The wait itself re-checks the query's [`CancelToken`] on
//! a short tick, so cancellation and deadlines still cut through.
//!
//! ## Lifecycle
//!
//! [`WorkerPool::global`] lazily initialises the shared process-wide pool;
//! it grows on demand (up to a small multiple of the host's CPU count) and
//! lives for the process. Dedicated pools from [`WorkerPool::new`] shut down
//! gracefully on drop: accepted tickets are drained, then workers exit and
//! are joined — nothing accepted is abandoned.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

use crate::cancel::{self, CancelReason, CancelToken, JobControl};
use crate::qos::{ClassQueues, QosClass, QosWeights};

/// A lifetime-erased borrow of the caller's morsel runner.
///
/// `run_morsels` erases the closure's lifetime so pool workers (which are
/// `'static`) can call it; the submitting call blocks until every claimed
/// morsel has finished and no unclaimed morsel remains, so the borrow never
/// outlives the frame that owns the closure (the hand-rolled equivalent of
/// `std::thread::scope`'s guarantee).
type Runner = &'static (dyn Fn(usize) + Sync);

/// One blocking fan-out: `total` morsels handed out by an atomic cursor.
struct MorselJob {
    runner: Runner,
    /// Number of morsels in the job; cursor values `>= total` mean drained.
    total: usize,
    /// The shared steal cursor: `fetch_add(1)` claims the next morsel.
    cursor: AtomicUsize,
    /// Morsels not yet *completed* (claimed-and-running or unclaimed).
    pending: AtomicUsize,
    /// Set when any morsel panicked; the job aborts (remaining morsels
    /// retire unrun) and the submitting call re-raises the captured
    /// payload.
    failed: AtomicBool,
    /// The first panicking morsel's payload message (first panic wins;
    /// later ones are retired morsels anyway).
    panic_msg: Mutex<Option<String>>,
    /// The class this job's tickets are queued (and requeued) under.
    class: QosClass,
    /// Cooperative cancellation: once tripped, claimed morsels are retired
    /// without running their runner.
    token: Option<Arc<CancelToken>>,
    /// Completion latch the submitting thread waits on.
    done: Mutex<bool>,
    /// Notified when `pending` reaches zero.
    done_cv: Condvar,
}

impl MorselJob {
    /// Claims and runs morsels from the shared cursor until it is drained.
    /// Returns after running at least zero morsels; panics are recorded on
    /// the job rather than unwinding through the pool. Once the job's
    /// cancel token trips this degenerates into claim-and-retire, so a
    /// cancelled job drains at memory speed.
    fn drain(&self) {
        loop {
            let m = self.cursor.fetch_add(1, Ordering::Relaxed);
            if m >= self.total {
                return;
            }
            self.run_one(m);
        }
    }

    /// True once the job's token tripped (cancelled or past deadline).
    fn is_cancelled(&self) -> bool {
        self.token.as_ref().is_some_and(|t| t.is_tripped())
    }

    /// True once the job stopped doing useful work — cancelled *or*
    /// failed by a panicking morsel. Both retire remaining morsels unrun:
    /// after a panic the job's result is already decided, so running more
    /// morsels only burns pool capacity the sibling queries need.
    fn is_aborted(&self) -> bool {
        self.failed.load(Ordering::Acquire) || self.is_cancelled()
    }

    /// Runs a single claimed morsel and does the completion bookkeeping.
    /// A claimed morsel of a cancelled job is *retired* instead of run: the
    /// completion latch must still fire (the submitting frame waits on it),
    /// but no more work executes.
    fn run_one(&self, m: usize) {
        // `m < total`, so the submitting `run_morsels` frame is still
        // blocked in its wait loop (pending > 0 until we decrement below)
        // and the runner borrow is live.
        if !self.is_aborted() {
            let runner = self.runner;
            // A controlled job's runner executes under its cancel scope, so
            // the intra-morsel checkpoints inside the fused loops fire on
            // pool workers too, not only on the submitting thread (which
            // installed the scope itself).
            let result = match &self.token {
                Some(token) => {
                    let control = JobControl {
                        token: Arc::clone(token),
                        class: self.class,
                    };
                    catch_unwind(AssertUnwindSafe(|| cancel::scope(control, || runner(m))))
                }
                None => catch_unwind(AssertUnwindSafe(|| runner(m))),
            };
            if let Err(payload) = result {
                // A checkpoint unwind is cancellation, not a crash: the
                // token tripped mid-morsel and the morsel retires early.
                // The latch decrement below still runs, so the submitter
                // (and, through it, any registered waker) is released as
                // soon as the last in-flight morsel retires.
                if !payload.is::<CancelReason>() {
                    let message = crate::error::panic_message(payload);
                    let mut slot = self.panic_msg.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(message);
                    }
                    drop(slot);
                    self.failed.store(true, Ordering::Release);
                }
            }
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
            self.done_cv.notify_all();
        }
    }

    /// True while unclaimed morsels remain (used to decide requeueing).
    fn has_unclaimed(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) < self.total
    }
}

/// A unit of pool work in the shared FIFO.
enum Ticket {
    /// Run one morsel of the job, then requeue if morsels remain.
    Morsel(Arc<MorselJob>),
    /// Run a detached one-shot job (a submitted query).
    Task(Box<dyn FnOnce() + Send + 'static>),
}

/// Queue state behind the pool mutex.
struct Queue {
    /// Per-class ticket FIFOs under weighted deficit round-robin.
    tickets: ClassQueues<Ticket>,
    /// Workers spawned so far (monotonic until shutdown).
    workers: usize,
    /// Set by `Drop`; workers drain the queue, then exit.
    shutdown: bool,
}

/// State shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<Queue>,
    work: Condvar,
    /// Detached task tickets accepted and not yet finished (drives growth).
    detached: AtomicUsize,
    /// Hard ceiling on worker count.
    max_workers: usize,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The long-lived worker body: pop front ticket, run it, repeat.
    /// Tickets left in the queue at shutdown are drained before exiting, so
    /// a dropped pool never abandons accepted work.
    fn worker_loop(&self) {
        loop {
            let ticket = {
                let mut q = self.lock();
                loop {
                    if let Some(t) = q.tickets.pop_front() {
                        break t;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.work.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            match ticket {
                Ticket::Task(task) => {
                    // A panicking task must not take the worker down; the
                    // submitter observes the failure through its own
                    // completion channel (see `Provider::submit`).
                    let _ = catch_unwind(AssertUnwindSafe(task));
                    self.detached.fetch_sub(1, Ordering::Relaxed);
                }
                Ticket::Morsel(job) => {
                    let m = job.cursor.fetch_add(1, Ordering::Relaxed);
                    if m >= job.total {
                        // Job drained while the ticket was queued: retire it.
                        continue;
                    }
                    job.run_one(m);
                    if job.has_unclaimed() {
                        if job.is_aborted() {
                            // Abandon the job (cancelled or failed):
                            // claim-and-retire everything left instead of
                            // requeueing, so the submitter's latch fires now
                            // rather than one queue round trip per dead
                            // morsel later.
                            job.drain();
                            continue;
                        }
                        // Requeue *after* running (this is what caps a job's
                        // concurrency at its ticket count) and at the *back*
                        // of its class (this is what makes scheduling
                        // round-robin fair within the class).
                        let mut q = self.lock();
                        q.tickets.push_back(job.class, Ticket::Morsel(job));
                        drop(q);
                        self.work.notify_one();
                    }
                }
            }
        }
    }
}

/// A persistent pool of worker threads shared by every parallel code path.
///
/// See the [module docs](self) for the scheduling model. Most code never
/// constructs one: the morsel scheduler and the provider use
/// [`WorkerPool::global`]. Dedicated pools are for tests and embedders that
/// need deterministic shutdown.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Creates a pool with `workers` threads spawned eagerly and the
    /// default 8:2:1 Interactive:Batch:Maintenance grant weights.
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool::with_weights(workers, QosWeights::default())
    }

    /// Creates a pool with `workers` threads spawned eagerly and explicit
    /// per-class grant weights (see [`crate::qos::QosWeights`]). For
    /// embedders and tests; the global pool always uses the defaults.
    pub fn with_weights(workers: usize, weights: QosWeights) -> WorkerPool {
        let pool = WorkerPool::with_max(default_max_workers(), weights);
        pool.ensure_workers(workers);
        pool
    }

    /// Creates an empty pool with the given worker ceiling.
    fn with_max(max_workers: usize, weights: QosWeights) -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(Queue {
                    tickets: ClassQueues::new(weights),
                    workers: 0,
                    shutdown: false,
                }),
                work: Condvar::new(),
                detached: AtomicUsize::new(0),
                max_workers: max_workers.max(1),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The lazily-initialised process-wide pool every query shares. It grows
    /// on demand as parallel jobs and submitted queries arrive and lives for
    /// the process (its idle workers sleep on a condvar and cost nothing).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::with_max(default_max_workers(), QosWeights::default()))
    }

    /// Grows the pool to at least `n` workers (clamped to the pool ceiling).
    /// Never shrinks; idle workers persist across queries by design.
    pub fn ensure_workers(&self, n: usize) {
        let n = n.min(self.shared.max_workers);
        // Reserve the new worker slots under the lock, but spawn outside it:
        // thread creation is slow enough that holding the queue mutex across
        // it would stall every worker pop and ticket push in the process.
        let (first, count) = {
            let mut q = self.shared.lock();
            if q.shutdown || q.workers >= n {
                return;
            }
            let first = q.workers;
            q.workers = n;
            (first, n - first)
        };
        let mut spawned = Vec::with_capacity(count);
        for i in 0..count {
            let shared = Arc::clone(&self.shared);
            let name = format!("mrq-worker-{}", first + i + 1);
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || shared.worker_loop())
                .expect("spawning a pool worker");
            spawned.push(handle);
        }
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend(spawned);
    }

    /// Number of workers currently alive.
    pub fn worker_count(&self) -> usize {
        self.shared.lock().workers
    }

    /// Replaces the per-class grant weights on the live ticket queue
    /// ([`ClassQueues::set_weights`]): takes effect at the next grant, with
    /// every class's credit reset to its new weight so the new ratio
    /// applies immediately. Queued tickets are untouched. This is the
    /// runtime-reweighting knob — throttle Batch/Maintenance during a
    /// traffic spike (or open them up overnight) without draining the pool.
    pub fn set_weights(&self, weights: QosWeights) {
        self.shared.lock().tickets.set_weights(weights);
    }

    /// The current per-class grant weights.
    pub fn weights(&self) -> QosWeights {
        self.shared.lock().tickets.weights()
    }

    /// Number of tickets waiting in the queue (diagnostics/tests).
    pub fn queued(&self) -> usize {
        self.shared.lock().tickets.len()
    }

    /// Runs `run(m)` once for every `m in 0..total` using at most
    /// `max_workers` threads (pool workers plus the calling thread), and
    /// blocks until all of them finished. Morsels are claimed from a shared
    /// atomic cursor, so idle threads steal whatever remains. Tickets are
    /// queued under [`QosClass::Interactive`] with no cancellation; see
    /// [`WorkerPool::run_morsels_as`] for the controlled variant.
    ///
    /// The calling thread always participates, which makes the call complete
    /// even on an empty or saturated pool. Panics inside `run` are caught on
    /// the worker, the remaining morsels retire unrun, and the unwind is
    /// re-raised here with the original panic payload message once the
    /// fan-out's latch fires.
    pub fn run_morsels(&self, total: usize, max_workers: usize, run: &(dyn Fn(usize) + Sync)) {
        self.run_morsels_as(total, max_workers, QosClass::Interactive, None, run);
    }

    /// [`WorkerPool::run_morsels`] with explicit lifecycle control: tickets
    /// queue under `class` (weighted against the other classes, see the
    /// [module docs](self)), and when `token` is given every morsel claim
    /// checks it — once the token trips, remaining morsels are retired
    /// unrun and the call returns as soon as in-progress morsels finish.
    /// The caller is responsible for noticing the trip afterwards (the
    /// morsel layer does, unwinding with the [`crate::cancel::CancelReason`]).
    pub fn run_morsels_as(
        &self,
        total: usize,
        max_workers: usize,
        class: QosClass,
        token: Option<Arc<CancelToken>>,
        run: &(dyn Fn(usize) + Sync),
    ) {
        if total == 0 {
            return;
        }
        let tripped = || token.as_ref().is_some_and(|t| t.is_tripped());
        if max_workers <= 1 || total == 1 {
            // Caller-only fast path: no tickets, no latch — but the same
            // between-morsels cancellation granularity as the pooled path.
            for m in 0..total {
                if tripped() {
                    return;
                }
                run(m);
            }
            return;
        }
        // SAFETY (lifetime erasure): this frame does not return until the
        // job's completion latch fires, i.e. until every morsel that could
        // call `run` has finished; see `Runner`. (Cancellation only *skips*
        // runner calls; it never lets the latch fire early.)
        let runner: Runner = unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), Runner>(run) };
        let job = Arc::new(MorselJob {
            runner,
            total,
            cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(total),
            failed: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            class,
            token,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let tickets = (max_workers - 1).min(total);
        self.ensure_workers(tickets);
        {
            let mut q = self.shared.lock();
            for _ in 0..tickets {
                q.tickets.push_back(class, Ticket::Morsel(Arc::clone(&job)));
            }
        }
        self.shared.work.notify_all();
        // Participate: claim morsels alongside the pool workers.
        job.drain();
        // Wait for stragglers (morsels claimed by workers, still running).
        let mut done = job.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        drop(done);
        if job.failed.load(Ordering::Acquire) {
            let message = job
                .panic_msg
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .unwrap_or_else(|| "a pool worker panicked while running a morsel".to_string());
            // Re-raise with the *original* payload message so callers (and
            // the serving layer's query-boundary catch) see what actually
            // went wrong, not a generic pool message. `resume_unwind` skips
            // the panic hook — the original panic already printed through
            // it at the catch site's thread.
            std::panic::resume_unwind(Box::new(message));
        }
    }

    /// Queues a detached one-shot task (a submitted query) under
    /// [`QosClass::Interactive`]. See [`WorkerPool::spawn_as`].
    pub fn spawn(&self, task: Box<dyn FnOnce() + Send + 'static>) {
        self.spawn_as(QosClass::Interactive, task);
    }

    /// Queues a detached one-shot task (a submitted query) under the given
    /// class. The pool grows towards one worker per task in flight (up to
    /// its ceiling), so concurrent clients get concurrent workers; beyond
    /// the ceiling, tasks queue and run as workers free up — Batch-class
    /// tasks behind Interactive ones per the class weights. Panics inside
    /// the task are caught and dropped — submitters report failures through
    /// their own channel.
    pub fn spawn_as(&self, class: QosClass, task: Box<dyn FnOnce() + Send + 'static>) {
        let in_flight = self.shared.detached.fetch_add(1, Ordering::Relaxed) + 1;
        self.ensure_workers(in_flight);
        {
            let mut q = self.shared.lock();
            q.tickets.push_back(class, Ticket::Task(task));
        }
        self.shared.work.notify_one();
    }
}

impl Drop for WorkerPool {
    /// Graceful shutdown: workers drain every accepted ticket, then exit,
    /// and are joined before `drop` returns — no accepted work is abandoned
    /// and no thread outlives the pool.
    fn drop(&mut self) {
        {
            let mut q = self.shared.lock();
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Ceiling for pool growth: enough headroom for concurrent clients to
/// over-subscribe a little, without letting a submission storm spawn
/// unbounded threads.
fn default_max_workers() -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cpus * 4).max(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_morsels_runs_every_index_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run_morsels(100, 4, &|m| {
            hits[m].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn completes_on_an_empty_pool_via_caller_participation() {
        let pool = WorkerPool::with_max(4, QosWeights::default()); // zero workers spawned
        let sum = AtomicUsize::new(0);
        pool.run_morsels(50, 8, &|m| {
            sum.fetch_add(m, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..50).sum::<usize>());
        assert_eq!(pool.worker_count(), 4, "grows to its ceiling on demand");
    }

    #[test]
    fn morsel_panics_propagate_to_the_submitter_with_their_payload() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_morsels(10, 3, &|m| {
                if m == 4 {
                    panic!("boom");
                }
            });
        }));
        // The submitter sees the *original* payload, not a generic pool
        // message.
        let payload = result.unwrap_err();
        assert_eq!(crate::error::panic_message(payload), "boom");
        // The pool survives: subsequent jobs still run.
        let hits = AtomicUsize::new(0);
        pool.run_morsels(8, 3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn a_failed_job_retires_its_remaining_morsels_unrun() {
        // Drive a MorselJob directly on one thread so the schedule is
        // exact: morsel 0 runs, morsel 1 panics (caught), morsels 2 and 3
        // must retire unrun, and the completion latch must still fire.
        let hits = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&hits);
        let runner: Runner = Box::leak(Box::new(move |m: usize| {
            if m == 1 {
                panic!("shard 1 exploded");
            }
            counter.fetch_add(1, Ordering::Relaxed);
        }));
        let job = MorselJob {
            runner,
            total: 4,
            cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(4),
            failed: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            class: QosClass::Interactive,
            token: None,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        };
        job.drain();
        assert!(job.failed.load(Ordering::Acquire));
        assert_eq!(hits.load(Ordering::Relaxed), 1, "morsels 2 and 3 retired");
        assert_eq!(
            job.panic_msg.lock().unwrap().as_deref(),
            Some("shard 1 exploded")
        );
        assert!(
            *job.done.lock().unwrap(),
            "the latch fired despite the failure"
        );
    }

    #[test]
    fn detached_tasks_run_and_growth_follows_in_flight_count() {
        let pool = WorkerPool::with_max(8, QosWeights::default());
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let done = Arc::clone(&done);
            pool.spawn(Box::new(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        // Spin briefly; tasks are tiny.
        for _ in 0..1000 {
            if done.load(Ordering::Relaxed) == 5 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::Relaxed), 5);
        assert!(pool.worker_count() >= 1);
    }

    #[test]
    fn drop_drains_accepted_tickets_before_joining() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(1);
        for _ in 0..20 {
            let done = Arc::clone(&done);
            pool.spawn(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool); // must block until all 20 accepted tasks ran
        assert_eq!(done.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn pre_cancelled_jobs_never_run_a_morsel_and_the_pool_stays_usable() {
        let pool = WorkerPool::new(2);
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let hits = AtomicUsize::new(0);
        pool.run_morsels_as(100, 4, QosClass::Batch, Some(Arc::clone(&token)), &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            hits.load(Ordering::Relaxed),
            0,
            "every morsel retired unrun"
        );
        // The pool drains and serves the next (uncancelled) job in full.
        let ran = AtomicUsize::new(0);
        pool.run_morsels(32, 4, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn caller_only_path_checks_the_token_between_morsels() {
        // max_workers = 1 takes the caller-only loop: cancelling inside
        // morsel 0 must stop the fan-out after exactly one morsel —
        // deterministic, no other thread involved.
        let pool = WorkerPool::new(0);
        let token = Arc::new(CancelToken::new());
        let hits = AtomicUsize::new(0);
        let cancel = Arc::clone(&token);
        pool.run_morsels_as(50, 1, QosClass::Interactive, Some(token), &|m| {
            hits.fetch_add(1, Ordering::Relaxed);
            if m == 0 {
                cancel.cancel();
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mid_flight_cancellation_completes_the_latch() {
        // Cancel from inside the first executed morsel of a pooled fan-out:
        // the call must still return (latch fires via retirement) and later
        // jobs must run. How many morsels ran before the flag became
        // visible is timing-dependent; that it *returns* is the invariant.
        let pool = WorkerPool::new(3);
        let token = Arc::new(CancelToken::new());
        let cancel = Arc::clone(&token);
        let hits = AtomicUsize::new(0);
        pool.run_morsels_as(256, 4, QosClass::Interactive, Some(token), &|_| {
            cancel.cancel();
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.load(Ordering::Relaxed) <= 256);
        let ran = AtomicUsize::new(0);
        pool.run_morsels(16, 4, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn interactive_tickets_dispatch_within_five_grants_behind_batch() {
        // The WDRR acceptance bound, on the pool's own ticket type and with
        // its default 8:2:1 weights: an Interactive ticket queued behind
        // saturating Batch and Maintenance work is granted within 5 ticket
        // grants (one grant plus the lower classes' remaining credit, 2+1),
        // at every phase of the lower-class credit cycle. Pure queue
        // arithmetic — deterministic, no threads, no sleeps.
        let noop_ticket = || Ticket::Task(Box::new(|| {}));
        for phase in 0..8 {
            let mut queues: ClassQueues<Ticket> = ClassQueues::new(QosWeights::default());
            for _ in 0..64 {
                queues.push_back(QosClass::Batch, noop_ticket());
                queues.push_back(QosClass::Maintenance, noop_ticket());
            }
            for _ in 0..phase {
                assert!(queues.pop_front().is_some());
            }
            let marker = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&marker);
            queues.push_back(
                QosClass::Interactive,
                Ticket::Task(Box::new(move || flag.store(true, Ordering::Relaxed))),
            );
            let mut granted_at = None;
            for grant in 1..=5 {
                if let Some(Ticket::Task(task)) = queues.pop_front() {
                    task();
                }
                if marker.load(Ordering::Relaxed) {
                    granted_at = Some(grant);
                    break;
                }
            }
            assert!(
                granted_at.is_some_and(|g| g <= 5),
                "phase {phase}: interactive ticket not granted within 5 grants"
            );
        }
    }

    #[test]
    fn reweighting_the_ticket_queue_is_deterministic_and_immediate() {
        // Runtime QoS reweighting on the pool's own ticket type, as pure
        // queue arithmetic — no threads, no sleeps. Tag each ticket with
        // its class through a side channel so the grant order is visible.
        use std::sync::Mutex as StdMutex;
        let order: Arc<StdMutex<Vec<QosClass>>> = Arc::new(StdMutex::new(Vec::new()));
        let ticket = |class: QosClass| {
            let order = Arc::clone(&order);
            Ticket::Task(Box::new(move || order.lock().unwrap().push(class)))
        };
        let mut queues: ClassQueues<Ticket> = ClassQueues::new(QosWeights::default());
        for _ in 0..32 {
            queues.push_back(QosClass::Interactive, ticket(QosClass::Interactive));
            queues.push_back(QosClass::Batch, ticket(QosClass::Batch));
            queues.push_back(QosClass::Maintenance, ticket(QosClass::Maintenance));
        }
        let grant = |queues: &mut ClassQueues<Ticket>| {
            if let Some(Ticket::Task(task)) = queues.pop_front() {
                task();
            }
        };
        // One default round: 8 I, 2 B, 1 M.
        for _ in 0..11 {
            grant(&mut queues);
        }
        {
            let seen = order.lock().unwrap();
            assert_eq!(
                seen.iter().filter(|c| **c == QosClass::Interactive).count(),
                8
            );
            assert_eq!(seen.iter().filter(|c| **c == QosClass::Batch).count(), 2);
            assert_eq!(
                seen.iter().filter(|c| **c == QosClass::Maintenance).count(),
                1
            );
        }
        // Reweight to 1:1:1: the very next 6 grants alternate I, B, M twice.
        queues.set_weights(QosWeights::new(1, 1, 1));
        order.lock().unwrap().clear();
        for _ in 0..6 {
            grant(&mut queues);
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec![
                QosClass::Interactive,
                QosClass::Batch,
                QosClass::Maintenance,
                QosClass::Interactive,
                QosClass::Batch,
                QosClass::Maintenance,
            ]
        );
    }

    #[test]
    fn pool_reweighting_and_maintenance_class_round_trip() {
        // API smoke for the live-pool knob: reweight, observe, run work in
        // every class including Maintenance, restore.
        let pool = WorkerPool::new(1);
        assert_eq!(pool.weights(), QosWeights::default());
        pool.set_weights(QosWeights::new(4, 2, 1));
        assert_eq!(pool.weights(), QosWeights::new(4, 2, 1));
        let ran = Arc::new(AtomicUsize::new(0));
        for class in QosClass::ALL {
            let ran = Arc::clone(&ran);
            pool.spawn_as(
                class,
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        let hits = AtomicUsize::new(0);
        pool.run_morsels_as(16, 2, QosClass::Maintenance, None, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        drop(pool); // drains the three spawned tasks before joining
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn intra_morsel_checkpoint_unwinds_retire_the_morsel_without_a_panic() {
        // A runner that trips its own token and immediately checkpoints
        // unwinds with a CancelReason *inside* the morsel. The pool must
        // treat that as retirement: the fan-out returns (latch fires), no
        // "worker panicked" is re-raised, and the job ran at most a handful
        // of morsels before the trip became visible.
        let pool = WorkerPool::new(2);
        let token = Arc::new(CancelToken::new());
        let cancel_handle = Arc::clone(&token);
        let hits = AtomicUsize::new(0);
        pool.run_morsels_as(64, 3, QosClass::Interactive, Some(token), &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
            cancel_handle.cancel();
            // On pool workers the job's scope is installed by run_one; the
            // submitting thread has no scope here, mirroring how the fused
            // loops' checkpoints behave inside a morsel.
            cancel::checkpoint();
            unreachable!("the checkpoint above must unwind: the token is tripped");
        });
        let ran = hits.load(Ordering::Relaxed);
        assert!(ran >= 1, "at least the first morsel started");
        // The pool survives and serves the next job in full.
        let again = AtomicUsize::new(0);
        pool.run_morsels(8, 3, &|_| {
            again.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(again.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn concurrent_jobs_share_the_pool_fairly() {
        // Two jobs fan out at once from two submitter threads; both must
        // complete with every morsel run exactly once.
        let pool = Arc::new(WorkerPool::new(4));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
                    pool.run_morsels(64, 4, &|m| {
                        hits[m].fetch_add(1, Ordering::Relaxed);
                    });
                    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
                });
            }
        });
    }
}
