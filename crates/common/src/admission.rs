//! Admission control and QoS-aware load shedding for the serving layer.
//!
//! The worker pool and WDRR queues decide *in what order* accepted work
//! runs; this module decides *whether work is accepted at all*. An
//! [`AdmissionGate`] is a counting gate over in-flight submissions: every
//! submission path asks [`AdmissionGate::try_admit`] before doing anything
//! expensive (compilation, plan-cache lookups, pool tickets), and either
//! takes a slot or is shed with [`MrqError::Overloaded`] — a cheap,
//! deterministic rejection the caller can retry after backoff.
//!
//! # Shed order
//!
//! Shedding is QoS-aware. The gate has one *total* budget
//! (`max_in_flight + max_queue_depth`), but each [`QosClass`] sees a
//! different limit carved out of it:
//!
//! ```text
//! limit(class) = total − per_class_reserve × class.shed_tier()
//!
//! Interactive  → total                       (tier 0: full budget)
//! Batch        → total − reserve             (tier 1)
//! Maintenance  → total − 2 × reserve         (tier 2)
//! ```
//!
//! As load rises, Maintenance submissions hit their (smallest) limit
//! first, then Batch, and Interactive keeps a reserved share all the way
//! to the total budget — Maintenance sheds first, Batch second,
//! Interactive last, deterministically and without any scanning of queue
//! contents. A single atomic counter plus per-class thresholds is all the
//! mechanism needed.
//!
//! # Defaults and tuning
//!
//! The default config is [`AdmissionConfig::unbounded`] — admission is a
//! no-op until an operator opts in, so embedded/library use is untouched.
//! [`AdmissionConfig::from_env`] reads `MRQ_MAX_IN_FLIGHT` and
//! `MRQ_MAX_QUEUE_DEPTH` so deployments can bound a provider without code
//! changes; when limits are set and no reserve is given, the reserve
//! defaults to 1/8 of the total budget (minimum 1).
//!
//! Accounting is exposed as [`AdmissionStats`] (admitted, shed, peak and
//! current in-flight), maintained with relaxed atomics on the admit path.

use crate::error::MrqError;
use crate::qos::QosClass;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Limits for an [`AdmissionGate`].
///
/// `max_in_flight` bounds submissions actively consuming pool capacity and
/// `max_queue_depth` bounds the extra headroom allowed to queue behind
/// them; the gate enforces their sum as one budget (a submission's journey
/// from ticket queue to worker is not observable from outside the pool,
/// and a single counter keeps admission O(1) and race-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum submissions running concurrently. `usize::MAX` disables
    /// the gate entirely (the default).
    pub max_in_flight: usize,
    /// Additional submissions allowed to queue beyond `max_in_flight`.
    pub max_queue_depth: usize,
    /// Slots carved out of the total budget per shed tier: Batch stops
    /// being admitted `per_class_reserve` slots before the budget is
    /// exhausted, Maintenance twice that, so Interactive always keeps a
    /// reserved share under overload.
    pub per_class_reserve: usize,
}

impl AdmissionConfig {
    /// No limits: every submission is admitted and the gate only keeps
    /// statistics. This is the default so library embeddings see no
    /// behaviour change.
    pub fn unbounded() -> Self {
        AdmissionConfig {
            max_in_flight: usize::MAX,
            max_queue_depth: 0,
            per_class_reserve: 0,
        }
    }

    /// Bound the gate to `max_in_flight` running plus `max_queue_depth`
    /// queued submissions, with the reserve defaulted to 1/8 of the total
    /// budget (minimum 1) so the QoS shed order is active out of the box.
    pub fn bounded(max_in_flight: usize, max_queue_depth: usize) -> Self {
        let total = max_in_flight.saturating_add(max_queue_depth);
        AdmissionConfig {
            max_in_flight,
            max_queue_depth,
            per_class_reserve: (total / 8).max(1),
        }
    }

    /// Replace the per-class reserve (use 0 to shed all classes at the
    /// same threshold).
    pub fn with_reserve(mut self, per_class_reserve: usize) -> Self {
        self.per_class_reserve = per_class_reserve;
        self
    }

    /// Build a config from the `MRQ_MAX_IN_FLIGHT` and
    /// `MRQ_MAX_QUEUE_DEPTH` environment variables. Unset, empty, or
    /// unparsable variables leave the corresponding limit unbounded; if
    /// neither is set the result is [`AdmissionConfig::unbounded`].
    pub fn from_env() -> Self {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|raw| raw.trim().parse::<usize>().ok())
        };
        match (parse("MRQ_MAX_IN_FLIGHT"), parse("MRQ_MAX_QUEUE_DEPTH")) {
            (None, None) => AdmissionConfig::unbounded(),
            (in_flight, queue) => {
                AdmissionConfig::bounded(in_flight.unwrap_or(usize::MAX), queue.unwrap_or(0))
            }
        }
    }

    /// The total submission budget (`max_in_flight + max_queue_depth`,
    /// saturating).
    pub fn total_slots(&self) -> usize {
        self.max_in_flight.saturating_add(self.max_queue_depth)
    }

    /// The in-flight limit that applies to `class`: the total budget minus
    /// one reserve per shed tier (saturating at zero, so a reserve larger
    /// than the budget simply sheds the lower classes immediately).
    pub fn class_limit(&self, class: QosClass) -> usize {
        self.total_slots()
            .saturating_sub(self.per_class_reserve.saturating_mul(class.shed_tier()))
    }

    /// Whether this config admits everything (no class has a finite
    /// limit).
    pub fn is_unbounded(&self) -> bool {
        self.max_in_flight == usize::MAX
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::unbounded()
    }
}

/// A point-in-time snapshot of an [`AdmissionGate`]'s accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Submissions that took a slot.
    pub admitted: u64,
    /// Submissions rejected with [`MrqError::Overloaded`].
    pub shed: u64,
    /// Highest concurrent in-flight count ever observed.
    pub peak_in_flight: usize,
    /// Submissions currently holding a slot.
    pub in_flight: usize,
}

/// The counting gate itself: a config plus atomic accounting. One gate
/// guards one provider's submission paths; admit/release are O(1)
/// lock-free operations.
#[derive(Debug)]
pub struct AdmissionGate {
    config: AdmissionConfig,
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
    peak: AtomicUsize,
}

impl AdmissionGate {
    /// Create a gate enforcing `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionGate {
            config,
            in_flight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Replace the limits on a live gate. In-flight accounting carries
    /// over: slots admitted under the old config still count against the
    /// new limits until they release, and the statistics counters are not
    /// reset.
    pub fn set_config(&mut self, config: AdmissionConfig) {
        self.config = config;
    }

    /// The limits currently enforced.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Try to take a slot for a submission of class `class`.
    ///
    /// On success the caller owns one slot and must pair this call with
    /// exactly one [`AdmissionGate::release`] when the submission
    /// finishes (including when it fails or is cancelled). On overload
    /// the submission is shed: nothing is held and the returned
    /// [`MrqError::Overloaded`] carries the observed in-flight count and
    /// the class limit that rejected it.
    pub fn try_admit(&self, class: QosClass) -> Result<(), MrqError> {
        let limit = self.config.class_limit(class);
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= limit {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(MrqError::Overloaded {
                    in_flight: current,
                    limit,
                });
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    self.peak.fetch_max(current + 1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Return a slot taken by a successful [`AdmissionGate::try_admit`].
    pub fn release(&self) {
        let previous = self.in_flight.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(previous > 0, "admission release without a matching admit");
    }

    /// Snapshot the gate's accounting.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            peak_in_flight: self.peak.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }
}

impl Default for AdmissionGate {
    fn default() -> Self {
        AdmissionGate::new(AdmissionConfig::from_env())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_gate_admits_everything_and_counts() {
        let gate = AdmissionGate::new(AdmissionConfig::unbounded());
        for class in QosClass::ALL {
            for _ in 0..100 {
                gate.try_admit(class).unwrap();
            }
        }
        let stats = gate.stats();
        assert_eq!(stats.admitted, 300);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.in_flight, 300);
        assert_eq!(stats.peak_in_flight, 300);
        for _ in 0..300 {
            gate.release();
        }
        assert_eq!(gate.stats().in_flight, 0);
        assert_eq!(gate.stats().peak_in_flight, 300);
    }

    #[test]
    fn class_limits_follow_the_shed_tiers() {
        let config = AdmissionConfig::bounded(4, 2).with_reserve(1);
        assert_eq!(config.total_slots(), 6);
        assert_eq!(config.class_limit(QosClass::Interactive), 6);
        assert_eq!(config.class_limit(QosClass::Batch), 5);
        assert_eq!(config.class_limit(QosClass::Maintenance), 4);
    }

    #[test]
    fn bounded_default_reserve_is_an_eighth_of_the_budget() {
        assert_eq!(AdmissionConfig::bounded(56, 8).per_class_reserve, 8);
        // Tiny budgets still reserve at least one slot for Interactive.
        assert_eq!(AdmissionConfig::bounded(2, 0).per_class_reserve, 1);
    }

    /// The satellite determinism test: a synthetic burst, pure queue
    /// arithmetic, no sleeps. Maintenance sheds first, then Batch, then
    /// Interactive, with exact accounting at each step.
    #[test]
    fn synthetic_burst_sheds_maintenance_then_batch_then_interactive() {
        let gate = AdmissionGate::new(AdmissionConfig::bounded(4, 2).with_reserve(1));

        // Fill to the Maintenance limit (4): all admitted.
        for _ in 0..4 {
            gate.try_admit(QosClass::Maintenance).unwrap();
        }
        // Maintenance is now shed while Batch and Interactive still fit.
        assert_eq!(
            gate.try_admit(QosClass::Maintenance),
            Err(MrqError::Overloaded {
                in_flight: 4,
                limit: 4
            })
        );
        gate.try_admit(QosClass::Batch).unwrap(); // 5 in flight
        assert_eq!(
            gate.try_admit(QosClass::Batch),
            Err(MrqError::Overloaded {
                in_flight: 5,
                limit: 5
            })
        );
        gate.try_admit(QosClass::Interactive).unwrap(); // 6 in flight
        assert_eq!(
            gate.try_admit(QosClass::Interactive),
            Err(MrqError::Overloaded {
                in_flight: 6,
                limit: 6
            })
        );

        let stats = gate.stats();
        assert_eq!(stats.admitted, 6);
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.in_flight, 6);
        assert_eq!(stats.peak_in_flight, 6);

        // Releasing one slot re-opens Interactive first (limit 6), not
        // Maintenance (limit 4): the freed slot is still above the
        // Maintenance threshold.
        gate.release();
        assert!(gate.try_admit(QosClass::Maintenance).is_err());
        gate.try_admit(QosClass::Interactive).unwrap();

        // Drain fully: Maintenance is admitted again below its limit.
        for _ in 0..6 {
            gate.release();
        }
        gate.try_admit(QosClass::Maintenance).unwrap();
        assert_eq!(gate.stats().in_flight, 1);
    }

    #[test]
    fn zero_budget_sheds_every_class() {
        let gate = AdmissionGate::new(AdmissionConfig::bounded(0, 0).with_reserve(0));
        for class in QosClass::ALL {
            assert_eq!(
                gate.try_admit(class),
                Err(MrqError::Overloaded {
                    in_flight: 0,
                    limit: 0
                })
            );
        }
        assert_eq!(gate.stats().shed, 3);
        assert_eq!(gate.stats().admitted, 0);
    }

    #[test]
    fn reconfiguring_a_live_gate_keeps_in_flight_accounting() {
        let mut gate = AdmissionGate::new(AdmissionConfig::unbounded());
        gate.try_admit(QosClass::Interactive).unwrap();
        gate.try_admit(QosClass::Interactive).unwrap();
        gate.set_config(AdmissionConfig::bounded(2, 0).with_reserve(0));
        // The two pre-existing slots count against the new limit.
        assert!(gate.try_admit(QosClass::Interactive).is_err());
        gate.release();
        gate.try_admit(QosClass::Interactive).unwrap();
    }

    #[test]
    fn env_config_parses_when_present() {
        // `from_env` itself is exercised without mutating the process
        // environment (other tests run concurrently): unset vars mean
        // unbounded.
        if std::env::var("MRQ_MAX_IN_FLIGHT").is_err()
            && std::env::var("MRQ_MAX_QUEUE_DEPTH").is_err()
        {
            assert!(AdmissionConfig::from_env().is_unbounded());
        }
    }
}
