//! Fixed-point decimal arithmetic.
//!
//! TPC-H money, discount and tax columns are exact decimals with two digits
//! after the point. The paper's C# code uses `System.Decimal`; the generated
//! C code uses scaled integers. We follow the C route everywhere: a
//! [`Decimal`] is an `i64` count of hundredths, which keeps the value type
//! `Copy`, 8 bytes wide and friendly to flat row layouts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of sub-unit digits carried by [`Decimal`].
pub const DECIMAL_SCALE: u32 = 2;
/// `10^DECIMAL_SCALE`.
pub const DECIMAL_ONE: i64 = 100;

/// A fixed-point decimal with two fractional digits, stored as scaled `i64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Decimal(i64);

impl Decimal {
    /// The zero value.
    pub const ZERO: Decimal = Decimal(0);
    /// The value `1.00`.
    pub const ONE: Decimal = Decimal(DECIMAL_ONE);

    /// Builds a decimal from a raw scaled representation (hundredths).
    #[inline]
    pub const fn from_raw(raw: i64) -> Self {
        Decimal(raw)
    }

    /// Builds a decimal from a whole number of units.
    #[inline]
    pub const fn from_int(units: i64) -> Self {
        Decimal(units * DECIMAL_ONE)
    }

    /// Builds a decimal from units and hundredths, e.g. `(12, 34)` → `12.34`.
    #[inline]
    pub const fn new(units: i64, cents: i64) -> Self {
        Decimal(units * DECIMAL_ONE + cents)
    }

    /// Returns the raw scaled representation (hundredths).
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Converts to a binary float. Used for averages and reporting only.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / DECIMAL_ONE as f64
    }

    /// Builds the decimal closest to the given float.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        Decimal((v * DECIMAL_ONE as f64).round() as i64)
    }

    /// Multiplies two decimals, rounding half away from zero.
    ///
    /// Both operands carry two fractional digits so the exact product has
    /// four; the result is rounded back to two, matching how the paper's
    /// generated C code (and most row-store engines) evaluate
    /// `extendedprice * (1 - discount)`.
    #[inline]
    pub fn checked_mul(self, rhs: Decimal) -> Option<Decimal> {
        let wide = (self.0 as i128) * (rhs.0 as i128);
        let half = (DECIMAL_ONE as i128) / 2;
        let rounded = if wide >= 0 {
            (wide + half) / DECIMAL_ONE as i128
        } else {
            (wide - half) / DECIMAL_ONE as i128
        };
        i64::try_from(rounded).ok().map(Decimal)
    }

    /// Divides by an integer count, rounding half away from zero. Used for
    /// averages over decimal columns.
    #[inline]
    pub fn div_count(self, count: i64) -> Decimal {
        debug_assert!(count != 0, "division by zero count");
        let half = count / 2;
        let adjusted = if (self.0 >= 0) == (count > 0) {
            self.0 + half
        } else {
            self.0 - half
        };
        Decimal(adjusted / count)
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Decimal {
        Decimal(self.0.abs())
    }

    /// Parses a decimal literal such as `"123"`, `"123.4"` or `"-0.07"`.
    pub fn parse(text: &str) -> Option<Decimal> {
        let text = text.trim();
        let (neg, body) = match text.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, text.strip_prefix('+').unwrap_or(text)),
        };
        if body.is_empty() {
            return None;
        }
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, f)) => (i, f),
            None => (body, ""),
        };
        if frac_part.len() > DECIMAL_SCALE as usize {
            // Extra digits are not representable; reject rather than silently
            // truncate so tests catch precision bugs.
            return None;
        }
        let int_val: i64 = if int_part.is_empty() {
            0
        } else {
            int_part.parse().ok()?
        };
        let mut frac_val: i64 = 0;
        for (i, ch) in frac_part.chars().enumerate() {
            let d = ch.to_digit(10)? as i64;
            frac_val += d * 10_i64.pow(DECIMAL_SCALE - 1 - i as u32);
        }
        let raw = int_val.checked_mul(DECIMAL_ONE)?.checked_add(frac_val)?;
        Some(Decimal(if neg { -raw } else { raw }))
    }
}

impl Add for Decimal {
    type Output = Decimal;
    #[inline]
    fn add(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 + rhs.0)
    }
}

impl AddAssign for Decimal {
    #[inline]
    fn add_assign(&mut self, rhs: Decimal) {
        self.0 += rhs.0;
    }
}

impl Sub for Decimal {
    type Output = Decimal;
    #[inline]
    fn sub(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 - rhs.0)
    }
}

impl SubAssign for Decimal {
    #[inline]
    fn sub_assign(&mut self, rhs: Decimal) {
        self.0 -= rhs.0;
    }
}

impl Mul for Decimal {
    type Output = Decimal;
    #[inline]
    fn mul(self, rhs: Decimal) -> Decimal {
        self.checked_mul(rhs)
            .expect("decimal multiplication overflowed")
    }
}

impl Div<i64> for Decimal {
    type Output = Decimal;
    #[inline]
    fn div(self, rhs: i64) -> Decimal {
        self.div_count(rhs)
    }
}

impl Neg for Decimal {
    type Output = Decimal;
    #[inline]
    fn neg(self) -> Decimal {
        Decimal(-self.0)
    }
}

impl Sum for Decimal {
    fn sum<I: Iterator<Item = Decimal>>(iter: I) -> Decimal {
        iter.fold(Decimal::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Decimal({})", self)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{}{}.{:02}", sign, abs / 100, abs % 100)
    }
}

impl From<i64> for Decimal {
    fn from(units: i64) -> Self {
        Decimal::from_int(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_raw_round_trip() {
        assert_eq!(Decimal::from_int(5).raw(), 500);
        assert_eq!(Decimal::new(12, 34).raw(), 1234);
        assert_eq!(Decimal::from_raw(789).raw(), 789);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Decimal::new(10, 50);
        let b = Decimal::new(2, 75);
        assert_eq!((a + b).to_string(), "13.25");
        assert_eq!((a - b).to_string(), "7.75");
    }

    #[test]
    fn multiplication_rounds_half_away_from_zero() {
        // 0.05 * 0.05 = 0.0025 -> rounds to 0.00? Half-away: 0.0025 has last
        // two digits 25 < 50 so rounds down to 0.00.
        assert_eq!(
            Decimal::parse("0.05").unwrap() * Decimal::parse("0.05").unwrap(),
            Decimal::ZERO
        );
        // 1.25 * 0.10 = 0.125 -> 0.13
        assert_eq!(
            (Decimal::parse("1.25").unwrap() * Decimal::parse("0.10").unwrap()).to_string(),
            "0.13"
        );
        // Negative operand.
        assert_eq!(
            (Decimal::parse("-1.25").unwrap() * Decimal::parse("0.10").unwrap()).to_string(),
            "-0.13"
        );
    }

    #[test]
    fn tpch_price_formula_matches_manual_computation() {
        // extendedprice * (1 - discount) * (1 + tax)
        let price = Decimal::parse("901.00").unwrap();
        let disc = Decimal::parse("0.05").unwrap();
        let tax = Decimal::parse("0.02").unwrap();
        let disc_price = price * (Decimal::ONE - disc);
        assert_eq!(disc_price.to_string(), "855.95");
        let charged = disc_price * (Decimal::ONE + tax);
        assert_eq!(charged.to_string(), "873.07");
    }

    #[test]
    fn division_by_count_for_averages() {
        let total = Decimal::parse("10.00").unwrap();
        assert_eq!(total.div_count(4).to_string(), "2.50");
        assert_eq!(total.div_count(3).to_string(), "3.33");
        assert_eq!((-total).div_count(3).to_string(), "-3.33");
    }

    #[test]
    fn parse_accepts_valid_and_rejects_invalid() {
        assert_eq!(Decimal::parse("123").unwrap().raw(), 12300);
        assert_eq!(Decimal::parse("123.4").unwrap().raw(), 12340);
        assert_eq!(Decimal::parse("-0.07").unwrap().raw(), -7);
        assert_eq!(Decimal::parse("+3.50").unwrap().raw(), 350);
        assert!(Decimal::parse("").is_none());
        assert!(Decimal::parse("abc").is_none());
        assert!(Decimal::parse("1.234").is_none());
        assert!(Decimal::parse("-").is_none());
    }

    #[test]
    fn display_formats_two_digits() {
        assert_eq!(Decimal::from_raw(5).to_string(), "0.05");
        assert_eq!(Decimal::from_raw(-5).to_string(), "-0.05");
        assert_eq!(Decimal::from_raw(100).to_string(), "1.00");
    }

    #[test]
    fn float_round_trip_is_close() {
        let d = Decimal::parse("12345.67").unwrap();
        assert_eq!(Decimal::from_f64(d.to_f64()), d);
    }

    #[test]
    fn sum_iterator() {
        let total: Decimal = (1..=4).map(Decimal::from_int).sum();
        assert_eq!(total, Decimal::from_int(10));
    }
}
