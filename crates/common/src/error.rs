//! Error handling shared across the workspace.

use std::fmt;

/// Convenient result alias used across the MRQ crates.
pub type Result<T> = std::result::Result<T, MrqError>;

/// The error type produced by query translation and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrqError {
    /// An expression tree referenced a field that does not exist in the
    /// schema it was evaluated against.
    UnknownField(String),
    /// An operation was applied to values of an incompatible type.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        found: String,
    },
    /// A query shape is not supported by the engine it was routed to
    /// (mirrors the type restrictions of the paper's §5 native-only path).
    Unsupported(String),
    /// Code generation failed (malformed expression tree, unbound lambda
    /// parameter, etc.).
    Codegen(String),
    /// The managed heap ran out of space or an invalid handle was used.
    Heap(String),
    /// The query was cancelled through its handle before it completed
    /// (cooperative: the flag is observed between morsels, so a claimed
    /// morsel always finishes first).
    Cancelled,
    /// The query's deadline passed before it completed. Deadlines are
    /// observed lazily at the same morsel boundaries as cancellation; an
    /// already-expired deadline resolves at dispatch, before any morsel
    /// runs.
    DeadlineExceeded,
    /// The serving layer refused the submission at admission: the number
    /// of in-flight submissions had reached the limit for the query's QoS
    /// class (see `mrq_common::admission`). Shedding happens before any
    /// compilation or plan-cache traffic, so a rejected statement costs
    /// almost nothing and the caller can retry once load subsides.
    Overloaded {
        /// In-flight submissions observed when the request was shed.
        in_flight: usize,
        /// The admission limit that applied to the request's QoS class.
        limit: usize,
    },
    /// Anything else.
    Internal(String),
}

impl fmt::Display for MrqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrqError::UnknownField(name) => write!(f, "unknown field `{name}`"),
            MrqError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            MrqError::Unsupported(what) => write!(f, "unsupported query shape: {what}"),
            MrqError::Codegen(what) => write!(f, "code generation failed: {what}"),
            MrqError::Heap(what) => write!(f, "managed heap error: {what}"),
            MrqError::Cancelled => write!(f, "query cancelled"),
            MrqError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            MrqError::Overloaded { in_flight, limit } => write!(
                f,
                "server overloaded: {in_flight} submissions in flight (class limit {limit})"
            ),
            MrqError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for MrqError {}

/// Extract a human-readable message from a panic payload.
///
/// `std::panic::catch_unwind` hands back a `Box<dyn Any + Send>`; in
/// practice the payload is a `String` (from `panic!("{x}")` or from the
/// fault-injection layer's `resume_unwind`) or a `&'static str` (from
/// `panic!("literal")`). Anything else gets a fixed fallback so callers
/// never lose the fact that a panic happened.
///
/// The serving layer uses this at every catch site so the *original*
/// panic message — not a generic "a worker panicked" string — survives
/// into the [`MrqError::Internal`] surfaced to the submitter.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "panic with a non-string payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            MrqError::UnknownField("l_tax".into()).to_string(),
            "unknown field `l_tax`"
        );
        let e = MrqError::TypeMismatch {
            expected: "Decimal".into(),
            found: "Str".into(),
        };
        assert!(e.to_string().contains("Decimal"));
        assert!(e.to_string().contains("Str"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let e = MrqError::Unsupported("user-defined constructor".into());
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn overloaded_reports_both_numbers() {
        let e = MrqError::Overloaded {
            in_flight: 64,
            limit: 48,
        };
        let text = e.to_string();
        assert!(text.contains("64"), "{text}");
        assert!(text.contains("48"), "{text}");
    }

    #[test]
    fn panic_messages_survive_all_payload_shapes() {
        let owned: Box<dyn std::any::Any + Send> = Box::new("boom".to_string());
        assert_eq!(panic_message(owned), "boom");
        let literal: Box<dyn std::any::Any + Send> = Box::new("bang");
        assert_eq!(panic_message(literal), "bang");
        let other: Box<dyn std::any::Any + Send> = Box::new(42usize);
        assert_eq!(panic_message(other), "panic with a non-string payload");
    }
}
