//! Error handling shared across the workspace.

use std::fmt;

/// Convenient result alias used across the MRQ crates.
pub type Result<T> = std::result::Result<T, MrqError>;

/// The error type produced by query translation and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrqError {
    /// An expression tree referenced a field that does not exist in the
    /// schema it was evaluated against.
    UnknownField(String),
    /// An operation was applied to values of an incompatible type.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        found: String,
    },
    /// A query shape is not supported by the engine it was routed to
    /// (mirrors the type restrictions of the paper's §5 native-only path).
    Unsupported(String),
    /// Code generation failed (malformed expression tree, unbound lambda
    /// parameter, etc.).
    Codegen(String),
    /// The managed heap ran out of space or an invalid handle was used.
    Heap(String),
    /// The query was cancelled through its handle before it completed
    /// (cooperative: the flag is observed between morsels, so a claimed
    /// morsel always finishes first).
    Cancelled,
    /// The query's deadline passed before it completed. Deadlines are
    /// observed lazily at the same morsel boundaries as cancellation; an
    /// already-expired deadline resolves at dispatch, before any morsel
    /// runs.
    DeadlineExceeded,
    /// Anything else.
    Internal(String),
}

impl fmt::Display for MrqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrqError::UnknownField(name) => write!(f, "unknown field `{name}`"),
            MrqError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            MrqError::Unsupported(what) => write!(f, "unsupported query shape: {what}"),
            MrqError::Codegen(what) => write!(f, "code generation failed: {what}"),
            MrqError::Heap(what) => write!(f, "managed heap error: {what}"),
            MrqError::Cancelled => write!(f, "query cancelled"),
            MrqError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            MrqError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for MrqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            MrqError::UnknownField("l_tax".into()).to_string(),
            "unknown field `l_tax`"
        );
        let e = MrqError::TypeMismatch {
            expected: "Decimal".into(),
            found: "Str".into(),
        };
        assert!(e.to_string().contains("Decimal"));
        assert!(e.to_string().contains("Str"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let e = MrqError::Unsupported("user-defined constructor".into());
        assert_eq!(e.clone(), e);
    }
}
