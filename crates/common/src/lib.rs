//! Shared foundations for the MRQ (Managed-Runtime Queries) workspace.
//!
//! This crate contains the pieces every other crate builds on:
//!
//! * the dynamic [`Value`] model and [`DataType`]s used by expression trees
//!   and by the interpreted (LINQ-to-objects-style) engine,
//! * fixed-point [`Decimal`] arithmetic and a compact [`Date`] type matching
//!   the TPC-H column domains,
//! * relational [`Schema`] / [`Field`] descriptions,
//! * the [`trace::MemTracer`] abstraction used to feed the last-level-cache
//!   simulator,
//! * the deterministic [`workcount::WorkCounters`] threaded through every
//!   engine's fused loops (the counted-work bench mode and its CI gate are
//!   built on these),
//! * the [`morsel`] scheduler ([`ParallelConfig`], contiguous range
//!   partitioning, work-stealing morsel fan-out) and the persistent
//!   [`pool::WorkerPool`] it runs on, shared by every parallel execution
//!   path and by concurrent query submission,
//! * the query-lifecycle controls layered on both: cooperative [`cancel`]
//!   tokens with lazy deadlines, and [`qos`] classes scheduled by weighted
//!   deficit round-robin over per-class ticket queues,
//! * the bounded in-order [`stream`] channel streamed queries publish row
//!   batches through (deterministic re-chunking, backpressure, and the
//!   [`stream::WakerSlot`] async latch shared with `mrq-core`'s futures),
//! * the dependency-free mini-[`executor`] every serving loop drives those
//!   futures and streams with ([`executor::block_on`],
//!   [`executor::drive_all`], and the dynamic [`executor::Multiplexer`]
//!   behind `mrq-protocol`'s per-connection server driver),
//! * the sharded concurrent LRU [`plancache`] the provider layer keys
//!   compiled plans by, with atomic hit/miss/eviction counters,
//! * the robustness layer under the serving core: [`admission`] gates
//!   (QoS-aware load shedding with [`MrqError::Overloaded`]) and the
//!   deterministic [`fault`]-injection registry used by the chaos suite,
//! * the [`profile::CostBreakdown`] phase timer used to reproduce the paper's
//!   cost-breakdown figures (Figures 8, 10 and 12), and
//! * small utilities (a fast integer hasher, error types).

#![warn(missing_docs)]

pub mod admission;
pub mod cancel;
pub mod date;
pub mod decimal;
pub mod error;
pub mod executor;
pub mod fault;
pub mod hash;
pub mod morsel;
pub mod plancache;
pub mod pool;
pub mod profile;
pub mod qos;
pub mod schema;
pub mod stream;
pub mod trace;
pub mod value;
pub mod workcount;

pub use admission::{AdmissionConfig, AdmissionGate, AdmissionStats};
pub use date::Date;
pub use decimal::Decimal;
pub use error::{panic_message, MrqError, Result};
pub use morsel::ParallelConfig;
pub use qos::{QosClass, QosWeights};
pub use schema::{Field, Schema};
pub use stream::{RowBatch, StreamReceiver, StreamSink, WakerSlot};
pub use value::{DataType, Value};
pub use workcount::{WorkCounters, WorkStats};
