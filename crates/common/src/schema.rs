//! Relational schema descriptions.
//!
//! A [`Schema`] plays the role the C# class/struct definitions play in the
//! paper: it names the fields of a record type and gives their types. The
//! code generator uses schemas both to recreate struct definitions for the
//! native side (§5.2) and to derive the implicit projection of §6.1.1.

use crate::value::DataType;

/// A named, typed field of a record type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name, e.g. `l_extendedprice`.
    pub name: String,
    /// Field type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of fields describing a record type.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Schema {
    name: String,
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema with the given type name and fields.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> Self {
        let schema = Schema {
            name: name.into(),
            fields,
        };
        debug_assert!(
            {
                let mut names: Vec<&str> = schema.fields.iter().map(|f| f.name.as_str()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate field names in schema {}",
            schema.name
        );
        schema
    }

    /// The record type name (e.g. `Lineitem`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks a field up by name, returning its positional index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Returns the field at `index`.
    pub fn field(&self, index: usize) -> &Field {
        &self.fields[index]
    }

    /// Returns the type of the named field, if present.
    pub fn dtype_of(&self, name: &str) -> Option<DataType> {
        self.index_of(name).map(|i| self.fields[i].dtype)
    }

    /// Builds a new schema containing only the named fields, in the order
    /// given. Used to model the implicit projection of §6.1.1.
    pub fn project(&self, names: &[&str]) -> Schema {
        let fields = names
            .iter()
            .filter_map(|n| self.index_of(n).map(|i| self.fields[i].clone()))
            .collect();
        Schema::new(format!("{}Projected", self.name), fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "Lineitem",
            vec![
                Field::new("l_orderkey", DataType::Int64),
                Field::new("l_quantity", DataType::Decimal),
                Field::new("l_shipdate", DataType::Date),
                Field::new("l_returnflag", DataType::Str),
            ],
        )
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = sample();
        assert_eq!(s.index_of("l_quantity"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field(2).name, "l_shipdate");
        assert_eq!(s.dtype_of("l_returnflag"), Some(DataType::Str));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn projection_preserves_requested_order() {
        let s = sample();
        let p = s.project(&["l_shipdate", "l_orderkey"]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.field(0).name, "l_shipdate");
        assert_eq!(p.field(1).name, "l_orderkey");
        assert_eq!(p.name(), "LineitemProjected");
    }

    #[test]
    fn projection_ignores_unknown_fields() {
        let s = sample();
        let p = s.project(&["l_orderkey", "nope"]);
        assert_eq!(p.len(), 1);
    }
}
