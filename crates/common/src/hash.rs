//! A fast, non-cryptographic hasher for join and aggregation keys.
//!
//! The standard library's SipHash is designed to resist hash-flooding but is
//! slow for the short integer keys that dominate hash joins and grouped
//! aggregation. This module provides an FxHash-style multiplicative hasher
//! plus `HashMap`/`HashSet` aliases, used by every engine so that hash-table
//! behaviour is identical across the strategies being compared.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiplicative constant (same as rustc-hash / FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style hasher: word-at-a-time multiply-xor.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.mix(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a single 64-bit key without going through the `Hasher` machinery.
/// Handy for the open-addressing tables in the native engine.
#[inline]
pub fn hash_u64(key: u64) -> u64 {
    // A single round of the multiplicative mix followed by an xor-shift
    // finaliser gives good dispersion for sequential keys.
    let mut h = key.wrapping_mul(SEED);
    h ^= h >> 32;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^= h >> 32;
    h
}

/// Hashes two 64-bit keys into one. Used for composite group-by keys.
#[inline]
pub fn hash_u64_pair(a: u64, b: u64) -> u64 {
    hash_u64(a ^ b.rotate_left(29).wrapping_mul(SEED))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work_with_integer_keys() {
        let mut map: FxHashMap<i64, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            set.insert(i);
        }
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn hasher_differs_on_different_inputs() {
        assert_ne!(hash_u64(1), hash_u64(2));
        assert_ne!(hash_u64(0), hash_u64(u64::MAX));
        assert_ne!(hash_u64_pair(1, 2), hash_u64_pair(2, 1));
    }

    #[test]
    fn sequential_keys_disperse_across_buckets() {
        // With 1<<16 buckets, 10_000 sequential keys should not all collide
        // into a handful of buckets.
        let buckets = 1usize << 16;
        let mut used = FxHashSet::default();
        for k in 0..10_000u64 {
            used.insert((hash_u64(k) as usize) & (buckets - 1));
        }
        assert!(
            used.len() > 8_000,
            "poor dispersion: {} buckets",
            used.len()
        );
    }

    #[test]
    fn string_hashing_is_stable_within_process() {
        let mut h1 = FxHasher::default();
        h1.write(b"hello world");
        let mut h2 = FxHasher::default();
        h2.write(b"hello world");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"hello worlc");
        assert_ne!(h1.finish(), h3.finish());
    }
}
