//! Dynamic values and their types.
//!
//! The interpreted engines (LINQ-to-objects and parts of the provider
//! machinery) manipulate values whose types are only known at run time,
//! exactly like `object` in the CLR. [`Value`] is that boxed representation;
//! [`DataType`] is the static type descriptor used by schemas, expression
//! trees and the code generator.

use crate::date::Date;
use crate::decimal::Decimal;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The static type of a value or column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// Fixed-point decimal (two fractional digits).
    Decimal,
    /// 64-bit binary float (used for averages and derived measures).
    Float64,
    /// Calendar date.
    Date,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Byte width of the type in the flat native row layout. Strings are
    /// stored out-of-line as a 4-byte dictionary/arena offset (see
    /// `mrq-engine-native`), so every type has a fixed width.
    pub fn native_width(self) -> usize {
        match self {
            DataType::Bool => 1,
            DataType::Int32 | DataType::Date | DataType::Str => 4,
            DataType::Int64 | DataType::Decimal | DataType::Float64 => 8,
        }
    }

    /// Natural alignment of the type in the flat native row layout.
    pub fn native_align(self) -> usize {
        self.native_width()
    }

    /// True for types on which `SUM`/`AVG` are defined.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Int32 | DataType::Int64 | DataType::Decimal | DataType::Float64
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "Bool",
            DataType::Int32 => "Int32",
            DataType::Int64 => "Int64",
            DataType::Decimal => "Decimal",
            DataType::Float64 => "Float64",
            DataType::Date => "Date",
            DataType::Str => "Str",
        };
        f.write_str(s)
    }
}

/// A dynamically typed value, the unit of data the interpreted engines move
/// around one element at a time.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent value (LINQ `null`). Only produced by outer joins and defaults.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32-bit integer.
    Int32(i32),
    /// 64-bit integer.
    Int64(i64),
    /// Fixed-point decimal.
    Decimal(Decimal),
    /// Binary float.
    Float64(f64),
    /// Calendar date.
    Date(Date),
    /// Shared immutable string (strings are reference types in the CLR; the
    /// `Arc` models the shared heap object).
    Str(Arc<str>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the run-time type of the value, or `None` for `Null`.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Decimal(_) => Some(DataType::Decimal),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Date(_) => Some(DataType::Date),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Extracts a boolean, treating `Null` as `false` (SQL-style filter
    /// semantics).
    pub fn as_bool(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Extracts an `i64`, widening `Int32`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a decimal.
    pub fn as_decimal(&self) -> Option<Decimal> {
        match self {
            Value::Decimal(d) => Some(*d),
            Value::Int32(v) => Some(Decimal::from_int(*v as i64)),
            Value::Int64(v) => Some(Decimal::from_int(*v)),
            _ => None,
        }
    }

    /// Extracts a float, widening integers and decimals.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            Value::Decimal(d) => Some(d.to_f64()),
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extracts a date.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A total order across values of the same type, with `Null` sorting
    /// first. Mixed-type comparisons order by type tag; the engines never
    /// rely on that, but sorting needs totality.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int32(a), Int32(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Int32(a), Int64(b)) => (*a as i64).cmp(b),
            (Int64(a), Int32(b)) => a.cmp(&(*b as i64)),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int32(_) => 2,
            Value::Int64(_) => 3,
            Value::Decimal(_) => 4,
            Value::Float64(_) => 5,
            Value::Date(_) => 6,
            Value::Str(_) => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Decimal(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v:.4}"),
            Value::Date(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<Decimal> for Value {
    fn from(v: Decimal) -> Self {
        Value::Decimal(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_reflects_variant() {
        assert_eq!(Value::Int32(1).dtype(), Some(DataType::Int32));
        assert_eq!(Value::str("x").dtype(), Some(DataType::Str));
        assert_eq!(Value::Null.dtype(), None);
    }

    #[test]
    fn accessors_widen_where_sensible() {
        assert_eq!(Value::Int32(7).as_i64(), Some(7));
        assert_eq!(Value::Int64(7).as_f64(), Some(7.0));
        assert_eq!(Value::Int32(7).as_decimal(), Some(Decimal::from_int(7)));
        assert_eq!(Value::str("x").as_i64(), None);
        assert!(!Value::Null.as_bool());
        assert!(Value::Bool(true).as_bool());
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int64(1) < Value::Int64(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Date(Date::from_ymd(1995, 1, 1)) < Value::Date(Date::from_ymd(1996, 1, 1)));
        assert!(Value::Null < Value::Int32(0));
        // cross-width integer comparison
        assert_eq!(Value::Int32(5), Value::Int64(5));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int64(42).to_string(), "42");
        assert_eq!(Value::Decimal(Decimal::new(3, 50)).to_string(), "3.50");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn native_widths_match_layout_expectations() {
        assert_eq!(DataType::Int32.native_width(), 4);
        assert_eq!(DataType::Decimal.native_width(), 8);
        assert_eq!(DataType::Str.native_width(), 4);
        assert_eq!(DataType::Bool.native_width(), 1);
        assert!(DataType::Decimal.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }
}
