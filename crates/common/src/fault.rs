//! Deterministic fault injection for the serving core.
//!
//! Real overload, real races, and real worker crashes never manifest on a
//! small deterministic test box — so the robustness paths (panic
//! isolation, admission shedding, poison recovery) would otherwise ship
//! untested. This module plants *named fault points* at the interesting
//! phase boundaries of the serving stack; each point is a no-op unless
//! armed, and arming is **counter-based, never random**: a fault fires on
//! the Nth traversal of its point, so every chaos test replays
//! identically.
//!
//! # Fault points
//!
//! A fault point is one line at a phase boundary:
//!
//! ```ignore
//! mrq_common::fault::point("staging.merge")?;
//! ```
//!
//! [`point`] returns `Ok(())` without taking any lock when nothing is
//! armed (a single relaxed atomic load), so production and default test
//! cells pay nothing. [`point_unwind`] is the variant for infallible
//! contexts (e.g. inside a morsel runner): an injected `err` there
//! degrades to a panic carrying the same message, which the pool's panic
//! isolation converts back into a clean per-query error — deliberately
//! exercising the full containment stack. The registered point names are
//! listed in [`POINTS`].
//!
//! # Arming
//!
//! Programmatic: [`arm`]`("pool.dispatch", FaultAction::Panic, 3)` fires a
//! panic on the third traversal. From the environment:
//!
//! ```text
//! MRQ_FAULTS="pool.dispatch:panic@3,plancache.insert:err@1,staging.merge:delay"
//! ```
//!
//! Grammar: comma-separated `name:action[@N]` entries; `action` is one of
//! `panic`, `err`, `delay`, `hold`; `@N` (default 1) is the 1-based hit
//! number the fault fires on. The variable is parsed once, on first
//! traversal of any point.
//!
//! Actions:
//!
//! * `panic` — unwinds with a `String` payload (via `resume_unwind`, so
//!   the panic hook prints nothing), exactly once on the Nth hit.
//! * `err` — returns [`MrqError::Internal`] from the point, once.
//! * `delay` — sleeps ~2 ms, once; useful for widening windows in cells
//!   that still expect every query to succeed.
//! * `hold` — parks every traversal from the Nth onward on a condvar
//!   until [`release`] or [`disarm_all`]; this is how tests freeze
//!   admitted submissions at a precise point with no sleeps at all.
//!
//! The registry is process-global (the worker pool it instruments is
//! too); chaos tests that arm faults serialise on a lock and disarm on
//! exit.

use crate::error::{MrqError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Every fault point compiled into the workspace, for docs and for chaos
/// tests that want to sweep them all.
pub const POINTS: &[&str] = &[
    "pool.dispatch",
    "plancache.insert",
    "staging.merge",
    "future.complete",
    "join.build.shard",
    "engine.native.probe",
    "engine.csharp.probe",
    "engine.linq.scan",
];

/// What an armed fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Unwind with a `String` payload naming the point.
    Panic,
    /// Return [`MrqError::Internal`] from the fault point.
    Err,
    /// Sleep ~2 ms and continue.
    Delay,
    /// Block at the point until [`release`] / [`disarm_all`].
    Hold,
}

#[derive(Debug)]
struct ArmedFault {
    action: FaultAction,
    /// 1-based hit number the fault fires on.
    fire_at: u64,
    /// Traversals observed so far.
    hits: u64,
    /// One-shot actions flip this after firing and become inert.
    fired: bool,
}

struct Registry {
    faults: Mutex<HashMap<String, ArmedFault>>,
    released: Condvar,
    /// Fast-path gate: the number of armed faults that can still fire
    /// (unfired one-shots plus holds). Zero means [`point`] returns
    /// without locking.
    live: AtomicUsize,
}

impl Registry {
    fn lock(&self) -> MutexGuard<'_, HashMap<String, ArmedFault>> {
        // A panic injected while the map is locked must not disable the
        // whole harness.
        self.faults.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Recompute the fast-path counter from the map; call under the lock
    /// after every mutation.
    fn recount(&self, faults: &HashMap<String, ArmedFault>) {
        let live = faults.values().filter(|f| !f.fired).count();
        self.live.store(live, Ordering::Release);
    }
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let registry = Registry {
            faults: Mutex::new(HashMap::new()),
            released: Condvar::new(),
            live: AtomicUsize::new(0),
        };
        if let Ok(spec) = std::env::var("MRQ_FAULTS") {
            // A malformed env spec is reported lazily by `arm_spec` in
            // tests; at runtime we prefer a no-op harness over a crash.
            let _ = arm_spec_into(&registry, &spec);
        }
        registry
    })
}

fn arm_spec_into(registry: &Registry, spec: &str) -> Result<()> {
    let mut parsed = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, rest) = entry.split_once(':').ok_or_else(|| {
            MrqError::Internal(format!("MRQ_FAULTS entry `{entry}` is missing `:action`"))
        })?;
        let (action, fire_at) = match rest.split_once('@') {
            Some((action, n)) => {
                let n: u64 = n.parse().map_err(|_| {
                    MrqError::Internal(format!("MRQ_FAULTS entry `{entry}` has a bad hit count"))
                })?;
                (action, n.max(1))
            }
            None => (rest, 1),
        };
        let action = match action {
            "panic" => FaultAction::Panic,
            "err" => FaultAction::Err,
            "delay" => FaultAction::Delay,
            "hold" => FaultAction::Hold,
            other => {
                return Err(MrqError::Internal(format!(
                    "MRQ_FAULTS action `{other}` is not one of panic/err/delay/hold"
                )))
            }
        };
        parsed.push((name.trim().to_string(), action, fire_at));
    }
    let mut faults = registry.lock();
    for (name, action, fire_at) in parsed {
        faults.insert(
            name,
            ArmedFault {
                action,
                fire_at,
                hits: 0,
                fired: false,
            },
        );
    }
    registry.recount(&faults);
    Ok(())
}

/// Arm `name` to perform `action` on its `fire_at`-th traversal (1-based;
/// 0 is treated as 1). Re-arming an already-armed point resets its hit
/// counter.
pub fn arm(name: &str, action: FaultAction, fire_at: u64) {
    let registry = registry();
    let mut faults = registry.lock();
    faults.insert(
        name.to_string(),
        ArmedFault {
            action,
            fire_at: fire_at.max(1),
            hits: 0,
            fired: false,
        },
    );
    registry.recount(&faults);
}

/// Arm a comma-separated `name:action[@N]` spec (the `MRQ_FAULTS`
/// grammar). Returns an error — arming nothing — if the spec is
/// malformed.
pub fn arm_spec(spec: &str) -> Result<()> {
    arm_spec_into(registry(), spec)
}

/// Disarm every fault and wake any traversals parked in a `hold`.
pub fn disarm_all() {
    let registry = registry();
    let mut faults = registry.lock();
    faults.clear();
    registry.recount(&faults);
    registry.released.notify_all();
}

/// Disarm `name` (waking its held traversals, if any). Unknown names are
/// a no-op.
pub fn release(name: &str) {
    let registry = registry();
    let mut faults = registry.lock();
    faults.remove(name);
    registry.recount(&faults);
    registry.released.notify_all();
}

/// How many times `name` has been traversed since it was (last) armed.
/// Returns 0 for unarmed points.
pub fn hits(name: &str) -> u64 {
    registry().lock().get(name).map_or(0, |f| f.hits)
}

/// Whether `name` has fired its one-shot action.
pub fn fired(name: &str) -> bool {
    registry().lock().get(name).is_some_and(|f| f.fired)
}

/// The number of armed faults that can still fire.
pub fn armed_count() -> usize {
    registry().live.load(Ordering::Acquire)
}

/// A fault point. No-op (one relaxed atomic load) unless a fault is
/// armed; otherwise fires the armed action when this traversal is the
/// designated hit.
#[inline]
pub fn point(name: &str) -> Result<()> {
    let registry = registry();
    if registry.live.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    hit(registry, name)
}

/// Fault point for infallible contexts (morsel runners, completion
/// paths): an injected `err` is escalated to a panic carrying the same
/// message, which the panic-isolation layer downgrades back to a clean
/// per-query [`MrqError::Internal`].
#[inline]
pub fn point_unwind(name: &str) {
    if let Err(error) = point(name) {
        std::panic::resume_unwind(Box::new(error.to_string()));
    }
}

#[cold]
fn hit(registry: &'static Registry, name: &str) -> Result<()> {
    let mut faults = registry.lock();
    let Some(fault) = faults.get_mut(name) else {
        return Ok(());
    };
    fault.hits += 1;
    let action = fault.action;
    if action == FaultAction::Hold {
        if fault.hits < fault.fire_at {
            return Ok(());
        }
        // Park until this point is released or everything is disarmed.
        while faults.contains_key(name) {
            faults = registry
                .released
                .wait(faults)
                .unwrap_or_else(|e| e.into_inner());
        }
        return Ok(());
    }
    if fault.fired || fault.hits != fault.fire_at {
        return Ok(());
    }
    fault.fired = true;
    registry.recount(&faults);
    drop(faults);
    match action {
        FaultAction::Panic => {
            std::panic::resume_unwind(Box::new(format!("injected panic at fault point `{name}`")))
        }
        FaultAction::Err => Err(MrqError::Internal(format!(
            "injected fault at fault point `{name}`"
        ))),
        FaultAction::Delay => {
            std::thread::sleep(Duration::from_millis(2));
            Ok(())
        }
        FaultAction::Hold => unreachable!("hold is handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that arm faults serialise
    /// here and leave the registry clean.
    fn scoped() -> impl Drop {
        static SERIAL: Mutex<()> = Mutex::new(());
        struct Guard(#[allow(dead_code)] MutexGuard<'static, ()>);
        impl Drop for Guard {
            fn drop(&mut self) {
                disarm_all();
            }
        }
        let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        Guard(guard)
    }

    #[test]
    fn unarmed_points_are_noops() {
        let _guard = scoped();
        assert_eq!(armed_count(), 0);
        for name in POINTS {
            assert_eq!(point(name), Ok(()));
            point_unwind(name);
        }
        // Unarmed points do not even count hits.
        assert_eq!(hits("pool.dispatch"), 0);
    }

    #[test]
    fn err_fires_exactly_on_the_nth_hit() {
        let _guard = scoped();
        arm("pool.dispatch", FaultAction::Err, 3);
        assert_eq!(point("pool.dispatch"), Ok(()));
        assert_eq!(point("pool.dispatch"), Ok(()));
        let error = point("pool.dispatch").unwrap_err();
        assert_eq!(
            error,
            MrqError::Internal("injected fault at fault point `pool.dispatch`".into())
        );
        // One-shot: later traversals pass, and once nothing can fire the
        // lock-free fast path re-opens (so hits stop being counted too).
        assert_eq!(point("pool.dispatch"), Ok(()));
        assert!(fired("pool.dispatch"));
        assert_eq!(hits("pool.dispatch"), 3);
        assert_eq!(armed_count(), 0);
    }

    #[test]
    fn panic_unwinds_with_a_named_string_payload() {
        let _guard = scoped();
        arm("staging.merge", FaultAction::Panic, 1);
        let payload = std::panic::catch_unwind(|| point("staging.merge")).unwrap_err();
        assert_eq!(
            crate::error::panic_message(payload),
            "injected panic at fault point `staging.merge`"
        );
    }

    #[test]
    fn point_unwind_escalates_err_to_a_panic() {
        let _guard = scoped();
        arm("join.build.shard", FaultAction::Err, 1);
        let payload = std::panic::catch_unwind(|| point_unwind("join.build.shard")).unwrap_err();
        let message = crate::error::panic_message(payload);
        assert!(message.contains("join.build.shard"), "{message}");
    }

    #[test]
    fn delay_passes_and_fires_once() {
        let _guard = scoped();
        arm("future.complete", FaultAction::Delay, 1);
        assert_eq!(point("future.complete"), Ok(()));
        assert!(fired("future.complete"));
        assert_eq!(point("future.complete"), Ok(()));
    }

    #[test]
    fn hold_parks_until_released() {
        let _guard = scoped();
        arm("pool.dispatch", FaultAction::Hold, 1);
        let parked = std::thread::spawn(|| {
            point("pool.dispatch").unwrap();
            true
        });
        // Deterministic rendezvous: wait until the traversal is counted,
        // which happens before it parks.
        while hits("pool.dispatch") == 0 {
            std::thread::yield_now();
        }
        release("pool.dispatch");
        assert!(parked.join().unwrap());
    }

    #[test]
    fn spec_grammar_round_trips() {
        let _guard = scoped();
        arm_spec("pool.dispatch:panic@3, plancache.insert:err , staging.merge:delay@2").unwrap();
        assert_eq!(armed_count(), 3);
        // Default hit count is 1.
        let error = point("plancache.insert").unwrap_err().to_string();
        assert!(error.contains("plancache.insert"), "{error}");
        assert_eq!(armed_count(), 2);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _guard = scoped();
        assert!(arm_spec("no-action-here").is_err());
        assert!(arm_spec("a:explode").is_err());
        assert!(arm_spec("a:panic@x").is_err());
        assert_eq!(armed_count(), 0);
    }
}
