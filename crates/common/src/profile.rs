//! Phase timing used to reproduce the paper's cost-breakdown figures.
//!
//! Figures 8, 10 and 12 of the paper split a hybrid query's evaluation time
//! into phases (iterate data, apply predicates, data staging, native work,
//! return result). Engines record into a [`CostBreakdown`] so the benchmark
//! harness can print the same stacked series.

use std::time::{Duration, Instant};

/// The canonical phase names used by the hybrid engine. Other engines may
/// record additional phases; the harness prints whatever was recorded.
pub mod phases {
    /// Iterating over the managed input collection.
    pub const ITERATE: &str = "Iterate data (managed)";
    /// Evaluating selection predicates on the managed side.
    pub const PREDICATES: &str = "Apply predicates (managed)";
    /// Copying qualifying rows into unmanaged staging buffers.
    pub const STAGING: &str = "Data staging (managed)";
    /// Aggregation performed by the native kernels.
    pub const AGGREGATION: &str = "Aggregation (native)";
    /// Sorting performed by the native kernels.
    pub const SORT: &str = "Quicksort (native)";
    /// Hash-table build performed by the native kernels.
    pub const BUILD_HASH: &str = "Build hash tables (native)";
    /// Probe + result production (native work interleaved with managed
    /// consumption).
    pub const PROBE_RETURN: &str = "Process and return result (native/managed)";
    /// Producing result objects back on the managed side.
    pub const RETURN_RESULT: &str = "Return result (native/managed)";
}

/// An accumulating per-phase wall-clock profile.
#[derive(Debug, Clone, Default)]
pub struct CostBreakdown {
    entries: Vec<(String, Duration)>,
}

impl CostBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elapsed` to the named phase, creating it if needed.
    pub fn add(&mut self, phase: &str, elapsed: Duration) {
        if let Some(entry) = self.entries.iter_mut().find(|(name, _)| name == phase) {
            entry.1 += elapsed;
        } else {
            self.entries.push((phase.to_string(), elapsed));
        }
    }

    /// Times the given closure and charges it to `phase`, returning its
    /// result.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// All recorded phases in first-recorded order.
    pub fn entries(&self) -> &[(String, Duration)] {
        &self.entries
    }

    /// Total time across phases.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Duration recorded for a phase, if any.
    pub fn get(&self, phase: &str) -> Option<Duration> {
        self.entries
            .iter()
            .find(|(name, _)| name == phase)
            .map(|(_, d)| *d)
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &CostBreakdown) {
        for (name, d) in &other.entries {
            self.add(name, *d);
        }
    }

    /// Renders a small fixed-width table, mirroring the stacked-bar figures.
    pub fn render(&self) -> String {
        let total = self.total().as_secs_f64().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        for (name, d) in &self.entries {
            let ms = d.as_secs_f64() * 1e3;
            let pct = d.as_secs_f64() / total * 100.0;
            out.push_str(&format!("{name:<45} {ms:>10.3} ms  {pct:>5.1}%\n"));
        }
        out.push_str(&format!(
            "{:<45} {:>10.3} ms  100.0%\n",
            "TOTAL",
            self.total().as_secs_f64() * 1e3
        ));
        out
    }
}

/// A guard-style scoped timer: charges the elapsed time to a phase when
/// dropped. Useful when a phase spans early returns.
pub struct ScopedTimer<'a> {
    breakdown: &'a mut CostBreakdown,
    phase: &'static str,
    start: Instant,
}

impl<'a> ScopedTimer<'a> {
    /// Starts timing `phase`.
    pub fn new(breakdown: &'a mut CostBreakdown, phase: &'static str) -> Self {
        ScopedTimer {
            breakdown,
            phase,
            start: Instant::now(),
        }
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        self.breakdown.add(self.phase, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn add_accumulates_per_phase() {
        let mut b = CostBreakdown::new();
        b.add("x", Duration::from_millis(5));
        b.add("y", Duration::from_millis(2));
        b.add("x", Duration::from_millis(3));
        assert_eq!(b.get("x"), Some(Duration::from_millis(8)));
        assert_eq!(b.get("y"), Some(Duration::from_millis(2)));
        assert_eq!(b.total(), Duration::from_millis(10));
        assert_eq!(b.entries().len(), 2);
    }

    #[test]
    fn time_charges_closure_duration() {
        let mut b = CostBreakdown::new();
        let v = b.time("work", || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(b.get("work").unwrap() >= Duration::from_millis(1));
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let mut b = CostBreakdown::new();
        {
            let _t = ScopedTimer::new(&mut b, "scoped");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(b.get("scoped").is_some());
    }

    #[test]
    fn merge_and_render() {
        let mut a = CostBreakdown::new();
        a.add("p", Duration::from_millis(1));
        let mut b = CostBreakdown::new();
        b.add("p", Duration::from_millis(1));
        b.add("q", Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.get("p"), Some(Duration::from_millis(2)));
        let rendered = a.render();
        assert!(rendered.contains("TOTAL"));
        assert!(rendered.contains('q'));
    }
}
