//! A sharded concurrent LRU cache for compiled query plans.
//!
//! Amortizing compilation is the serving-economics half of the paper's
//! compilation-cost-vs-execution-speed trade (§7.4): a server pays code
//! generation once per query *shape* and executes the cached plan millions
//! of times. This module provides the storage layer for that trade — a
//! generic, thread-safe, bounded cache:
//!
//! * **Sharded**: the key hash's low bits pick one of N independent shards
//!   (N is rounded up to a power of two), so concurrent prepares on
//!   different shapes contend on different locks;
//! * **LRU per shard**: each shard holds at most
//!   [`CacheConfig::capacity_per_shard`] entries and evicts its
//!   least-recently-*used* entry when full (both lookups and inserts
//!   refresh recency);
//! * **Counted**: hits, misses and evictions are atomic counters exposed as
//!   a [`CacheStats`] snapshot, so hit rates can be asserted exactly in
//!   tests and reported by serving dashboards;
//! * **Poison-tolerant**: every shard-lock acquisition recovers a poisoned
//!   mutex via `into_inner()`. A panic inside the lock (a panicking key
//!   comparison, or an injected fault) can unwind mid-operation, but shard
//!   state is only ever mutated in already-consistent steps, so later
//!   lookups and inserts on that shard keep working — one query fails, the
//!   cache does not (exercised by the chaos/poison tests).
//!
//! The cache is generic over key and value so the provider layer can key it
//! by (expression structure, strategy, source schema) without this crate
//! depending on the expression crates. Values are handed out as [`Arc`]s;
//! eviction never invalidates a plan a client still holds.
//!
//! Capacity and shard count default from the environment —
//! `MRQ_PLAN_CACHE_CAP` (entries per shard) and `MRQ_PLAN_CACHE_SHARDS` —
//! via [`CacheConfig::from_env`], mirroring the `MRQ_THREADS` /
//! `MRQ_STEALING` convention of [`crate::morsel::ParallelConfig`].

use crate::hash::FxHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Sizing of a [`ShardedLru`]: how many independent shards, and how many
/// entries each shard retains before evicting its least-recently-used one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of shards; rounded up to a power of two so shard selection is
    /// a mask over the key hash's low bits. Minimum 1.
    pub shards: usize,
    /// Maximum entries retained *per shard*. Minimum 1; the cache's total
    /// capacity is `shards × capacity_per_shard`.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    /// 8 shards × 32 plans: enough for an application's query shapes with
    /// negligible memory, and enough shards that concurrent prepares rarely
    /// share a lock.
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity_per_shard: 32,
        }
    }
}

impl CacheConfig {
    /// An unsharded config — a single shard with the given capacity. LRU
    /// eviction order is then globally deterministic, which is what the
    /// cache-behaviour test suites build on.
    pub fn single_shard(capacity: usize) -> Self {
        CacheConfig {
            shards: 1,
            capacity_per_shard: capacity,
        }
    }

    /// The defaults overridden by the environment: `MRQ_PLAN_CACHE_SHARDS`
    /// (shard count) and `MRQ_PLAN_CACHE_CAP` (entries per shard). Unset or
    /// unparsable variables keep the [`CacheConfig::default`] values.
    pub fn from_env() -> Self {
        let parsed = |name: &str| -> Option<usize> { std::env::var(name).ok()?.parse().ok() };
        let mut config = CacheConfig::default();
        if let Some(shards) = parsed("MRQ_PLAN_CACHE_SHARDS") {
            config.shards = shards.max(1);
        }
        if let Some(capacity) = parsed("MRQ_PLAN_CACHE_CAP") {
            config.capacity_per_shard = capacity.max(1);
        }
        config
    }
}

/// Snapshot of a [`ShardedLru`]'s behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing (the caller then compiles and inserts).
    pub misses: u64,
    /// Entries displaced by LRU eviction at capacity.
    pub evictions: u64,
    /// Entries currently stored across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0.0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard: entries in recency order (front = least recently used,
/// back = most recently used). Linear scans are deliberate — per-shard
/// capacity is tens of entries, and the Vec keeps the LRU order exact and
/// observable, which the deterministic cache-behaviour tests depend on.
struct Shard<K, V> {
    entries: Vec<(K, Arc<V>)>,
}

impl<K: Eq, V> Shard<K, V> {
    fn touch(&mut self, key: &K) -> Option<Arc<V>> {
        let index = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(index);
        let value = Arc::clone(&entry.1);
        self.entries.push(entry);
        Some(value)
    }
}

/// A thread-safe, sharded, bounded LRU cache handing out [`Arc`]-shared
/// values.
///
/// # Examples
///
/// ```
/// use mrq_common::plancache::{CacheConfig, ShardedLru};
/// use std::sync::Arc;
///
/// // A single shard with room for two plans: deterministic LRU order.
/// let cache: ShardedLru<&str, u64> = ShardedLru::new(CacheConfig::single_shard(2));
/// cache.insert("q1", Arc::new(1));
/// cache.insert("q2", Arc::new(2));
/// assert_eq!(cache.get(&"q1").as_deref(), Some(&1)); // q1 is now MRU
/// cache.insert("q3", Arc::new(3)); // evicts q2, the LRU entry
/// assert!(cache.get(&"q2").is_none());
/// assert!(cache.get(&"q1").is_some());
/// let stats = cache.stats();
/// assert_eq!((stats.evictions, stats.entries), (1, 2));
/// ```
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq, V> ShardedLru<K, V> {
    /// Creates an empty cache sized by `config` (shard count rounded up to
    /// a power of two, both dimensions clamped to at least 1).
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: Vec::new(),
                    })
                })
                .collect(),
            mask: shards as u64 - 1,
            capacity_per_shard: config.capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An empty cache sized from the environment
    /// ([`CacheConfig::from_env`]).
    pub fn from_env() -> Self {
        Self::new(CacheConfig::from_env())
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &K) -> MutexGuard<'_, Shard<K, V>> {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        self.shards[(hasher.finish() & self.mask) as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a key, refreshing its recency on a hit. Counts exactly one
    /// hit or one miss.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let found = self.shard_of(key).touch(key);
        match found {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a value, evicting the shard's least-recently-used entry when
    /// the shard is at capacity. If the key is already present the existing
    /// value *wins* and is returned (and refreshed) — so two threads racing
    /// to compile the same shape converge on one plan, matching the
    /// compiled-query-cache semantics the provider already has. Counts
    /// neither a hit nor a miss.
    pub fn insert(&self, key: K, value: Arc<V>) -> Arc<V> {
        let mut shard = self.shard_of(&key);
        if let Some(existing) = shard.touch(&key) {
            return existing;
        }
        if shard.entries.len() >= self.capacity_per_shard {
            shard.entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.entries.push((key, Arc::clone(&value)));
        value
    }

    /// The lookup-or-compute composite: one counted [`ShardedLru::get`],
    /// and on a miss the (fallible) `compile` closure runs *outside* the
    /// shard lock, its result inserted with [`ShardedLru::insert`]'s
    /// first-insert-wins race semantics. Concurrent misses for one key may
    /// both compile; they converge on a single cached plan.
    pub fn get_or_insert_with<E>(
        &self,
        key: &K,
        compile: impl FnOnce() -> Result<Arc<V>, E>,
    ) -> Result<Arc<V>, E>
    where
        K: Clone,
    {
        if let Some(found) = self.get(key) {
            return Ok(found);
        }
        Ok(self.insert(key.clone(), compile()?))
    }

    /// Entries currently stored across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved; outstanding [`Arc`]s stay
    /// valid).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entries
                .clear();
        }
    }

    /// Snapshot of the hit/miss/eviction counters and current entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_counters_are_exact() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(CacheConfig::single_shard(2));
        assert!(cache.get(&1).is_none());
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        assert_eq!(cache.get(&1).as_deref(), Some(&10));
        assert_eq!(cache.get(&2).as_deref(), Some(&20));
        cache.insert(3, Arc::new(30)); // evicts key 1 (LRU after the touches)
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(cache.get(&1).is_none());
    }

    #[test]
    fn lru_order_is_refreshed_by_get_and_insert() {
        let cache: ShardedLru<&str, u8> = ShardedLru::new(CacheConfig::single_shard(3));
        cache.insert("a", Arc::new(0));
        cache.insert("b", Arc::new(1));
        cache.insert("c", Arc::new(2));
        // Touch a, then b: LRU order is now c < a < b.
        cache.get(&"a");
        cache.get(&"b");
        cache.insert("d", Arc::new(3)); // evicts c
        assert!(cache.get(&"c").is_none());
        // Re-inserting an existing key refreshes it instead of duplicating.
        cache.insert("a", Arc::new(9));
        assert_eq!(
            cache.get(&"a").as_deref(),
            Some(&0),
            "first insert wins; re-insert only refreshes recency"
        );
        cache.insert("e", Arc::new(4)); // evicts b (a was refreshed)
        assert!(cache.get(&"b").is_none());
        assert!(cache.get(&"a").is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn capacity_one_keeps_only_the_latest_entry() {
        let cache: ShardedLru<u8, u8> = ShardedLru::new(CacheConfig::single_shard(1));
        cache.insert(1, Arc::new(1));
        cache.insert(2, Arc::new(2));
        assert!(cache.get(&1).is_none());
        assert_eq!(cache.get(&2).as_deref(), Some(&2));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        let cache: ShardedLru<u8, u8> = ShardedLru::new(CacheConfig {
            shards: 5,
            capacity_per_shard: 2,
        });
        assert_eq!(cache.shard_count(), 8);
        // Entries land across shards; total capacity is shards × per-shard.
        for i in 0..16 {
            cache.insert(i, Arc::new(i));
        }
        assert!(cache.len() <= 16);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn get_or_insert_with_compiles_once_per_key() {
        let cache: ShardedLru<u8, u8> = ShardedLru::new(CacheConfig::default());
        let mut compiles = 0;
        for _ in 0..3 {
            let v: Result<_, ()> = cache.get_or_insert_with(&7, || {
                compiles += 1;
                Ok(Arc::new(42))
            });
            assert_eq!(*v.unwrap(), 42);
        }
        assert_eq!(compiles, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        // Errors propagate without inserting anything.
        let err: Result<Arc<u8>, &str> = cache.get_or_insert_with(&8, || Err("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.get(&8).is_none());
    }

    #[test]
    fn concurrent_hammering_converges_on_one_value_per_key() {
        let cache: Arc<ShardedLru<u32, u32>> = Arc::new(ShardedLru::new(CacheConfig {
            shards: 4,
            capacity_per_shard: 64,
        }));
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..64u32 {
                        let v: Result<_, ()> =
                            cache.get_or_insert_with(&i, || Ok(Arc::new(i * 100 + t)));
                        // Whatever thread won the insert, the value is a
                        // function of the key alone modulo the winner's id.
                        assert_eq!(*v.unwrap() / 100, i);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64, "no key lost or duplicated");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 64);
        assert!(stats.misses >= 64, "each key missed at least once");
    }
}
