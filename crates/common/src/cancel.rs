//! Cooperative query cancellation and deadlines.
//!
//! A [`CancelToken`] is one atomic flag plus an optional armed deadline.
//! The serving layer creates one per submitted query, the client flips it
//! (`QueryHandle::cancel` in `mrq-core`) or the deadline passes, and the
//! execution layer *checks* it at cheap, well-defined points — between
//! morsels of a pool fan-out ([`crate::pool`]), between join-build shards,
//! and at the engines' phase boundaries. Nothing is pre-empted: a claimed
//! morsel always runs to completion, so cancellation latency is bounded by
//! one morsel's worth of work ([`crate::ParallelConfig::morsel_rows`]),
//! never by the length of the query.
//!
//! Deadlines are lazy: arming one stores an [`Instant`]; there is no timer
//! thread. The token trips the first time anything checks it after the
//! deadline passed, which by construction is at a morsel boundary.
//!
//! # Propagation
//!
//! The thread driving a query installs its token with [`scope`]; the morsel
//! scheduler picks it up via [`current`] and threads it into the pool's job
//! state so workers abandon unclaimed morsels. On the driving thread,
//! [`checkpoint`] unwinds with the [`CancelReason`] as panic payload
//! (via [`std::panic::resume_unwind`], so no panic hook fires and nothing
//! is printed); the serving layer catches the unwind at the query boundary
//! and resolves the handle to the matching error. Code that does not run
//! under a [`scope`] — every plain `Provider::execute` call — sees no token
//! and is completely unaffected.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::qos::QosClass;
use crate::MrqError;

/// Rows between intra-morsel cooperative-cancellation checkpoints inside
/// the engines' fused scan/probe, build and staging loops (and the LINQ
/// baseline's source enumerable). One shared cadence keeps the documented
/// "~4096 rows" worst-case cancel latency true of every engine; the
/// power-of-two value keeps the per-row cost to one predictable modulus
/// branch, and outside a cancel scope each checkpoint is a no-op.
pub const CHECK_EVERY_ROWS: usize = 4096;

/// Why a query was stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The token's flag was flipped by an explicit `cancel()` call.
    Cancelled,
    /// The token's armed deadline passed.
    DeadlineExceeded,
}

impl From<CancelReason> for MrqError {
    fn from(reason: CancelReason) -> MrqError {
        match reason {
            CancelReason::Cancelled => MrqError::Cancelled,
            CancelReason::DeadlineExceeded => MrqError::DeadlineExceeded,
        }
    }
}

/// A cooperative cancellation flag with an optional lazy deadline.
///
/// Cheap to check (one relaxed atomic load; one clock read when a deadline
/// is armed) and checked only *between* units of work, never inside them.
///
/// # Examples
///
/// ```
/// use mrq_common::cancel::{CancelReason, CancelToken};
///
/// let token = CancelToken::new();
/// assert!(token.check().is_none());
/// token.cancel();
/// assert_eq!(token.check(), Some(CancelReason::Cancelled));
///
/// // An already-expired deadline trips on the first check.
/// let expired = CancelToken::expiring(std::time::Instant::now());
/// assert_eq!(expired.check(), Some(CancelReason::DeadlineExceeded));
/// ```
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; it only trips if [`CancelToken::cancel`]
    /// is called.
    pub fn new() -> CancelToken {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: None,
        }
    }

    /// A token armed with a deadline: it trips on the first check at or
    /// after `deadline` (there is no timer thread — deadlines are observed
    /// lazily at morsel boundaries).
    pub fn expiring(deadline: Instant) -> CancelToken {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
        }
    }

    /// Flips the flag. Idempotent; an explicit cancel wins over a deadline
    /// that passes later (the reported reason stays `Cancelled`).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Returns why the token tripped, or `None` while work may proceed.
    pub fn check(&self) -> Option<CancelReason> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(CancelReason::Cancelled);
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// True once the token tripped (cancelled or past its deadline).
    pub fn is_tripped(&self) -> bool {
        self.check().is_some()
    }
}

/// The lifecycle context of one in-flight query: its cancellation token and
/// the QoS class its pool tickets are queued under.
#[derive(Debug, Clone)]
pub struct JobControl {
    /// The query's cancellation/deadline token.
    pub token: Arc<CancelToken>,
    /// The class every ticket this query enqueues is scheduled under.
    pub class: QosClass,
}

thread_local! {
    static CURRENT: RefCell<Option<JobControl>> = const { RefCell::new(None) };
}

/// Runs `f` with `control` installed as the thread's current job control;
/// the previous control (if any) is restored afterwards, including on
/// unwind. The morsel scheduler reads it with [`current`], so everything
/// `f` fans out inherits the token and class without any signature change.
pub fn scope<R>(control: JobControl, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<JobControl>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|current| *current.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CURRENT.with(|current| current.borrow_mut().replace(control)));
    f()
}

/// The job control installed on this thread by the nearest [`scope`], if
/// any. Plain (unsubmitted) execution runs with none.
pub fn current() -> Option<JobControl> {
    CURRENT.with(|current| current.borrow().clone())
}

/// A cooperative cancellation point: if the current scope's token tripped,
/// unwinds with its [`CancelReason`] as payload (silently — no panic hook
/// runs); otherwise does nothing. Engines call this at phase boundaries
/// (after a join build, between staging and processing); the morsel
/// scheduler calls it between morsels. Outside a [`scope`] it is a no-op.
pub fn checkpoint() {
    let tripped = CURRENT.with(|current| {
        current
            .borrow()
            .as_ref()
            .and_then(|control| control.token.check())
    });
    if let Some(reason) = tripped {
        std::panic::resume_unwind(Box::new(reason));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    #[test]
    fn fresh_tokens_do_not_trip_and_cancel_is_sticky() {
        let token = CancelToken::new();
        assert!(!token.is_tripped());
        token.cancel();
        token.cancel();
        assert_eq!(token.check(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn deadlines_trip_lazily_and_explicit_cancel_wins() {
        let token = CancelToken::expiring(Instant::now() + Duration::from_secs(600));
        assert!(!token.is_tripped(), "future deadline must not trip");
        let expired = CancelToken::expiring(Instant::now());
        assert_eq!(expired.check(), Some(CancelReason::DeadlineExceeded));
        expired.cancel();
        assert_eq!(expired.check(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn checkpoint_is_a_noop_outside_a_scope() {
        checkpoint(); // must not unwind
        assert!(current().is_none());
    }

    #[test]
    fn checkpoint_unwinds_with_the_reason_inside_a_tripped_scope() {
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let control = JobControl {
            token,
            class: QosClass::Batch,
        };
        let result = catch_unwind(AssertUnwindSafe(|| scope(control, checkpoint)));
        let payload = result.expect_err("tripped scope must unwind");
        assert_eq!(
            *payload.downcast::<CancelReason>().expect("reason payload"),
            CancelReason::Cancelled
        );
        // The scope was restored on unwind: this thread has no control left.
        assert!(current().is_none());
        checkpoint(); // and checkpoints are no-ops again
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = JobControl {
            token: Arc::new(CancelToken::new()),
            class: QosClass::Interactive,
        };
        let inner = JobControl {
            token: Arc::new(CancelToken::new()),
            class: QosClass::Batch,
        };
        scope(outer, || {
            assert_eq!(current().unwrap().class, QosClass::Interactive);
            scope(inner, || {
                assert_eq!(current().unwrap().class, QosClass::Batch);
            });
            assert_eq!(current().unwrap().class, QosClass::Interactive);
        });
        assert!(current().is_none());
    }
}
