//! A compact calendar date.
//!
//! TPC-H date columns span 1992-01-01 .. 1998-12-31 and the benchmark
//! queries only ever compare, add intervals to, and group by dates. A date is
//! therefore stored as an `i32` day count since the Unix epoch, which is
//! `Copy`, 4 bytes wide and totally ordered — exactly what the generated
//! row-store code wants.

use std::fmt;

/// Days since 1970-01-01 (may be negative).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Date(i32);

/// Cumulative day counts at the start of each month for a non-leap year.
const MONTH_STARTS: [i32; 13] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_year(year: i32) -> i32 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

fn days_in_month(year: i32, month: u32) -> i32 {
    let base = MONTH_STARTS[month as usize] - MONTH_STARTS[month as usize - 1];
    if month == 2 && is_leap(year) {
        base + 1
    } else {
        base
    }
}

impl Date {
    /// Builds a date from a raw epoch-day count.
    #[inline]
    pub const fn from_epoch_days(days: i32) -> Self {
        Date(days)
    }

    /// Returns the raw epoch-day count.
    #[inline]
    pub const fn epoch_days(self) -> i32 {
        self.0
    }

    /// Builds a date from a civil year/month/day triple.
    ///
    /// # Panics
    /// Panics if the triple is not a valid calendar date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && (day as i32) <= days_in_month(year, month),
            "day out of range: {year}-{month:02}-{day:02}"
        );
        let mut days: i32 = 0;
        if year >= 1970 {
            for y in 1970..year {
                days += days_in_year(y);
            }
        } else {
            for y in year..1970 {
                days -= days_in_year(y);
            }
        }
        days += MONTH_STARTS[(month - 1) as usize];
        if month > 2 && is_leap(year) {
            days += 1;
        }
        days += day as i32 - 1;
        Date(days)
    }

    /// Decomposes into a civil (year, month, day) triple.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let mut days = self.0;
        let mut year = 1970;
        if days >= 0 {
            while days >= days_in_year(year) {
                days -= days_in_year(year);
                year += 1;
            }
        } else {
            while days < 0 {
                year -= 1;
                days += days_in_year(year);
            }
        }
        let mut month = 1;
        while days >= days_in_month(year, month) {
            days -= days_in_month(year, month);
            month += 1;
        }
        (year, month, days as u32 + 1)
    }

    /// Parses an ISO `YYYY-MM-DD` literal.
    pub fn parse(text: &str) -> Option<Date> {
        let mut parts = text.trim().splitn(3, '-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u32 = parts.next()?.parse().ok()?;
        let day: u32 = parts.next()?.parse().ok()?;
        if !(1..=12).contains(&month) {
            return None;
        }
        if day < 1 || day as i32 > days_in_month(year, month) {
            return None;
        }
        Some(Date::from_ymd(year, month, day))
    }

    /// Returns the date shifted by a whole number of days.
    #[inline]
    pub const fn add_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// Returns the calendar year. Convenient for TPC-H group-bys.
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({})", self)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).epoch_days(), 0);
    }

    #[test]
    fn known_dates_round_trip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1992, 1, 1),
            (1995, 3, 15),
            (1996, 2, 29),
            (1998, 12, 31),
            (2000, 2, 29),
            (1969, 12, 31),
            (1900, 3, 1),
        ] {
            let date = Date::from_ymd(y, m, d);
            assert_eq!(date.to_ymd(), (y, m, d), "round trip for {y}-{m}-{d}");
        }
    }

    #[test]
    fn ordering_follows_calendar() {
        assert!(Date::from_ymd(1995, 3, 15) < Date::from_ymd(1995, 3, 16));
        assert!(Date::from_ymd(1994, 12, 31) < Date::from_ymd(1995, 1, 1));
        assert!(Date::from_ymd(1969, 6, 1) < Date::from_ymd(1970, 1, 1));
    }

    #[test]
    fn parse_and_display_are_inverse() {
        let d = Date::parse("1998-09-02").unwrap();
        assert_eq!(d.to_string(), "1998-09-02");
        assert!(Date::parse("1998-13-02").is_none());
        assert!(Date::parse("1998-02-30").is_none());
        assert!(Date::parse("not-a-date").is_none());
    }

    #[test]
    fn add_days_crosses_month_and_year_boundaries() {
        let d = Date::from_ymd(1998, 12, 1);
        assert_eq!(d.add_days(31).to_string(), "1999-01-01");
        // TPC-H Q1: shipdate <= 1998-12-01 - 90 days
        assert_eq!(d.add_days(-90).to_string(), "1998-09-02");
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(1996));
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(!is_leap(1995));
    }

    #[test]
    fn year_extraction() {
        assert_eq!(Date::from_ymd(1997, 6, 30).year(), 1997);
    }
}
