//! A trace-driven last-level-cache simulator.
//!
//! Figure 14 of the paper compares the number of last-level (L3) cache
//! misses each execution strategy incurs on TPC-H Q1–Q3, measured with
//! hardware performance counters. This reproduction instead instruments the
//! engines (see [`mrq_common::trace::MemTracer`]) and replays their memory
//! accesses through a classic set-associative cache model with true-LRU
//! replacement.
//!
//! The default geometry matches the paper's evaluation machine (an Intel
//! i5-2415M: 3 MiB shared L3, 12-way, 64-byte lines). Absolute miss counts
//! will not match a real PMU — we only trace *data* accesses the engines
//! perform on query state, not code or allocator traffic — but the relative
//! ordering between strategies, which is what Figure 14 shows, is preserved:
//! strategies that chase scattered managed objects touch many more distinct
//! lines than strategies that stream flat buffers.

#![warn(missing_docs)]

use mrq_common::trace::{AccessKind, MemTracer};

pub mod hierarchy;
pub use hierarchy::{CacheHierarchy, HierarchyConfig, LevelStats};

/// Geometry of the simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// The last-level cache of the paper's evaluation machine (Intel
    /// i5-2415M): 3 MiB, 12-way, 64-byte lines.
    pub fn paper_llc() -> Self {
        CacheConfig {
            capacity_bytes: 3 * 1024 * 1024,
            ways: 12,
            line_bytes: 64,
        }
    }

    /// A small cache useful in tests (4 KiB, 4-way, 64-byte lines).
    pub fn tiny() -> Self {
        CacheConfig {
            capacity_bytes: 4 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::paper_llc()
    }
}

/// Per-[`AccessKind`] hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Line-granular accesses observed.
    pub accesses: u64,
    /// Misses among those accesses.
    pub misses: u64,
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total line-granular accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
    /// Breakdown by access kind, indexed in [`AccessKind`] declaration order
    /// (ManagedRead, ManagedWrite, NativeRead, NativeWrite, HashProbe).
    pub by_kind: [KindStats; 5],
}

impl CacheStats {
    /// Miss ratio over all accesses (0 when no accesses were recorded).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Stats for one access kind.
    pub fn kind(&self, kind: AccessKind) -> KindStats {
        self.by_kind[kind_slot(kind)]
    }
}

fn kind_slot(kind: AccessKind) -> usize {
    match kind {
        AccessKind::ManagedRead => 0,
        AccessKind::ManagedWrite => 1,
        AccessKind::NativeRead => 2,
        AccessKind::NativeWrite => 3,
        AccessKind::HashProbe => 4,
    }
}

/// One cache way: the tag stored and a logical timestamp for LRU.
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    last_used: u64,
    valid: bool,
}

/// A set-associative cache with true-LRU replacement, fed by
/// [`MemTracer::access`] events.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    sets: Vec<Way>,
    set_count: usize,
    tick: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates a simulator with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two line
    /// size, capacity not divisible by `ways * line_bytes`, or a set count
    /// that is not a power of two).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.ways > 0, "cache must have at least one way");
        assert!(
            config.line_bytes.is_power_of_two() && config.line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        assert!(
            config
                .capacity_bytes
                .is_multiple_of(config.ways * config.line_bytes),
            "capacity must be a whole number of sets"
        );
        let set_count = config.sets();
        assert!(
            set_count.is_power_of_two(),
            "set count must be a power of two"
        );
        CacheSim {
            config,
            sets: vec![
                Way {
                    tag: 0,
                    last_used: 0,
                    valid: false
                };
                set_count * config.ways
            ],
            set_count,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a simulator with the paper's LLC geometry.
    pub fn paper_llc() -> Self {
        Self::new(CacheConfig::paper_llc())
    }

    /// The geometry in use.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for way in &mut self.sets {
            way.valid = false;
        }
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Touches a single cache line (already divided by the line size) without
    /// updating statistics; returns `true` on a miss. Used by
    /// [`CacheHierarchy`] to drive multiple levels from one access stream.
    pub fn touch_line(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let set_idx = (line_addr as usize) & (self.set_count - 1);
        let tag = line_addr >> self.set_count.trailing_zeros();
        let base = set_idx * self.config.ways;
        let ways = &mut self.sets[base..base + self.config.ways];

        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_used = self.tick;
            return false;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_used } else { 0 })
            .expect("cache sets are never empty");
        victim.valid = true;
        victim.tag = tag;
        victim.last_used = self.tick;
        true
    }
}

impl MemTracer for CacheSim {
    fn access(&mut self, kind: AccessKind, addr: u64, len: u32) {
        let line = self.config.line_bytes as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        for line_addr in first..=last {
            let miss = self.touch_line(line_addr);
            self.stats.accesses += 1;
            self.stats.by_kind[kind_slot(kind)].accesses += 1;
            if miss {
                self.stats.misses += 1;
                self.stats.by_kind[kind_slot(kind)].misses += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sanity() {
        let llc = CacheConfig::paper_llc();
        assert_eq!(llc.sets(), 4096);
        assert_eq!(CacheConfig::tiny().sets(), 16);
    }

    #[test]
    fn repeated_access_to_same_line_hits() {
        let mut sim = CacheSim::new(CacheConfig::tiny());
        sim.access(AccessKind::NativeRead, 0x1000, 8);
        sim.access(AccessKind::NativeRead, 0x1008, 8);
        sim.access(AccessKind::NativeRead, 0x1030, 8);
        let stats = sim.stats();
        assert_eq!(stats.accesses, 3);
        assert_eq!(stats.misses, 1, "only the first touch of the line misses");
    }

    #[test]
    fn access_spanning_lines_counts_both() {
        let mut sim = CacheSim::new(CacheConfig::tiny());
        sim.access(AccessKind::NativeRead, 0x103C, 16); // crosses 0x1040
        assert_eq!(sim.stats().accesses, 2);
        assert_eq!(sim.stats().misses, 2);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = CacheConfig::tiny(); // 4 KiB
        let mut sim = CacheSim::new(cfg);
        // Stream 64 KiB twice: far larger than the cache, so the second pass
        // misses again on (nearly) every line.
        for pass in 0..2u64 {
            for i in 0..1024u64 {
                sim.access(AccessKind::NativeRead, i * 64, 8);
            }
            let misses = sim.stats().misses;
            assert!(
                misses >= 1024 * (pass + 1),
                "pass {pass}: expected ≥ {} misses, got {misses}",
                1024 * (pass + 1)
            );
        }
    }

    #[test]
    fn working_set_smaller_than_cache_hits_on_second_pass() {
        let cfg = CacheConfig::tiny(); // 4 KiB = 64 lines
        let mut sim = CacheSim::new(cfg);
        for _ in 0..2 {
            for i in 0..32u64 {
                sim.access(AccessKind::NativeRead, i * 64, 8);
            }
        }
        let stats = sim.stats();
        assert_eq!(stats.misses, 32, "second pass must be all hits");
        assert_eq!(stats.accesses, 64);
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        // 1 set, 2 ways, 64-byte lines.
        let cfg = CacheConfig {
            capacity_bytes: 128,
            ways: 2,
            line_bytes: 64,
        };
        let mut sim = CacheSim::new(cfg);
        let (a, b, c) = (0u64, 64u64, 128u64);
        sim.access(AccessKind::NativeRead, a, 8); // miss
        sim.access(AccessKind::NativeRead, b, 8); // miss
        sim.access(AccessKind::NativeRead, a, 8); // hit, refreshes a
        sim.access(AccessKind::NativeRead, c, 8); // miss, evicts b
        sim.access(AccessKind::NativeRead, a, 8); // hit
        sim.access(AccessKind::NativeRead, b, 8); // miss (was evicted)
        assert_eq!(sim.stats().misses, 4);
        assert_eq!(sim.stats().accesses, 6);
    }

    #[test]
    fn per_kind_breakdown_is_tracked() {
        let mut sim = CacheSim::new(CacheConfig::tiny());
        sim.access(AccessKind::ManagedRead, 0, 8);
        sim.access(AccessKind::HashProbe, 4096, 8);
        sim.access(AccessKind::HashProbe, 4096, 8);
        assert_eq!(sim.stats().kind(AccessKind::ManagedRead).misses, 1);
        assert_eq!(sim.stats().kind(AccessKind::HashProbe).accesses, 2);
        assert_eq!(sim.stats().kind(AccessKind::HashProbe).misses, 1);
        assert!(sim.stats().miss_ratio() > 0.0);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut sim = CacheSim::new(CacheConfig::tiny());
        sim.access(AccessKind::NativeRead, 0, 8);
        sim.reset();
        assert_eq!(sim.stats().accesses, 0);
        sim.access(AccessKind::NativeRead, 0, 8);
        assert_eq!(sim.stats().misses, 1, "line must be cold again after reset");
    }

    #[test]
    fn scattered_accesses_miss_more_than_sequential() {
        // The property Figure 14 rests on: a scattered object graph touches
        // more lines than a flat sequential buffer holding the same payload.
        let mut seq = CacheSim::new(CacheConfig::tiny());
        let mut scattered = CacheSim::new(CacheConfig::tiny());
        for i in 0..512u64 {
            seq.access(AccessKind::NativeRead, i * 8, 8); // packed
            scattered.access(AccessKind::ManagedRead, i * 192, 8); // one line per record
        }
        assert!(scattered.stats().misses > 4 * seq.stats().misses);
    }

    #[test]
    fn zero_length_access_still_touches_one_line() {
        let mut sim = CacheSim::new(CacheConfig::tiny());
        sim.access(AccessKind::NativeRead, 100, 0);
        assert_eq!(sim.stats().accesses, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn degenerate_geometry_is_rejected() {
        let _ = CacheSim::new(CacheConfig {
            capacity_bytes: 150,
            ways: 1,
            line_bytes: 50,
        });
    }
}
