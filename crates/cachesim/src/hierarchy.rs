//! A multi-level cache hierarchy model.
//!
//! Figure 14 of the paper reports only last-level misses, but the discussion
//! of why the compiled strategies win (compact staged layouts, hash tables
//! that stay cache-resident) is really about the whole hierarchy. The
//! [`CacheHierarchy`] threads every traced access through an L1 → L2 → LLC
//! chain so the benchmark harness can additionally report where in the
//! hierarchy each strategy's working set stops fitting.
//!
//! The model is a straightforward lookup hierarchy: every access probes L1;
//! only L1 misses probe L2; only L2 misses probe the LLC. Each level is its
//! own set-associative LRU array (see [`CacheSim`]). Inclusion/exclusion
//! policies and coherence are out of scope — they do not affect the
//! single-threaded read-mostly traces the engines produce.

use crate::{CacheConfig, CacheSim};
use mrq_common::trace::{AccessKind, MemTracer};

/// Geometries of the three simulated levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// First-level data cache.
    pub l1: CacheConfig,
    /// Second-level cache.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
}

impl HierarchyConfig {
    /// The cache hierarchy of the paper's evaluation machine (Intel
    /// i5-2415M): 32 KiB 8-way L1D, 256 KiB 8-way L2, 3 MiB 12-way shared L3,
    /// 64-byte lines throughout.
    pub fn paper_machine() -> Self {
        HierarchyConfig {
            l1: CacheConfig {
                capacity_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                capacity_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            llc: CacheConfig::paper_llc(),
        }
    }

    /// A tiny three-level hierarchy for tests (256 B / 1 KiB / 4 KiB).
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1: CacheConfig {
                capacity_bytes: 256,
                ways: 2,
                line_bytes: 64,
            },
            l2: CacheConfig {
                capacity_bytes: 1024,
                ways: 4,
                line_bytes: 64,
            },
            llc: CacheConfig::tiny(),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper_machine()
    }
}

/// Per-level access/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Line-granular accesses that reached this level.
    pub accesses: u64,
    /// Misses at this level.
    pub misses: u64,
}

impl LevelStats {
    /// Miss ratio at this level (0 for no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A three-level lookup hierarchy fed by [`MemTracer::access`] events.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: CacheSim,
    l2: CacheSim,
    llc: CacheSim,
    line_bytes: u64,
    stats: [LevelStats; 3],
    by_kind_llc_misses: [u64; 5],
}

impl CacheHierarchy {
    /// Creates a hierarchy with the given geometries.
    ///
    /// # Panics
    /// Panics if the levels do not share one line size (mixed line sizes
    /// would make the level-to-level hand-off ambiguous) or any individual
    /// geometry is degenerate.
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(
            config.l1.line_bytes == config.l2.line_bytes
                && config.l2.line_bytes == config.llc.line_bytes,
            "all levels must share one line size"
        );
        CacheHierarchy {
            line_bytes: config.l1.line_bytes as u64,
            l1: CacheSim::new(config.l1),
            l2: CacheSim::new(config.l2),
            llc: CacheSim::new(config.llc),
            stats: [LevelStats::default(); 3],
            by_kind_llc_misses: [0; 5],
        }
    }

    /// A hierarchy with the paper machine's geometry.
    pub fn paper_machine() -> Self {
        Self::new(HierarchyConfig::paper_machine())
    }

    /// L1 counters.
    pub fn l1(&self) -> LevelStats {
        self.stats[0]
    }

    /// L2 counters.
    pub fn l2(&self) -> LevelStats {
        self.stats[1]
    }

    /// Last-level counters (what Figure 14 reports).
    pub fn llc(&self) -> LevelStats {
        self.stats[2]
    }

    /// LLC misses attributed to one access kind.
    pub fn llc_misses_of(&self, kind: AccessKind) -> u64 {
        self.by_kind_llc_misses[kind_slot(kind)]
    }

    /// Clears contents and statistics of every level.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.llc.reset();
        self.stats = [LevelStats::default(); 3];
        self.by_kind_llc_misses = [0; 5];
    }
}

fn kind_slot(kind: AccessKind) -> usize {
    match kind {
        AccessKind::ManagedRead => 0,
        AccessKind::ManagedWrite => 1,
        AccessKind::NativeRead => 2,
        AccessKind::NativeWrite => 3,
        AccessKind::HashProbe => 4,
    }
}

impl MemTracer for CacheHierarchy {
    fn access(&mut self, kind: AccessKind, addr: u64, len: u32) {
        let first = addr / self.line_bytes;
        let last = (addr + len.max(1) as u64 - 1) / self.line_bytes;
        for line in first..=last {
            self.stats[0].accesses += 1;
            if !self.l1.touch_line(line) {
                continue;
            }
            self.stats[0].misses += 1;
            self.stats[1].accesses += 1;
            if !self.l2.touch_line(line) {
                continue;
            }
            self.stats[1].misses += 1;
            self.stats[2].accesses += 1;
            if self.llc.touch_line(line) {
                self.stats[2].misses += 1;
                self.by_kind_llc_misses[kind_slot(kind)] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_hits_never_reach_lower_levels() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        for _ in 0..100 {
            h.access(AccessKind::NativeRead, 0x40, 8);
        }
        assert_eq!(h.l1().accesses, 100);
        assert_eq!(h.l1().misses, 1);
        assert_eq!(h.l2().accesses, 1);
        assert_eq!(h.llc().accesses, 1);
        assert_eq!(h.llc().misses, 1);
    }

    #[test]
    fn working_set_between_l1_and_l2_hits_in_l2() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        // 512 bytes = 8 lines: larger than the 256-byte L1, smaller than the
        // 1 KiB L2.
        for _ in 0..4 {
            for line in 0..8u64 {
                h.access(AccessKind::NativeRead, line * 64, 8);
            }
        }
        assert!(h.l1().misses > 8, "L1 thrashes");
        assert_eq!(h.l2().misses, 8, "L2 holds the working set after warm-up");
        assert_eq!(h.llc().misses, 8);
    }

    #[test]
    fn working_set_larger_than_llc_misses_everywhere() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        // 16 KiB streamed twice: larger than the 4 KiB LLC.
        for _ in 0..2 {
            for line in 0..256u64 {
                h.access(AccessKind::ManagedRead, line * 64, 8);
            }
        }
        assert!(h.llc().misses >= 500, "both passes miss in the LLC");
        assert_eq!(h.llc_misses_of(AccessKind::ManagedRead), h.llc().misses);
        assert_eq!(h.llc_misses_of(AccessKind::HashProbe), 0);
    }

    #[test]
    fn miss_counts_are_monotone_down_the_hierarchy() {
        let mut h = CacheHierarchy::paper_machine();
        let mut pseudo = 0x12345u64;
        for _ in 0..20_000 {
            pseudo = pseudo.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.access(AccessKind::HashProbe, pseudo % (8 << 20), 8);
        }
        assert!(h.l1().misses >= h.l2().misses);
        assert!(h.l2().misses >= h.llc().misses);
        assert_eq!(h.l2().accesses, h.l1().misses);
        assert_eq!(h.llc().accesses, h.l2().misses);
        assert!(h.l1().miss_ratio() > 0.0);
    }

    #[test]
    fn reset_clears_every_level() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        h.access(AccessKind::NativeRead, 0, 8);
        h.reset();
        assert_eq!(h.l1().accesses, 0);
        assert_eq!(h.llc().misses, 0);
        h.access(AccessKind::NativeRead, 0, 8);
        assert_eq!(h.llc().misses, 1, "contents are cold again after reset");
    }

    #[test]
    #[should_panic(expected = "share one line size")]
    fn mixed_line_sizes_are_rejected() {
        let mut config = HierarchyConfig::tiny();
        config.l2.line_bytes = 128;
        let _ = CacheHierarchy::new(config);
    }
}
