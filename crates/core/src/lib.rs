//! The query provider — the paper's primary contribution, as a library.
//!
//! An application keeps its data in ordinary managed collections (lists of
//! objects in the [`mrq_mheap::Heap`]) and/or in native arrays of structs
//! ([`mrq_engine_native::RowStore`]). It then builds LINQ-style query
//! statements with [`mrq_expr::Query`], binds its collections to the query's
//! sources through a [`Provider`], and executes them with the strategy of its
//! choice:
//!
//! * [`Strategy::LinqToObjects`] — the baseline enumerable pipeline (§2),
//! * [`Strategy::CompiledCSharp`] — fused managed execution (§4),
//! * [`Strategy::CompiledNative`] — fused execution over native row stores
//!   (§5; requires native bindings),
//! * [`Strategy::Hybrid`] — managed filtering/staging plus native processing
//!   (§6), with full or buffered materialisation and Max/Min transfer.
//!
//! The provider canonicalises each statement (constant folding and parameter
//! extraction), consults the compiled-query cache so that repeated query
//! patterns skip code generation (§3), lowers the tree to a fused
//! [`QuerySpec`], emits the C#/C source that the paper's system would
//! compile (available through [`Provider::explain`]) and dispatches to the
//! chosen engine. Execution is deferred: [`Provider::query`] returns a
//! [`DeferredQuery`] that does no work until its results are consumed.
//!
//! # Concurrent serving
//!
//! A `Provider` is [`Sync`]: once its sources are bound, any number of
//! client threads may call [`Provider::execute`] through a shared reference
//! simultaneously — the compiled-query cache, result-recycling cache and
//! statistics are interior-mutable behind locks, and all parallel execution
//! runs on the process-wide persistent worker pool
//! ([`mrq_common::pool::WorkerPool`]), never on per-query threads. For
//! fire-and-forget submission, [`Provider::submit`] queues the whole query
//! onto that pool and returns a [`QueryHandle`] the client can poll or
//! join; pool scheduling is round-robin at morsel granularity, so a
//! long-running scan cannot starve short queries submitted after it. See
//! `docs/CONCURRENCY.md` for the full model.
//!
//! # Async serving
//!
//! [`Provider::submit_async`] returns the same submission as a
//! [`QueryFuture`] — a plain, executor-agnostic [`std::future::Future`]
//! whose waker hangs off the query's completion latch, so one driver
//! thread can multiplex thousands of in-flight queries without blocking a
//! thread per query. Bindings can be borrowed (futures confined to the
//! binding scope) or shared (`Arc`-backed, via
//! [`Provider::over_shared_heap`] / [`Provider::bind_native_shared`] /
//! [`Provider::bind_values_shared`]); a fully shared provider seals into an
//! [`OwnedProvider`] whose futures are `'static` and escape the scope
//! entirely. See `docs/SERVING.md` for the async model and
//! `examples/async_server.rs` for a dependency-free mini-executor driving
//! it end to end.
//!
//! [`QuerySpec`]: mrq_codegen::spec::QuerySpec

#![warn(missing_docs)]

use mrq_codegen::emit::{emit_source, Backend, CompileCostModel};
use mrq_codegen::exec::{QueryOutput, TableAccess, ValueTable};
use mrq_codegen::spec::{lower, Catalog, QuerySpec};
use mrq_common::cancel::{self, CancelReason, CancelToken, JobControl};
use mrq_common::pool::WorkerPool;
use mrq_common::stream::{StreamReceiver, StreamSink};
use mrq_common::{fault, panic_message, AdmissionGate};
use mrq_common::{MrqError, Result, Schema, Value, WorkStats};
use mrq_engine_csharp::HeapTable;
use mrq_engine_hybrid::HybridConfig;
use mrq_engine_native::RowStore;
use mrq_expr::optimize::{optimize, OptimizerConfig, Rewrite};
use mrq_expr::{canonicalize, CanonicalQuery, Expr, QueryCache, SourceId};
use mrq_mheap::{Heap, ListId};
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use crate::future::QueryState;

mod future;
mod owned;
mod prepared;
pub mod recycle;
pub mod stream;

pub use future::QueryFuture;
pub use owned::OwnedProvider;
pub use prepared::{OwnedPreparedQuery, PlanCache, PlanKey, PreparedQuery};
pub use stream::QueryStream;

/// The row-batch payload type [`QueryStream`] yields, re-exported from
/// [`mrq_common::stream`].
pub use mrq_common::stream::RowBatch;

/// Sizing knobs and counter snapshots of the shared [`PlanCache`],
/// re-exported from [`mrq_common::plancache`] under serving-layer names.
pub use mrq_common::plancache::{CacheConfig as PlanCacheConfig, CacheStats as PlanCacheStats};

/// The error type the serving layer resolves handles to — the same
/// [`mrq_common::MrqError`] every API in the workspace returns, re-exported
/// under the name its lifecycle variants ([`QueryError::Cancelled`],
/// [`QueryError::DeadlineExceeded`]) are discussed by.
pub use mrq_common::MrqError as QueryError;
pub use mrq_common::{AdmissionConfig, AdmissionStats};
pub use mrq_common::{QosClass, QosWeights};
pub use mrq_engine_hybrid::{Materialization, TransferPolicy};
pub use mrq_engine_native::ParallelConfig;
pub use mrq_expr::optimize::OptimizerConfig as QueryOptimizerConfig;
pub use recycle::{RecycleStats, ResultCache, ResultKey};

/// Which execution strategy to use for a statement.
///
/// `Eq`/`Hash` cover the strategy's full configuration (including any
/// embedded [`ParallelConfig`]/[`HybridConfig`]), so a strategy can key
/// cached plans: the same statement prepared under two strategies occupies
/// two [`PlanCache`] entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The interpreted enumerable pipeline (baseline).
    LinqToObjects,
    /// Fused compiled execution over managed objects.
    CompiledCSharp,
    /// Fused compiled execution over native row stores.
    CompiledNative,
    /// Fused execution over native row stores, partitioned across worker
    /// threads (the parallel-execution extension of §9).
    CompiledNativeParallel(ParallelConfig),
    /// Managed staging plus native processing.
    Hybrid(HybridConfig),
}

/// Per-query options for every submission front end —
/// [`Provider::submit`] / [`Provider::submit_async`] /
/// [`Provider::submit_stream`] and their prepared and owned mirrors: an
/// optional deadline, the QoS class the query's pool tickets are scheduled
/// under, and the streamed-batch size.
///
/// # Defaults (documented here, nowhere else)
///
/// [`QueryOptions::default`] (= [`QueryOptions::new`]) is:
///
/// * `deadline: None` — no wall-clock budget,
/// * `class: QosClass::Interactive` — the highest-weight serving class,
/// * `stream_batch_rows:` [`mrq_common::stream::default_batch_rows`] — the
///   `MRQ_STREAM_BATCH_ROWS` environment override if set to a positive
///   integer, else [`mrq_common::stream::DEFAULT_BATCH_ROWS`] (4096, the
///   cancel-checkpoint cadence). Only streamed submissions consult it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOptions {
    /// Wall-clock budget measured from submission — queue time counts
    /// against it. The deadline is *armed* at submission (no timer
    /// thread) and observed lazily at morsel boundaries; a budget of zero
    /// always resolves the handle to [`QueryError::DeadlineExceeded`]
    /// before a single morsel runs.
    pub deadline: Option<Duration>,
    /// Scheduling class for the pool's weighted per-class queues (default
    /// 8:2:1 Interactive:Batch:Maintenance grant weights, runtime-tunable
    /// via [`mrq_common::pool::WorkerPool::set_weights`]; see
    /// `docs/CONCURRENCY.md`).
    pub class: QosClass,
    /// Rows per batch in a [`Provider::submit_stream`] channel (clamped to
    /// at least 1). Smaller batches lower time-to-first-row and tighten
    /// backpressure; larger batches amortize channel hand-offs. Ignored by
    /// non-streamed submissions.
    pub stream_batch_rows: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            deadline: None,
            class: QosClass::default(),
            stream_batch_rows: mrq_common::stream::default_batch_rows(),
        }
    }
}

impl QueryOptions {
    /// The defaults — see the [struct docs](QueryOptions#defaults-documented-here-nowhere-else).
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Options for throughput work: [`QosClass::Batch`], no deadline.
    pub fn batch() -> Self {
        QueryOptions::new().with_class(QosClass::Batch)
    }

    /// Options for background housekeeping: [`QosClass::Maintenance`] — the
    /// class below Batch, granted only what the serving classes leave over
    /// (but never starved) — with no deadline.
    pub fn maintenance() -> Self {
        QueryOptions::new().with_class(QosClass::Maintenance)
    }

    /// The same options with a wall-clock budget from submission.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// The same options with an explicit scheduling class.
    pub fn with_class(mut self, class: QosClass) -> Self {
        self.class = class;
        self
    }

    /// The same options with an explicit streamed-batch size (rows per
    /// [`QueryStream`] batch; values below 1 are clamped to 1 at channel
    /// creation).
    pub fn with_stream_batch_rows(mut self, rows: usize) -> Self {
        self.stream_batch_rows = rows;
        self
    }
}

/// A borrowed-or-shared reference to bound data. Borrowed bindings pin the
/// provider (and everything submitted through it) to the owning stack
/// frame; shared (`Arc`) bindings are what let a fully-shared provider
/// become `'static` and seal into an [`OwnedProvider`].
enum SourceRef<'a, T> {
    Borrowed(&'a T),
    Shared(Arc<T>),
}

impl<T> SourceRef<'_, T> {
    fn get(&self) -> &T {
        match self {
            SourceRef::Borrowed(t) => t,
            SourceRef::Shared(t) => t,
        }
    }
}

/// How a source id is bound to data.
enum Binding<'a> {
    Managed { list: ListId, schema: Schema },
    Native(SourceRef<'a, RowStore>),
    Values(SourceRef<'a, ValueTable>),
}

/// One unit of submitted work: an ad-hoc statement (compiled — or pattern-
/// cache-fetched — on the pool worker) or an already-prepared plan with its
/// parameters resolved at submission, which the worker only executes.
enum Job {
    Statement(Expr),
    Prepared {
        shape_hash: u64,
        plan: Arc<CompiledQuery>,
        params: Vec<Value>,
    },
}

/// The compiled artefact cached per query pattern.
pub struct CompiledQuery {
    /// The fused query description.
    pub spec: QuerySpec,
    /// Generated managed source (what the §4 backend would compile).
    pub csharp_source: String,
    /// Generated native source (what the §5/§6 backend would compile).
    pub c_source: String,
    /// Heuristic rewrites applied before lowering (§2.3).
    pub rewrites: Vec<Rewrite>,
    /// Measured lowering + emission time for this pattern.
    pub generation_time: Duration,
}

/// Aggregated provider statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProviderStats {
    /// Query-cache hits.
    pub cache_hits: u64,
    /// Query-cache misses (patterns that had to be compiled).
    pub cache_misses: u64,
    /// Result-recycling counters (all zero unless recycling is enabled).
    pub recycling: RecycleStats,
}

/// Binds sources to data and executes query statements.
pub struct Provider<'a> {
    heap: Option<SourceRef<'a, Heap>>,
    bindings: Vec<(SourceId, Binding<'a>)>,
    cache: QueryCache<CompiledQuery>,
    /// The sharded LRU the prepared-query path keys plans by (expression
    /// structure + strategy + source schemas). `Arc`-shared so several
    /// providers can serve one cache ([`Provider::set_plan_cache`]).
    plan_cache: Arc<PlanCache>,
    cost_model: CompileCostModel,
    optimizer: OptimizerConfig,
    recycling: bool,
    parallel: ParallelConfig,
    results: Mutex<ResultCache>,
    epoch: std::sync::atomic::AtomicU64,
    /// Submitted queries still running on the pool; `Drop` waits for zero,
    /// the second line of defence behind `QueryHandle`'s own drop-wait.
    in_flight: Arc<InFlight>,
    /// The admission gate every submission path consults *before* arming,
    /// compiling, or touching any cache: over the configured limits a
    /// submission is shed with [`QueryError::Overloaded`] instead of
    /// spawned. Unbounded by default (see [`Provider::set_admission`]).
    admission: AdmissionGate,
    /// Deterministic work accounting: the stats of the most recent execution
    /// plus the running total across every execution this provider served
    /// (see [`Provider::last_work_stats`]).
    work: Mutex<WorkTally>,
}

/// Last-execution + cumulative [`WorkStats`] behind the provider's lock.
#[derive(Debug, Clone, Copy, Default)]
struct WorkTally {
    last: WorkStats,
    cumulative: WorkStats,
}

/// Counter + latch for submitted queries in flight on the pool.
struct InFlight {
    count: StdMutex<usize>,
    zero: Condvar,
}

impl InFlight {
    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.count.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn increment(&self) {
        *self.lock() += 1;
    }

    fn decrement(&self) {
        let mut count = self.lock();
        *count -= 1;
        if *count == 0 {
            drop(count);
            self.zero.notify_all();
        }
    }

    fn wait_for_zero(&self) {
        let mut count = self.lock();
        while *count > 0 {
            count = self.zero.wait(count).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for Provider<'_> {
    /// Blocks until every submitted query finished, so a provider can never
    /// be torn down under a pool task that still references it — even if a
    /// [`QueryHandle`] was leaked without running its own drop-wait.
    fn drop(&mut self) {
        self.in_flight.wait_for_zero();
    }
}

impl<'a> Provider<'a> {
    /// Creates a provider without managed bindings (native-only use).
    pub fn new() -> Self {
        Provider {
            heap: None,
            bindings: Vec::new(),
            cache: QueryCache::new(),
            plan_cache: Arc::new(PlanCache::from_env()),
            cost_model: CompileCostModel::default(),
            optimizer: OptimizerConfig::default(),
            recycling: false,
            parallel: ParallelConfig::sequential(),
            results: Mutex::new(ResultCache::new()),
            epoch: std::sync::atomic::AtomicU64::new(0),
            in_flight: Arc::new(InFlight {
                count: StdMutex::new(0),
                zero: Condvar::new(),
            }),
            admission: AdmissionGate::default(),
            work: Mutex::new(WorkTally::default()),
        }
    }

    /// Sets the provider-wide degree of parallelism applied by the compiled
    /// strategies (§9 parallel-execution extension): `CompiledCSharp`,
    /// `CompiledNative` and `Hybrid` split their probe-side scan **and**
    /// their join hash-table builds into morsels across this many workers.
    /// The config also carries the scheduler knobs —
    /// [`ParallelConfig::morsel_rows`] (rows per work-stolen morsel) and
    /// [`ParallelConfig::stealing`] (shared-cursor dispatch vs static
    /// ranges) — which apply to every engine the provider dispatches to. A
    /// [`Strategy`] that carries its own [`ParallelConfig`]
    /// (`CompiledNativeParallel`, or `Hybrid` with a non-sequential
    /// [`HybridConfig::parallel`]) overrides this default. `LinqToObjects`
    /// always runs single-threaded — it reproduces the paper's baseline
    /// enumerable pipeline exactly.
    ///
    /// The default is [`ParallelConfig::sequential`], which matches the
    /// single-threaded seed engines bit-for-bit.
    ///
    /// Workers come from the process-wide persistent pool
    /// ([`mrq_common::pool::WorkerPool::global`]); raising `threads` grows
    /// the pool on first use rather than spawning threads per query.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrq_core::{ParallelConfig, Provider};
    ///
    /// let mut provider = Provider::new();
    /// // Default: sequential — bit-identical to the single-threaded seed.
    /// assert!(provider.parallelism().is_sequential());
    ///
    /// // Opt in to 8-way morsel parallelism with 16k-row stolen morsels.
    /// provider.set_parallelism(
    ///     ParallelConfig::with_threads(8).with_morsel_rows(16 * 1024),
    /// );
    /// assert_eq!(provider.parallelism().threads, 8);
    /// ```
    pub fn set_parallelism(&mut self, config: ParallelConfig) -> &mut Self {
        self.parallel = config;
        self
    }

    /// The provider-wide degree of parallelism.
    pub fn parallelism(&self) -> ParallelConfig {
        self.parallel
    }

    /// Bounds concurrent submissions with an [`AdmissionConfig`]: once the
    /// limit for a QoS class is reached, further `submit`/`submit_async`/
    /// `submit_stream` calls (and their prepared/owned counterparts) of
    /// that class resolve immediately to [`QueryError::Overloaded`] — no
    /// task is spawned, nothing is compiled, and no plan-cache traffic
    /// happens for the shed statement. Shedding is QoS-aware: Maintenance
    /// sheds first, then Batch, while Interactive keeps a reserved share
    /// of the budget (see `mrq_common::admission` for the exact
    /// arithmetic).
    ///
    /// The default is [`AdmissionConfig::from_env`] — unbounded unless
    /// `MRQ_MAX_IN_FLIGHT` / `MRQ_MAX_QUEUE_DEPTH` are set. Blocking
    /// [`Provider::execute`] calls are not gated; the gate protects the
    /// pool-backed submission paths a server exposes.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrq_core::{AdmissionConfig, Provider};
    ///
    /// let mut provider = Provider::new();
    /// provider.set_admission(AdmissionConfig::bounded(64, 16));
    /// assert_eq!(provider.admission().total_slots(), 80);
    /// ```
    pub fn set_admission(&mut self, config: AdmissionConfig) -> &mut Self {
        self.admission.set_config(config);
        self
    }

    /// The admission limits currently enforced.
    pub fn admission(&self) -> AdmissionConfig {
        self.admission.config()
    }

    /// Admission accounting: submissions admitted, submissions shed with
    /// [`QueryError::Overloaded`], and the peak/current in-flight counts.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Sets the heuristic-rewrite configuration applied before lowering
    /// (selection push-down, predicate reordering; §2.3). The default applies
    /// every rewrite; pass [`OptimizerConfig::disabled`] to evaluate operator
    /// chains exactly as written, as LINQ-to-objects does.
    pub fn set_optimizer(&mut self, config: OptimizerConfig) -> &mut Self {
        self.optimizer = config;
        self
    }

    /// The current heuristic-rewrite configuration.
    pub fn optimizer(&self) -> OptimizerConfig {
        self.optimizer
    }

    /// Enables or disables query-result recycling (§9 / \[15\]): repeated
    /// executions of the same statement with the same parameters over
    /// unchanged collections return the cached result without re-running the
    /// query. Applications that mutate objects in place must call
    /// [`Provider::invalidate_results`] after doing so.
    pub fn set_result_recycling(&mut self, enabled: bool) -> &mut Self {
        self.recycling = enabled;
        self
    }

    /// Drops every recycled result (call after mutating bound data in place).
    pub fn invalidate_results(&self) {
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.results.lock().clear();
    }

    /// Replaces the plan cache backing [`Provider::prepare`]. The default is
    /// a private cache sized from the environment
    /// ([`PlanCacheConfig::from_env`]: `MRQ_PLAN_CACHE_SHARDS` ×
    /// `MRQ_PLAN_CACHE_CAP`); pass a shared `Arc` to let several providers —
    /// say, one per schema tenant — serve one cache, or a
    /// [`PlanCacheConfig::single_shard`] cache for deterministic LRU order.
    pub fn set_plan_cache(&mut self, cache: Arc<PlanCache>) -> &mut Self {
        self.plan_cache = cache;
        self
    }

    /// The plan cache backing [`Provider::prepare`].
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// Snapshot of the plan cache's hit/miss/eviction counters and entry
    /// count.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Drops every compiled artefact — both the pattern cache behind
    /// [`Provider::execute`] and the plan cache behind [`Provider::prepare`]
    /// (counters are preserved; plans still held by a [`PreparedQuery`]
    /// stay valid). This is the compile-every-time baseline the
    /// amortization benchmarks measure against.
    pub fn clear_compiled(&self) {
        self.cache.clear();
        self.plan_cache.clear();
    }

    /// Creates a provider over a managed heap.
    pub fn over_heap(heap: &'a Heap) -> Self {
        let mut provider = Provider::new();
        provider.heap = Some(SourceRef::Borrowed(heap));
        provider
    }

    /// Creates a provider over a *shared* managed heap: the `'static`
    /// counterpart of [`Provider::over_heap`], for providers that will be
    /// sealed into an [`OwnedProvider`]. The provider keeps the `Arc`
    /// alive; so does every in-flight owned submission.
    pub fn over_shared_heap(heap: Arc<Heap>) -> Provider<'static> {
        let mut provider = Provider::new();
        provider.heap = Some(SourceRef::Shared(heap));
        provider
    }

    /// Binds a source id to a managed list (the `QList<T>` wrapper of §3).
    pub fn bind_managed(&mut self, source: SourceId, list: ListId, schema: Schema) -> &mut Self {
        self.bindings
            .push((source, Binding::Managed { list, schema }));
        self
    }

    /// Binds a source id to a native row store (the array-of-structs case of
    /// §5).
    pub fn bind_native(&mut self, source: SourceId, store: &'a RowStore) -> &mut Self {
        self.bindings
            .push((source, Binding::Native(SourceRef::Borrowed(store))));
        self
    }

    /// Binds a source id to a *shared* native row store. Unlike
    /// [`Provider::bind_native`], the binding does not borrow: a provider
    /// whose bindings are all shared (or managed) is `'static` and can seal
    /// into an [`OwnedProvider`] whose futures escape the binding scope.
    pub fn bind_native_shared(&mut self, source: SourceId, store: Arc<RowStore>) -> &mut Self {
        self.bindings
            .push((source, Binding::Native(SourceRef::Shared(store))));
        self
    }

    /// Binds a source id to a materialised value table (used for multi-step
    /// queries such as the decorrelated Q2 inner result).
    pub fn bind_values(&mut self, source: SourceId, table: &'a ValueTable) -> &mut Self {
        self.bindings
            .push((source, Binding::Values(SourceRef::Borrowed(table))));
        self
    }

    /// Binds a source id to a *shared* materialised value table (the
    /// `'static` counterpart of [`Provider::bind_values`]; see
    /// [`Provider::bind_native_shared`]).
    pub fn bind_values_shared(&mut self, source: SourceId, table: Arc<ValueTable>) -> &mut Self {
        self.bindings
            .push((source, Binding::Values(SourceRef::Shared(table))));
        self
    }

    /// The bound managed heap, borrowed or shared.
    fn heap(&self) -> Option<&Heap> {
        self.heap.as_ref().map(SourceRef::get)
    }

    fn binding(&self, source: SourceId) -> Result<&Binding<'a>> {
        self.bindings
            .iter()
            .find(|(id, _)| *id == source)
            .map(|(_, b)| b)
            .ok_or_else(|| MrqError::Codegen(format!("source {source:?} is not bound")))
    }

    fn schema_of(&self, source: SourceId) -> Option<Schema> {
        match self.binding(source).ok()? {
            Binding::Managed { schema, .. } => Some(schema.clone()),
            Binding::Native(store) => Some(store.get().schema().clone()),
            Binding::Values(table) => Some(table.get().schema().clone()),
        }
    }

    /// Compiles (or fetches from the cache) the artefact for a statement:
    /// heuristic rewrites, canonicalisation, cache lookup, lowering and
    /// source emission.
    pub fn compile(&self, expr: Expr) -> Result<(CanonicalQuery, Arc<CompiledQuery>)> {
        let optimized = optimize(expr, self.optimizer);
        let canonical = canonicalize(optimized.expr);
        let catalog = ProviderCatalog { provider: self };
        // The cache cannot return a Result from its closure, so pre-lower on
        // a miss and report errors eagerly.
        if let Some(hit) = self.cache.lookup(&canonical) {
            return Ok((canonical, hit));
        }
        let start = std::time::Instant::now();
        let spec = lower(&canonical, &catalog)?;
        let csharp_source = emit_source(&spec, Backend::CSharp);
        let c_source = emit_source(&spec, Backend::C);
        let generation_time = start.elapsed();
        let artefact = self.cache.insert(
            &canonical,
            Arc::new(CompiledQuery {
                spec,
                csharp_source,
                c_source,
                rewrites: optimized.rewrites,
                generation_time,
            }),
        );
        Ok((canonical, artefact))
    }

    /// Returns the generated source for a statement (the paper's listings).
    pub fn explain(&self, expr: Expr, backend: Backend) -> Result<String> {
        let (_, compiled) = self.compile(expr)?;
        Ok(match backend {
            Backend::CSharp => compiled.csharp_source.clone(),
            Backend::C => compiled.c_source.clone(),
        })
    }

    /// Returns the heuristic rewrites the optimizer applied to a statement.
    pub fn explain_rewrites(&self, expr: Expr) -> Result<Vec<Rewrite>> {
        let (_, compiled) = self.compile(expr)?;
        Ok(compiled.rewrites.clone())
    }

    /// The modelled compile cost of a statement for the given backend
    /// (§7.4): generation is measured, compiler latency is modelled.
    pub fn compile_cost(&self, expr: Expr, backend: Backend) -> Result<(Duration, Duration)> {
        let (_, compiled) = self.compile(expr)?;
        let source = match backend {
            Backend::CSharp => &compiled.csharp_source,
            Backend::C => &compiled.c_source,
        };
        Ok((
            compiled.generation_time + self.cost_model.generation_cost(source),
            self.cost_model.compile_cost(source, backend),
        ))
    }

    /// Builds a deferred query: nothing executes until the result is
    /// consumed.
    pub fn query(&'a self, expr: Expr, strategy: Strategy) -> DeferredQuery<'a> {
        DeferredQuery {
            provider: self,
            expr,
            strategy,
        }
    }

    /// Executes a statement immediately with the given strategy. When result
    /// recycling is enabled, a repeated statement with identical parameters
    /// over unchanged collections is served from the result cache.
    ///
    /// Takes `&self`, so a shared provider can serve many client threads at
    /// once; see [`Provider::submit`] for queued (non-blocking) submission.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrq_common::{DataType, Field, Schema};
    /// use mrq_core::{Provider, Strategy};
    /// use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};
    /// use mrq_mheap::{ClassDesc, Heap};
    ///
    /// // An application collection: four Sale objects on the managed heap.
    /// let schema = Schema::new(
    ///     "Sale",
    ///     vec![
    ///         Field::new("id", DataType::Int64),
    ///         Field::new("city", DataType::Str),
    ///     ],
    /// );
    /// let mut heap = Heap::new();
    /// let class = heap.register_class(ClassDesc::from_schema(&schema));
    /// let list = heap.new_list("sales", Some(class));
    /// for i in 0..4i64 {
    ///     let obj = heap.alloc(class);
    ///     heap.set_i64(obj, 0, i);
    ///     heap.set_str(obj, 1, if i % 2 == 0 { "London" } else { "Paris" });
    ///     heap.list_push(list, obj);
    /// }
    ///
    /// // Bind the collection and run a LINQ-style statement compiled to C#.
    /// let mut provider = Provider::over_heap(&heap);
    /// provider.bind_managed(SourceId(0), list, schema);
    /// let stmt = Query::from_source(SourceId(0))
    ///     .where_(lam(
    ///         "s",
    ///         Expr::binary(BinaryOp::Eq, col("s", "city"), lit("London")),
    ///     ))
    ///     .select(lam("s", col("s", "id")))
    ///     .into_expr();
    /// let out = provider.execute(stmt, Strategy::CompiledCSharp)?;
    /// assert_eq!(out.rows.len(), 2);
    /// # Ok::<(), mrq_common::MrqError>(())
    /// ```
    pub fn execute(&self, expr: Expr, strategy: Strategy) -> Result<QueryOutput> {
        let (canonical, compiled) = self.compile(expr)?;
        self.execute_plan(
            canonical.shape_hash,
            &compiled.spec,
            &canonical.params,
            strategy,
        )
    }

    /// The shared tail of [`Provider::execute`] and the prepared-query path:
    /// an already-lowered plan with resolved parameters, run through result
    /// recycling when enabled.
    fn execute_plan(
        &self,
        shape_hash: u64,
        spec: &QuerySpec,
        params: &[Value],
        strategy: Strategy,
    ) -> Result<QueryOutput> {
        // A streamed execution bypasses result recycling entirely: its
        // output rows are drained into the channel as they are produced, so
        // caching the residual would poison the cache with a partial result,
        // and serving a cache hit would stream nothing.
        if !self.recycling || mrq_common::stream::current().is_some() {
            return self.execute_compiled(spec, params, strategy);
        }
        let key = self.result_key(shape_hash, params, spec)?;
        if let Some(hit) = self.results.lock().lookup(&key) {
            // A recycled result required no execution work: its stats are
            // zero, and that zero is what `last_work_stats` records.
            let mut output = (*hit).clone();
            output.work = WorkStats::default();
            self.record_work(&output.work);
            return Ok(output);
        }
        let output = self.execute_compiled(spec, params, strategy)?;
        self.results.lock().insert(key, Arc::new(output.clone()));
        Ok(output)
    }

    /// Records one execution's work counters: `last` is replaced, the
    /// cumulative total accumulates.
    fn record_work(&self, work: &WorkStats) {
        let mut tally = self.work.lock();
        tally.last = *work;
        tally.cumulative.add(work);
    }

    /// The deterministic [`WorkStats`] of the most recently completed
    /// execution on this provider (zero before the first execution, and
    /// zero again after a result-recycling hit, which does no work). See
    /// [`mrq_common::workcount`] for the counter semantics and the
    /// determinism contract.
    pub fn last_work_stats(&self) -> WorkStats {
        self.work.lock().last
    }

    /// The running total of [`WorkStats`] across every execution this
    /// provider completed (all strategies, ad-hoc and prepared).
    pub fn cumulative_work_stats(&self) -> WorkStats {
        self.work.lock().cumulative
    }

    /// Queues a statement for execution on the persistent worker pool and
    /// returns immediately with a [`QueryHandle`] to poll or join.
    ///
    /// This is the concurrent-serving front end: any number of client
    /// threads may `submit` through a shared `&Provider` at once. Each
    /// submitted query runs as one pool task (growing the pool towards one
    /// worker per query in flight, up to its ceiling), and its parallel
    /// morsels are scheduled round-robin against every other query in
    /// flight — a long scan cannot starve short probes submitted after it.
    /// Results are identical to calling [`Provider::execute`] with the same
    /// statement and strategy.
    ///
    /// `options` carries the per-query lifecycle controls ([`QueryOptions`]
    /// — pass `QueryOptions::default()` for none); the same signature shape
    /// is mirrored on [`OwnedProvider`], [`PreparedQuery`] and
    /// [`OwnedPreparedQuery`], and by the async ([`Provider::submit_async`])
    /// and streaming ([`Provider::submit_stream`]) front ends.
    ///
    /// The handle borrows the provider: dropping it without joining blocks
    /// until the query finished, so in-flight work never outlives the
    /// provider or its bound collections.
    ///
    /// # Deadlines and scheduling class
    ///
    /// A deadline is armed *at submission* as a wall-clock instant on the
    /// query's cancel token — queue time counts against the budget — and
    /// observed *lazily* — between morsels, never inside one — so there is
    /// no timer thread and cancellation latency is bounded by one morsel
    /// ([`ParallelConfig::morsel_rows`] rows). A query whose deadline
    /// already passed when its task is granted (a zero budget, or queue
    /// time that exceeded the budget) resolves to
    /// [`QueryError::DeadlineExceeded`] without compiling or executing
    /// anything.
    ///
    /// The class picks which of the pool's weighted queues the query's
    /// tickets — its dispatch and every morsel of its parallel fan-outs —
    /// are granted from: with the default 8:2:1 weights,
    /// [`QosClass::Batch`] work keeps flowing but cedes four grants to
    /// [`QosClass::Interactive`] for each of its own whenever both are
    /// backlogged, and [`QosClass::Maintenance`] trickles below both.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrq_common::{DataType, Field, Schema, Value};
    /// use mrq_core::{Provider, QueryError, QueryOptions, Strategy};
    /// use mrq_engine_native::RowStore;
    /// use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};
    /// use std::time::Duration;
    ///
    /// let schema = Schema::new("N", vec![Field::new("n", DataType::Int64)]);
    /// let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int64(i)]).collect();
    /// let store = RowStore::from_rows(schema, &rows);
    /// let mut provider = Provider::new();
    /// provider.bind_native(SourceId(0), &store);
    /// let stmt = Query::from_source(SourceId(0))
    ///     .where_(lam("x", Expr::binary(BinaryOp::Lt, col("x", "n"), lit(10i64))))
    ///     .select(lam("x", col("x", "n")))
    ///     .into_expr();
    ///
    /// // Queue two instances; join them in either order.
    /// let a = provider.submit(stmt.clone(), Strategy::CompiledNative, QueryOptions::default());
    /// let b = provider.submit(stmt.clone(), Strategy::CompiledNative, QueryOptions::default());
    /// assert_eq!(b.join()?.rows.len(), 10);
    /// assert_eq!(a.join()?.rows.len(), 10);
    ///
    /// // Batch class with a generous budget: completes normally.
    /// let opts = QueryOptions::batch().with_deadline(Duration::from_secs(60));
    /// let handle = provider.submit(stmt.clone(), Strategy::CompiledNative, opts);
    /// assert_eq!(handle.join()?.rows.len(), 10);
    ///
    /// // A zero budget is already expired at dispatch: the handle resolves
    /// // to DeadlineExceeded before a single morsel runs.
    /// let doomed = QueryOptions::new().with_deadline(Duration::ZERO);
    /// let handle = provider.submit(stmt, Strategy::CompiledNative, doomed);
    /// assert!(matches!(handle.join(), Err(QueryError::DeadlineExceeded)));
    /// # Ok::<(), mrq_common::MrqError>(())
    /// ```
    pub fn submit(&self, expr: Expr, strategy: Strategy, options: QueryOptions) -> QueryHandle<'_> {
        let (state, token) = self.spawn_submitted(Job::Statement(expr), strategy, options);
        QueryHandle {
            state,
            token,
            _provider: PhantomData,
        }
    }

    /// Queues a statement for execution on the persistent worker pool and
    /// returns a [`QueryFuture`]: the async counterpart of
    /// [`Provider::submit`], for waker-driven serving.
    ///
    /// The future registers its caller's [`std::task::Waker`] on the
    /// query's completion latch each time it is polled and is woken exactly
    /// once, when the query completes — normally, with an error, cancelled
    /// ([`QueryFuture::cancel`]) or past the [`QueryOptions`] deadline. One
    /// driver thread can therefore multiplex any number of in-flight
    /// queries: the queries *run* on the pool's workers regardless of who
    /// polls, so a mini-executor that just parks between wakes is enough
    /// (see `examples/async_server.rs`). Blocking [`QueryFuture::join`] and
    /// async polling coexist on the same latch.
    ///
    /// The future borrows the provider, exactly like a [`QueryHandle`]:
    /// dropping it unresolved blocks until the query finished. For
    /// `'static` futures that escape the binding scope — and drop without
    /// blocking — seal the provider into an [`OwnedProvider`] and use
    /// [`OwnedProvider::submit_async`].
    ///
    /// # Examples
    ///
    /// Polling by hand (no executor at all): a no-op waker, then a blocking
    /// `join` on the same future — showing that the two paths coexist.
    ///
    /// ```
    /// use mrq_common::{DataType, Field, Schema, Value};
    /// use mrq_core::{Provider, QueryOptions, Strategy};
    /// use mrq_engine_native::RowStore;
    /// use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};
    /// use std::future::Future;
    /// use std::pin::Pin;
    /// use std::task::{Context, Poll, Waker};
    ///
    /// let schema = Schema::new("N", vec![Field::new("n", DataType::Int64)]);
    /// let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int64(i)]).collect();
    /// let store = RowStore::from_rows(schema, &rows);
    /// let mut provider = Provider::new();
    /// provider.bind_native(SourceId(0), &store);
    /// let stmt = Query::from_source(SourceId(0))
    ///     .where_(lam("x", Expr::binary(BinaryOp::Lt, col("x", "n"), lit(10i64))))
    ///     .select(lam("x", col("x", "n")))
    ///     .into_expr();
    ///
    /// let mut future =
    ///     provider.submit_async(stmt, Strategy::CompiledNative, QueryOptions::new());
    /// // Poll once; the query may still be queued (Pending) or already done
    /// // (Ready). QueryFuture is Unpin, so Pin::new on a &mut works.
    /// let mut context = Context::from_waker(Waker::noop());
    /// match Pin::new(&mut future).poll(&mut context) {
    ///     Poll::Ready(result) => assert_eq!(result?.rows.len(), 10),
    ///     // Not done yet: fall back to the blocking path on the same latch.
    ///     Poll::Pending => assert_eq!(future.join()?.rows.len(), 10),
    /// }
    /// # Ok::<(), mrq_core::QueryError>(())
    /// ```
    pub fn submit_async(
        &self,
        expr: Expr,
        strategy: Strategy,
        options: QueryOptions,
    ) -> QueryFuture<'_> {
        let (state, token) = self.spawn_submitted(Job::Statement(expr), strategy, options);
        QueryFuture::new(state, token, None)
    }

    /// Queues a statement and returns a [`QueryStream`] that yields its
    /// result as in-order row batches *while the query executes*, instead
    /// of one materialised [`QueryOutput`] at the end.
    ///
    /// Batches arrive in exactly the order [`Provider::execute`] would
    /// return the rows — the engines publish completed morsels at an
    /// ordered frontier, so concatenating every batch reproduces the
    /// materialised result bit for bit, for every strategy and scheduler
    /// configuration. Batch size is [`QueryOptions::stream_batch_rows`];
    /// the channel holds a bounded number of batches, so a consumer that
    /// stops reading exerts backpressure (workers pause at their next
    /// checkpoint) rather than letting results pile up in memory.
    ///
    /// Shapes whose output cannot exist before the end of execution —
    /// grouped aggregation, sorted or Take-limited results, hybrid
    /// Min/Max-transfer — still work: they deliver everything as one final
    /// flush at completion, with the same contents.
    ///
    /// Dropping the stream cancels the query through its
    /// [`CancelToken`] and waits for it to unwind — the streaming analogue
    /// of [`QueryHandle`]'s drop-wait — so in-flight work never outlives
    /// the provider's bindings.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrq_common::{DataType, Field, Schema, Value};
    /// use mrq_core::{Provider, QueryOptions, Strategy};
    /// use mrq_engine_native::RowStore;
    /// use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};
    ///
    /// let schema = Schema::new("N", vec![Field::new("n", DataType::Int64)]);
    /// let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int64(i)]).collect();
    /// let store = RowStore::from_rows(schema, &rows);
    /// let mut provider = Provider::new();
    /// provider.bind_native(SourceId(0), &store);
    /// let stmt = Query::from_source(SourceId(0))
    ///     .where_(lam("x", Expr::binary(BinaryOp::Lt, col("x", "n"), lit(10i64))))
    ///     .select(lam("x", col("x", "n")))
    ///     .into_expr();
    ///
    /// let options = QueryOptions::default().with_stream_batch_rows(4);
    /// let stream = provider.submit_stream(stmt, Strategy::CompiledNative, options);
    /// let mut total = 0;
    /// for batch in stream {
    ///     total += batch?.len();
    /// }
    /// assert_eq!(total, 10);
    /// # Ok::<(), mrq_common::MrqError>(())
    /// ```
    pub fn submit_stream(
        &self,
        expr: Expr,
        strategy: Strategy,
        options: QueryOptions,
    ) -> QueryStream<'_> {
        let (state, token, receiver) = self.spawn_streamed(Job::Statement(expr), strategy, options);
        QueryStream::new(state, token, receiver, None)
    }

    /// Arms a submission's cancel token (deadline measured from now — queue
    /// time counts against the budget; `checked_add` saturates absurd
    /// budgets to "no deadline" instead of panicking) and pairs it with the
    /// [`JobControl`] every fan-out of the query will inherit.
    fn arm(options: &QueryOptions) -> (Arc<CancelToken>, JobControl) {
        let deadline = options
            .deadline
            .and_then(|budget| Instant::now().checked_add(budget));
        let token = Arc::new(match deadline {
            Some(at) => CancelToken::expiring(at),
            None => CancelToken::new(),
        });
        let control = JobControl {
            token: Arc::clone(&token),
            class: options.class,
        };
        (token, control)
    }

    /// Runs one submitted query on the calling (pool-worker) thread under
    /// its [`JobControl`]: the pre-dispatch token check, the cancel scope,
    /// and the query-boundary catch that turns checkpoint unwinds into
    /// their lifecycle errors and engine panics into [`MrqError::Internal`]
    /// — a panicking query must still complete its latch, or a joining
    /// client (or registered waker) would wait forever.
    ///
    /// When `sink` is set the query runs inside a stream scope: streamable
    /// shapes publish row batches through it while executing, and the
    /// returned [`QueryOutput`] holds only the unpublished residual rows.
    fn run_submitted(
        &self,
        control: &JobControl,
        job: Job,
        strategy: Strategy,
        sink: Option<&StreamSink>,
    ) -> Result<QueryOutput> {
        if let Some(reason) = control.token.check() {
            // Cancelled or expired while queued: resolve the handle
            // without compiling or executing a single morsel.
            return Err(MrqError::from(reason));
        }
        // The scope threads the token and class to every morsel fan-out
        // below; a tripped checkpoint unwinds with the reason, caught here
        // at the query boundary.
        match catch_unwind(AssertUnwindSafe(|| {
            fault::point("pool.dispatch")?;
            cancel::scope(control.clone(), || {
                let run = || match job {
                    Job::Statement(expr) => self.execute(expr, strategy),
                    Job::Prepared {
                        shape_hash,
                        plan,
                        params,
                    } => self.execute_plan(shape_hash, &plan.spec, &params, strategy),
                };
                match sink {
                    Some(sink) => mrq_common::stream::scope(sink.clone(), run),
                    None => run(),
                }
            })
        })) {
            Ok(result) => result,
            Err(payload) => Err(match payload.downcast::<CancelReason>() {
                Ok(reason) => MrqError::from(*reason),
                // Engine panics — and panics re-raised by the pool's
                // morsel-failure path — surface as a per-query error that
                // keeps the *original* payload message, so the client
                // learns what actually broke, not just that something did.
                Err(payload) => MrqError::Internal(panic_message(payload)),
            }),
        }
    }

    /// The in-flight accounting latch (shared with [`OwnedProvider`]'s
    /// spawn path, which lives in a sibling module).
    fn in_flight_guard(&self) -> &InFlight {
        &self.in_flight
    }

    /// The admission check shared by the borrowed and owned spawn paths:
    /// `Ok` takes a slot the finished task must release; `Err` is the
    /// [`QueryError::Overloaded`] error a shed submission's handle, future
    /// or stream resolves to (each caller packages it — a pre-completed
    /// state, a closed channel — without queueing any task). Runs before
    /// [`Provider::arm`], before any compilation, and before any cache
    /// traffic — shedding must stay cheap under exactly the load that
    /// makes it necessary.
    pub(crate) fn admit_submission(
        &self,
        options: &QueryOptions,
    ) -> std::result::Result<(), MrqError> {
        self.admission.try_admit(options.class)
    }

    /// Packages an admission rejection as the pre-completed latch + inert
    /// token a shed handle or future resolves from.
    pub(crate) fn shed(error: MrqError) -> (Arc<QueryState>, Arc<CancelToken>) {
        (
            QueryState::completed(Err(error)),
            Arc::new(CancelToken::new()),
        )
    }

    /// Releases the admission slot taken by [`Provider::admit_submission`]
    /// (called from the task bodies in both spawn paths).
    pub(crate) fn release_submission(&self) {
        self.admission.release();
    }

    /// The borrowed spawn path shared by [`Provider::submit`] and
    /// [`Provider::submit_async`]: queues the task and returns the
    /// completion latch + token the handle or future wraps. Over the
    /// admission limits, no task is queued at all — the returned state is
    /// already resolved to [`QueryError::Overloaded`].
    fn spawn_submitted(
        &self,
        job: Job,
        strategy: Strategy,
        options: QueryOptions,
    ) -> (Arc<QueryState>, Arc<CancelToken>) {
        if let Err(error) = self.admit_submission(&options) {
            return Self::shed(error);
        }
        let (token, control) = Self::arm(&options);
        let state = QueryState::new();
        let completion = Arc::clone(&state);
        self.in_flight.increment();
        let in_flight = Arc::clone(&self.in_flight);
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let result = self.run_submitted(&control, job, strategy, None);
            completion.complete(result);
            // Release the admission slot before the in-flight decrement:
            // once the count hits zero `Provider::drop` may return and the
            // borrow of `self` below would dangle.
            self.release_submission();
            in_flight.decrement();
        });
        // SAFETY (lifetime erasure): the pool requires a `'static` task, but
        // this closure borrows `self`. Two waits keep the borrow alive past
        // every dereference the task makes: `QueryHandle`'s/`QueryFuture`'s
        // `join`/`Drop` block until completion, and — if a handle is leaked
        // without its destructor running (`mem::forget`) — `Provider::drop`
        // itself waits for the in-flight count to reach zero before the
        // provider (whose borrowed bindings outlive it) can be torn down.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        WorkerPool::global().spawn_as(options.class, task);
        (state, token)
    }

    /// Finishes one streamed query: sends the residual rows the engine did
    /// not publish while executing, folds the channel's batch/row tallies
    /// into the output's [`WorkCounters`] (and this provider's work stats —
    /// [`Provider::record_work`] already ran inside `execute` *without*
    /// them, because the channel owns those counts until the stream
    /// closes), and closes the channel — with the query's error, if any,
    /// delivered after every batch published before the failure.
    fn finish_stream(&self, sink: &StreamSink, result: Result<QueryOutput>) -> Result<QueryOutput> {
        let mut result = result;
        if let Ok(out) = &mut result {
            let mut residual = std::mem::take(&mut out.rows);
            sink.send_rows(&mut residual);
        }
        let error = result.as_ref().err().cloned();
        sink.close(error);
        let (batches, rows) = sink.counters();
        if let Ok(out) = &mut result {
            out.work.streamed(batches, rows);
            self.record_stream_work(batches, rows);
        }
        result
    }

    /// Folds a finished stream's channel tallies into both work-stat
    /// registers (last + cumulative), which were recorded pre-close without
    /// them.
    fn record_stream_work(&self, batches: u64, rows: u64) {
        let mut tally = self.work.lock();
        tally.last.streamed(batches, rows);
        tally.cumulative.streamed(batches, rows);
    }

    /// The borrowed spawn path behind [`Provider::submit_stream`]: like
    /// [`Provider::spawn_submitted`] but the task runs inside a stream
    /// scope wired to a bounded channel, and the receiver half is returned
    /// for the [`QueryStream`] to drain.
    fn spawn_streamed(
        &self,
        job: Job,
        strategy: Strategy,
        options: QueryOptions,
    ) -> (Arc<QueryState>, Arc<CancelToken>, StreamReceiver) {
        if let Err(error) = self.admit_submission(&options) {
            let (state, token) = Self::shed(error.clone());
            let (sink, receiver) = mrq_common::stream::channel(1, Arc::clone(&token));
            sink.close(Some(error));
            return (state, token, receiver);
        }
        let (token, control) = Self::arm(&options);
        let (sink, receiver) =
            mrq_common::stream::channel(options.stream_batch_rows, Arc::clone(&token));
        let state = QueryState::new();
        let completion = Arc::clone(&state);
        self.in_flight.increment();
        let in_flight = Arc::clone(&self.in_flight);
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let result = self.run_submitted(&control, job, strategy, Some(&sink));
            let result = self.finish_stream(&sink, result);
            completion.complete(result);
            // Same release-before-decrement ordering as `spawn_submitted`.
            self.release_submission();
            in_flight.decrement();
        });
        // SAFETY (lifetime erasure): identical to `spawn_submitted` — the
        // `QueryStream`'s `Drop` cancels and waits on the completion latch,
        // and `Provider::drop` waits for the in-flight count regardless.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        WorkerPool::global().spawn_as(options.class, task);
        (state, token, receiver)
    }

    /// The recycling identity of one statement instance: canonical shape,
    /// parameter values, bound-collection fingerprint and invalidation epoch.
    fn result_key(&self, shape_hash: u64, params: &[Value], spec: &QuerySpec) -> Result<ResultKey> {
        let mut sources = vec![spec.root];
        sources.extend(spec.joins.iter().map(|j| j.source));
        let mut fingerprint = Vec::with_capacity(sources.len());
        for source in sources {
            let rows = match self.binding(source)? {
                Binding::Managed { list, .. } => {
                    let heap = self.heap().ok_or_else(|| {
                        MrqError::Unsupported("managed bindings need a heap-backed provider".into())
                    })?;
                    heap.list_len(*list)
                }
                Binding::Native(store) => store.get().len(),
                Binding::Values(table) => table.get().rows().len(),
            };
            fingerprint.push((source, rows));
        }
        Ok(ResultKey {
            shape_hash,
            params: params.to_vec(),
            sources: fingerprint,
            epoch: self.epoch.load(std::sync::atomic::Ordering::SeqCst),
        })
    }

    /// Executes an already-lowered spec with bound parameters.
    pub fn execute_compiled(
        &self,
        spec: &QuerySpec,
        params: &[Value],
        strategy: Strategy,
    ) -> Result<QueryOutput> {
        let output = self.execute_compiled_inner(spec, params, strategy)?;
        self.record_work(&output.work);
        Ok(output)
    }

    /// The strategy dispatch behind [`Provider::execute_compiled`].
    fn execute_compiled_inner(
        &self,
        spec: &QuerySpec,
        params: &[Value],
        strategy: Strategy,
    ) -> Result<QueryOutput> {
        let mut sources = vec![spec.root];
        sources.extend(spec.joins.iter().map(|j| j.source));
        match strategy {
            Strategy::CompiledNative | Strategy::CompiledNativeParallel(_) => {
                let mut tables = Vec::new();
                for source in &sources {
                    match self.binding(*source)? {
                        Binding::Native(store) => tables.push(store.get()),
                        _ => {
                            return Err(MrqError::Unsupported(format!(
                                "source {source:?} is not bound to a native row store; \
                                 the native strategy requires arrays of structs (§5)"
                            )))
                        }
                    }
                }
                match strategy {
                    Strategy::CompiledNativeParallel(config) => {
                        mrq_engine_native::execute_parallel(spec, params, &tables, &[], config)
                    }
                    _ if !self.parallel.is_sequential() => mrq_engine_native::execute_parallel(
                        spec,
                        params,
                        &tables,
                        &[],
                        self.parallel,
                    ),
                    _ => mrq_engine_native::execute(spec, params, &tables),
                }
            }
            Strategy::LinqToObjects | Strategy::CompiledCSharp | Strategy::Hybrid(_) => {
                let heap = self.heap().ok_or_else(|| {
                    MrqError::Unsupported("managed strategies need a heap-backed provider".into())
                })?;
                // Managed strategies accept managed lists; value-table
                // bindings (materialised sub-query results) are loaded into
                // temporary managed tables is unnecessary — instead we reject
                // them for LINQ/C# and allow them only as join build sides by
                // materialising through a scratch list would complicate the
                // provider, so for now every source must be a managed list.
                let mut tables = Vec::new();
                for source in &sources {
                    match self.binding(*source)? {
                        Binding::Managed { list, schema } => {
                            tables.push(HeapTable::new(heap, *list, schema.clone()))
                        }
                        _ => {
                            return Err(MrqError::Unsupported(format!(
                                "source {source:?} is not bound to a managed list; \
                                 managed strategies query managed collections"
                            )))
                        }
                    }
                }
                let refs: Vec<&HeapTable<'_>> = tables.iter().collect();
                match strategy {
                    // The baseline reproduces the paper's single-threaded
                    // enumerable pipeline; it never parallelises.
                    Strategy::LinqToObjects => mrq_engine_linq::execute(spec, params, &refs),
                    Strategy::CompiledCSharp if !self.parallel.is_sequential() => {
                        mrq_engine_csharp::execute_parallel(spec, params, &refs, self.parallel)
                    }
                    Strategy::CompiledCSharp => mrq_engine_csharp::execute(spec, params, &refs),
                    Strategy::Hybrid(mut config) => {
                        // A strategy-level parallel setting wins; otherwise
                        // the provider-wide degree of parallelism applies.
                        if config.parallel.is_sequential() {
                            config.parallel = self.parallel;
                        }
                        mrq_engine_hybrid::execute(spec, params, &refs, config)
                            .map(|run| run.output)
                    }
                    Strategy::CompiledNative | Strategy::CompiledNativeParallel(_) => {
                        unreachable!()
                    }
                }
            }
        }
    }

    /// Cache statistics (hit/miss counts).
    pub fn stats(&self) -> ProviderStats {
        let cache = self.cache.stats();
        ProviderStats {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            recycling: self.results.lock().stats(),
        }
    }
}

impl Default for Provider<'_> {
    fn default() -> Self {
        Self::new()
    }
}

struct ProviderCatalog<'p, 'a> {
    provider: &'p Provider<'a>,
}

impl Catalog for ProviderCatalog<'_, '_> {
    fn schema(&self, source: SourceId) -> Option<Schema> {
        self.provider.schema_of(source)
    }
}

/// A query whose execution is deferred until its result is consumed,
/// mirroring LINQ's deferred-execution semantics.
pub struct DeferredQuery<'a> {
    provider: &'a Provider<'a>,
    expr: Expr,
    strategy: Strategy,
}

impl DeferredQuery<'_> {
    /// Executes the query and returns all result rows.
    pub fn to_rows(&self) -> Result<Vec<Vec<Value>>> {
        Ok(self
            .provider
            .execute(self.expr.clone(), self.strategy)?
            .rows)
    }

    /// Executes the query and returns the full output (schema + rows).
    pub fn to_output(&self) -> Result<QueryOutput> {
        self.provider.execute(self.expr.clone(), self.strategy)
    }

    /// The statement text (C#-flavoured), for diagnostics.
    pub fn statement(&self) -> String {
        self.expr.to_string()
    }
}

/// A query queued on the worker pool by [`Provider::submit`] and its
/// prepared/owned counterparts.
///
/// The handle borrows the provider for as long as it lives, which is what
/// lets the queued task safely reference the provider and its bound
/// collections from a pool worker. Joining consumes the handle; dropping it
/// without joining blocks until the query finished (the result is then
/// discarded), mirroring `std::thread::scope`'s completion guarantee. Even
/// a handle leaked with `mem::forget` cannot outrun the provider: the
/// provider's own `Drop` waits for every submitted query before returning.
///
/// [`QueryHandle::cancel`] requests cooperative cancellation; the query
/// abandons its remaining morsels and the handle resolves to
/// [`QueryError::Cancelled`].
pub struct QueryHandle<'p> {
    state: Arc<QueryState>,
    token: Arc<CancelToken>,
    _provider: PhantomData<&'p ()>,
}

impl<'p> QueryHandle<'p> {
    /// True once the query finished (successfully or not). Non-blocking.
    pub fn is_finished(&self) -> bool {
        self.state.is_finished()
    }

    /// Requests cooperative cancellation: flips the query's token, which is
    /// observed between morsels (and at the engines' phase boundaries) —
    /// a claimed morsel always finishes, so cancellation latency is bounded
    /// by one morsel's worth of work, never by the length of the query.
    /// Idempotent and non-blocking; if the query already completed, the
    /// completed result stands.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrq_common::{DataType, Field, Schema, Value};
    /// use mrq_core::{Provider, QueryError, QueryOptions, Strategy};
    /// use mrq_engine_native::RowStore;
    /// use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};
    ///
    /// let schema = Schema::new("N", vec![Field::new("n", DataType::Int64)]);
    /// let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int64(i)]).collect();
    /// let store = RowStore::from_rows(schema, &rows);
    /// let mut provider = Provider::new();
    /// provider.bind_native(SourceId(0), &store);
    /// let stmt = Query::from_source(SourceId(0))
    ///     .where_(lam("x", Expr::binary(BinaryOp::Lt, col("x", "n"), lit(10i64))))
    ///     .select(lam("x", col("x", "n")))
    ///     .into_expr();
    ///
    /// let handle = provider.submit(stmt, Strategy::CompiledNative, QueryOptions::default());
    /// handle.cancel(); // cooperative: takes effect at the next boundary
    /// match handle.join() {
    ///     // The query won the race and completed before the cancel landed.
    ///     Ok(out) => assert_eq!(out.rows.len(), 10),
    ///     // The cancel landed first: morsels were abandoned.
    ///     Err(QueryError::Cancelled) => {}
    ///     Err(other) => panic!("unexpected error: {other}"),
    /// }
    /// ```
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the query finished and returns its result.
    pub fn join(self) -> Result<QueryOutput> {
        let result = self.state.wait_take();
        // `self` is dropped here; its drop-wait returns immediately because
        // the completion latch already fired.
        result
    }

    /// Polls for completion: returns the result if the query finished, or
    /// hands the handle back to try again later. Never blocks.
    #[allow(clippy::result_large_err)]
    pub fn try_join(self) -> std::result::Result<Result<QueryOutput>, QueryHandle<'p>> {
        if self.is_finished() {
            Ok(self.join())
        } else {
            Err(self)
        }
    }
}

impl Drop for QueryHandle<'_> {
    /// Waits for the in-flight query, so abandoning a handle can never leave
    /// a pool task referencing a dead provider.
    fn drop(&mut self) {
        self.state.wait_finished();
    }
}

/// `Provider` must stay shareable across client threads (the concurrent
/// serving front end depends on it); this fails to compile if a field ever
/// loses `Sync`.
#[allow(dead_code)]
fn _assert_provider_is_sync() {
    fn is_sync<T: Sync>() {}
    is_sync::<Provider<'static>>();
    fn is_send<T: Send>() {}
    is_send::<QueryHandle<'static>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_common::{DataType, Decimal, Field};
    use mrq_expr::{col, lam, lit, BinaryOp, Query};
    use mrq_mheap::ClassDesc;

    fn schema() -> Schema {
        Schema::new(
            "Sale",
            vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Str),
                Field::new("price", DataType::Decimal),
            ],
        )
    }

    fn heap_with_data() -> (Heap, ListId) {
        let mut heap = Heap::new();
        let class = heap.register_class(ClassDesc::from_schema(&schema()));
        let list = heap.new_list("sales", Some(class));
        for i in 0..50i64 {
            let obj = heap.alloc(class);
            heap.set_i64(obj, 0, i);
            heap.set_str(obj, 1, if i % 2 == 0 { "London" } else { "Paris" });
            heap.set_decimal(obj, 2, Decimal::from_int(i));
            heap.list_push(list, obj);
        }
        (heap, list)
    }

    fn statement(city: &str) -> Expr {
        Query::from_source(SourceId(0))
            .where_(lam(
                "s",
                Expr::binary(BinaryOp::Eq, col("s", "city"), lit(city)),
            ))
            .select(lam("s", col("s", "price")))
            .into_expr()
    }

    #[test]
    fn all_managed_strategies_return_identical_results() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        let linq = provider
            .execute(statement("London"), Strategy::LinqToObjects)
            .unwrap();
        let csharp = provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        let hybrid = provider
            .execute(
                statement("London"),
                Strategy::Hybrid(HybridConfig::default()),
            )
            .unwrap();
        assert_eq!(linq, csharp);
        assert_eq!(linq, hybrid);
        assert_eq!(linq.rows.len(), 25);
    }

    #[test]
    fn native_strategy_requires_native_bindings() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        let err = provider
            .execute(statement("London"), Strategy::CompiledNative)
            .unwrap_err();
        assert!(matches!(err, MrqError::Unsupported(_)));
    }

    #[test]
    fn native_strategy_over_a_row_store() {
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::str(if i % 2 == 0 { "London" } else { "Paris" }),
                    Value::Decimal(Decimal::from_int(i)),
                ]
            })
            .collect();
        let store = RowStore::from_rows(schema(), &rows);
        let mut provider = Provider::new();
        provider.bind_native(SourceId(0), &store);
        let out = provider
            .execute(statement("Paris"), Strategy::CompiledNative)
            .unwrap();
        assert_eq!(out.rows.len(), 5);
    }

    #[test]
    fn query_cache_reuses_compiled_patterns_across_parameters() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        provider
            .execute(statement("Paris"), Strategy::CompiledCSharp)
            .unwrap();
        let stats = provider.stats();
        assert_eq!(stats.cache_misses, 1, "one compilation for the pattern");
        assert!(stats.cache_hits >= 1, "second instance must hit the cache");
    }

    #[test]
    fn result_recycling_serves_repeated_statements_from_the_cache() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        provider.set_result_recycling(true);
        let first = provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        let second = provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        assert_eq!(first, second);
        let stats = provider.stats();
        assert_eq!(stats.recycling.hits, 1);
        assert_eq!(stats.recycling.misses, 1);
        // A different parameter is a different result identity.
        provider
            .execute(statement("Paris"), Strategy::CompiledCSharp)
            .unwrap();
        assert_eq!(provider.stats().recycling.misses, 2);
        // Invalidation drops every recycled result.
        provider.invalidate_results();
        provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        assert_eq!(provider.stats().recycling.misses, 3);
    }

    #[test]
    fn recycling_is_invalidated_when_the_collection_grows() {
        let (mut heap, list) = heap_with_data();
        let class = heap.class_by_name("Sale").unwrap();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        provider.set_result_recycling(true);
        let before = provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        assert_eq!(before.rows.len(), 25);
        drop(provider);
        // Append one more qualifying object; the fingerprint changes, so the
        // stale result is not reused.
        let obj = heap.alloc(class);
        heap.set_i64(obj, 0, 100);
        heap.set_str(obj, 1, "London");
        heap.set_decimal(obj, 2, Decimal::from_int(100));
        heap.list_push(list, obj);
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        provider.set_result_recycling(true);
        let after = provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        assert_eq!(after.rows.len(), 26);
    }

    #[test]
    fn optimizer_pushes_filters_and_reports_rewrites() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        // A filter written after a projection: the optimizer pushes it onto
        // the source, LINQ-to-objects would evaluate it after projecting.
        let naive = Query::from_source(SourceId(0))
            .select(lam(
                "s",
                Expr::Constructor {
                    name: "P".into(),
                    fields: vec![
                        ("city".into(), col("s", "city")),
                        ("price".into(), col("s", "price")),
                    ],
                },
            ))
            .where_(lam(
                "p",
                Expr::binary(BinaryOp::Eq, col("p", "city"), lit("London")),
            ))
            .into_expr();
        let rewrites = provider.explain_rewrites(naive.clone()).unwrap();
        assert!(!rewrites.is_empty());
        let optimized_out = provider
            .execute(naive.clone(), Strategy::CompiledCSharp)
            .unwrap();

        // The same statement with the filter already written before the
        // projection must give identical results.
        let hand_pushed = Query::from_source(SourceId(0))
            .where_(lam(
                "s",
                Expr::binary(BinaryOp::Eq, col("s", "city"), lit("London")),
            ))
            .select(lam(
                "s",
                Expr::Constructor {
                    name: "P".into(),
                    fields: vec![
                        ("city".into(), col("s", "city")),
                        ("price".into(), col("s", "price")),
                    ],
                },
            ))
            .into_expr();
        let reference = provider
            .execute(hand_pushed, Strategy::CompiledCSharp)
            .unwrap();
        assert_eq!(optimized_out.rows, reference.rows);
        assert_eq!(optimized_out.rows.len(), 25);

        // Without the rewrite, the filter-after-projection shape is outside
        // the compiled subset — the push-down is what makes it compilable,
        // exactly the "programmer must understand query processing" point of
        // §2.3.
        let mut plain = Provider::over_heap(&heap);
        plain.bind_managed(SourceId(0), list, schema());
        plain.set_optimizer(OptimizerConfig::disabled());
        let err = plain.execute(naive, Strategy::CompiledCSharp).unwrap_err();
        assert!(matches!(err, MrqError::Unsupported(_)));
    }

    #[test]
    fn parallel_native_strategy_matches_sequential_native() {
        let rows: Vec<Vec<Value>> = (0..10_000)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::str(if i % 2 == 0 { "London" } else { "Paris" }),
                    Value::Decimal(Decimal::from_int(i % 100)),
                ]
            })
            .collect();
        let store = RowStore::from_rows(schema(), &rows);
        let mut provider = Provider::new();
        provider.bind_native(SourceId(0), &store);
        let sequential = provider
            .execute(statement("London"), Strategy::CompiledNative)
            .unwrap();
        let parallel = provider
            .execute(
                statement("London"),
                Strategy::CompiledNativeParallel(ParallelConfig {
                    threads: 4,
                    min_rows_per_thread: 256,
                    ..ParallelConfig::default()
                }),
            )
            .unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(parallel.rows.len(), 5_000);
    }

    #[test]
    fn provider_parallelism_applies_to_every_compiled_strategy() {
        let (heap, list) = heap_with_data();
        let mut sequential = Provider::over_heap(&heap);
        sequential.bind_managed(SourceId(0), list, schema());
        let mut parallel = Provider::over_heap(&heap);
        parallel.bind_managed(SourceId(0), list, schema());
        parallel.set_parallelism(ParallelConfig {
            threads: 4,
            min_rows_per_thread: 8,
            ..ParallelConfig::default()
        });
        assert_eq!(parallel.parallelism().threads, 4);
        for strategy in [
            Strategy::LinqToObjects,
            Strategy::CompiledCSharp,
            Strategy::Hybrid(HybridConfig::default()),
            Strategy::Hybrid(HybridConfig::buffered()),
        ] {
            let reference = sequential.execute(statement("London"), strategy).unwrap();
            let out = parallel.execute(statement("London"), strategy).unwrap();
            assert_eq!(out, reference, "{strategy:?}");
        }
        // A strategy-level parallel setting overrides the provider's.
        let strategy = Strategy::Hybrid(HybridConfig::default().with_threads(2));
        let reference = sequential
            .execute(
                statement("London"),
                Strategy::Hybrid(HybridConfig::default()),
            )
            .unwrap();
        assert_eq!(
            parallel.execute(statement("London"), strategy).unwrap(),
            reference
        );
    }

    #[test]
    fn submitted_queries_join_with_execute_identical_results() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        let reference = provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        let handle = provider.submit(
            statement("London"),
            Strategy::CompiledCSharp,
            QueryOptions::default(),
        );
        assert_eq!(handle.join().unwrap(), reference);
        // Polling: try_join either completes or hands the handle back.
        let mut pending = provider.submit(
            statement("Paris"),
            Strategy::CompiledCSharp,
            QueryOptions::default(),
        );
        let out = loop {
            match pending.try_join() {
                Ok(result) => break result.unwrap(),
                Err(handle) => {
                    pending = handle;
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(out.rows.len(), 25);
    }

    #[test]
    fn submitted_query_errors_surface_on_join() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        // Native strategy over a managed binding is an error; it must travel
        // through the pool to the joining client, not panic a worker.
        let handle = provider.submit(
            statement("London"),
            Strategy::CompiledNative,
            QueryOptions::default(),
        );
        assert!(matches!(
            handle.join().unwrap_err(),
            MrqError::Unsupported(_)
        ));
    }

    #[test]
    fn expired_deadlines_resolve_before_compilation() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        let options = QueryOptions::new().with_deadline(Duration::ZERO);
        let handle = provider.submit(statement("London"), Strategy::CompiledCSharp, options);
        assert!(matches!(handle.join(), Err(MrqError::DeadlineExceeded)));
        // The expired query was resolved at dispatch: it never reached the
        // compiler, let alone a morsel.
        let stats = provider.stats();
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn batch_class_queries_with_generous_deadlines_complete_normally() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        let reference = provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        let options = QueryOptions::batch().with_deadline(Duration::from_secs(600));
        assert_eq!(options.class, QosClass::Batch);
        let handle = provider.submit(statement("London"), Strategy::CompiledCSharp, options);
        assert_eq!(handle.join().unwrap(), reference);
    }

    #[test]
    fn cancelling_a_finished_query_keeps_its_result() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        let handle = provider.submit(
            statement("Paris"),
            Strategy::CompiledCSharp,
            QueryOptions::default(),
        );
        // Wait for completion, then cancel: the completed result stands.
        while !handle.is_finished() {
            std::thread::yield_now();
        }
        handle.cancel();
        assert_eq!(handle.join().unwrap().rows.len(), 25);
    }

    #[test]
    fn provider_drop_waits_for_leaked_handles() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        // Leak the handle: its drop-wait never runs, so the only thing
        // keeping the pool task from outliving the provider is the
        // provider's own in-flight wait on drop.
        std::mem::forget(provider.submit(
            statement("London"),
            Strategy::CompiledCSharp,
            QueryOptions::default(),
        ));
        drop(provider); // must block until the leaked query finished
    }

    #[test]
    fn dropped_handles_complete_before_the_provider_unbinds() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        for _ in 0..4 {
            // Dropping without joining blocks until done; the provider (and
            // heap) must outlive the in-flight query, which this exercises
            // under miri-visible rules by dropping immediately.
            let _ = provider.submit(
                statement("London"),
                Strategy::CompiledCSharp,
                QueryOptions::default(),
            );
        }
        let stats = provider.stats();
        assert_eq!(stats.cache_misses, 1, "pattern compiled once, then cached");
    }

    #[test]
    fn a_shared_provider_serves_concurrent_clients() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        provider.set_parallelism(ParallelConfig {
            threads: 2,
            min_rows_per_thread: 8,
            ..ParallelConfig::default()
        });
        let reference = provider
            .execute(statement("London"), Strategy::CompiledCSharp)
            .unwrap();
        let provider = &provider;
        let reference = &reference;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    for _ in 0..4 {
                        let out = provider
                            .execute(statement("London"), Strategy::CompiledCSharp)
                            .unwrap();
                        assert_eq!(&out, reference);
                    }
                });
            }
        });
    }

    #[test]
    fn deferred_queries_execute_on_consumption_and_explain_emits_source() {
        let (heap, list) = heap_with_data();
        let mut provider = Provider::over_heap(&heap);
        provider.bind_managed(SourceId(0), list, schema());
        let q = provider.query(statement("London"), Strategy::CompiledCSharp);
        assert!(q.statement().contains("Where"));
        let rows = q.to_rows().unwrap();
        assert_eq!(rows.len(), 25);

        let cs = provider
            .explain(statement("London"), Backend::CSharp)
            .unwrap();
        assert!(cs.contains("foreach"));
        let c = provider.explain(statement("London"), Backend::C).unwrap();
        assert!(c.contains("EvaluateQuery"));
        let (generation, compile) = provider
            .compile_cost(statement("London"), Backend::C)
            .unwrap();
        assert!(compile > generation);
    }
}
