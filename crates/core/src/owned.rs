//! The owned-provider handle: an `Arc`-based `'static` path into the
//! serving layer, so queries — and especially [`QueryFuture`]s — can escape
//! the binding scope.
//!
//! A borrowed [`Provider`] pins every handle and future to the stack frame
//! that owns the bound collections; safe, but a server cannot hand such a
//! future to another thread, park it in a connection table, or outlive the
//! scope that built the provider. [`OwnedProvider`] lifts that limit: the
//! provider and its bindings live behind one [`Arc`], every in-flight task
//! holds its own clone, and the futures it returns are `'static` — drive
//! them from any thread or mini-executor, drop them early without blocking,
//! and let the last clone standing tear everything down.
//!
//! Building one requires `'static` bindings, which is exactly what the
//! shared-binding constructors provide ([`Provider::over_shared_heap`],
//! [`Provider::bind_native_shared`], [`Provider::bind_values_shared`]):
//! bind `Arc<RowStore>` / `Arc<Heap>` / `Arc<ValueTable>` handles instead
//! of borrows and the borrow checker lets [`Provider::into_shared`] seal
//! the provider. A provider with any non-`'static` borrow simply cannot be
//! sealed — the escape hatch is compile-time-gated, not runtime-checked.

use crate::future::{QueryFuture, QueryState};
use crate::stream::QueryStream;
use crate::{Job, Provider, QueryHandle, QueryOptions, Strategy};
use mrq_common::cancel::CancelToken;
use mrq_common::pool::WorkerPool;
use mrq_common::stream::StreamReceiver;
use mrq_expr::Expr;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

impl Provider<'static> {
    /// Seals a fully-bound provider into a shareable, `'static`
    /// [`OwnedProvider`]. Only a provider whose bindings are all owned or
    /// shared (`Arc`-backed, via [`Provider::over_shared_heap`] /
    /// [`Provider::bind_native_shared`] / [`Provider::bind_values_shared`],
    /// plus managed lists, which never borrow) satisfies the `'static`
    /// bound — borrowed bindings are rejected at compile time.
    ///
    /// Configuration is fixed at sealing time: set parallelism, the
    /// optimizer and recycling before calling this (the shared provider is
    /// immutable, which is what makes handing it to many threads sound).
    pub fn into_shared(self) -> OwnedProvider {
        OwnedProvider {
            inner: Arc::new(self),
        }
    }
}

/// A shareable `'static` handle to a sealed [`Provider`]: the owned half of
/// the serving layer.
///
/// Cloning is an `Arc` clone; every clone (and every in-flight
/// [`OwnedProvider::submit_async`] task) keeps the provider and its bound
/// collections alive. All of [`Provider`]'s read-side API is available
/// through `Deref` — [`Provider::execute`], [`Provider::submit`],
/// [`Provider::stats`], … — and `submit_async` here returns a
/// `QueryFuture<'static>` instead of a borrowed one.
///
/// Teardown is ordered by construction: the provider's own `Drop` waits for
/// in-flight submissions, and a task drops its provider clone only *after*
/// decrementing the in-flight count, so the last clone — wherever it is
/// dropped, client thread or pool worker — never deadlocks.
///
/// # Examples
///
/// A future that outlives the scope that built the provider and is driven
/// from a different thread:
///
/// ```
/// use mrq_common::{DataType, Field, Schema, Value};
/// use mrq_core::{OwnedProvider, Provider, QueryOptions, Strategy};
/// use mrq_engine_native::RowStore;
/// use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};
/// use std::sync::Arc;
///
/// let schema = Schema::new("N", vec![Field::new("n", DataType::Int64)]);
/// let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int64(i)]).collect();
/// let store = Arc::new(RowStore::from_rows(schema, &rows));
///
/// let provider: OwnedProvider = {
///     // The binding scope: nothing from it escapes except the Arcs.
///     let mut provider = Provider::new();
///     provider.bind_native_shared(SourceId(0), Arc::clone(&store));
///     provider.into_shared()
/// };
///
/// let stmt = Query::from_source(SourceId(0))
///     .where_(lam("x", Expr::binary(BinaryOp::Lt, col("x", "n"), lit(10i64))))
///     .select(lam("x", col("x", "n")))
///     .into_expr();
/// let future = provider.submit_async(stmt, Strategy::CompiledNative, QueryOptions::new());
///
/// // `future` is 'static: hand it to another thread and join it there.
/// let rows = std::thread::spawn(move || future.join())
///     .join()
///     .expect("driver thread")?
///     .rows;
/// assert_eq!(rows.len(), 10);
/// # Ok::<(), mrq_core::QueryError>(())
/// ```
#[derive(Clone)]
pub struct OwnedProvider {
    inner: Arc<Provider<'static>>,
}

impl OwnedProvider {
    /// Queues a statement on the worker pool and returns a `'static`
    /// [`QueryHandle`] that can escape this scope entirely.
    ///
    /// Same unified signature as [`Provider::submit`] and identical
    /// semantics, except the spawned task carries its own provider clone —
    /// so the handle can cross threads and outlive the sealing scope.
    /// Dropping the handle without joining still blocks until the query
    /// finished, like every `QueryHandle`.
    pub fn submit(
        &self,
        expr: Expr,
        strategy: Strategy,
        options: QueryOptions,
    ) -> QueryHandle<'static> {
        let (state, token) = self.spawn_owned_parts(Job::Statement(expr), strategy, options);
        QueryHandle {
            state,
            token,
            _provider: PhantomData,
        }
    }

    /// Queues a statement on the worker pool and returns a `'static`
    /// [`QueryFuture`] that can escape this scope entirely.
    ///
    /// Semantics match [`Provider::submit_async`] — same waker lifecycle,
    /// deadline arming at submission, QoS class routing, and bit-identical
    /// results — with one difference: the spawned task carries its own
    /// provider clone, so the future's `Drop` is non-blocking. Dropping an
    /// unresolved future abandons the *result*, not the provider: the task
    /// finishes (or retires, if cancelled) in the background and releases
    /// its clone, and `Provider::drop` still waits for it before the
    /// bindings go away.
    pub fn submit_async(
        &self,
        expr: Expr,
        strategy: Strategy,
        options: QueryOptions,
    ) -> QueryFuture<'static> {
        self.spawn_owned(Job::Statement(expr), strategy, options)
    }

    /// Queues a statement and returns a `'static` [`QueryStream`] of
    /// in-order row batches, the owned counterpart of
    /// [`Provider::submit_stream`] — same ordered-frontier publication,
    /// deterministic batching and backpressure, but the stream can cross
    /// threads, and dropping it mid-way cancels the query *without
    /// blocking*: the task holds its own provider clone and unwinds in the
    /// background.
    pub fn submit_stream(
        &self,
        expr: Expr,
        strategy: Strategy,
        options: QueryOptions,
    ) -> QueryStream<'static> {
        let (state, token, receiver) =
            self.spawn_streamed_owned(Job::Statement(expr), strategy, options);
        QueryStream::new(state, token, receiver, Some(Arc::clone(&self.inner)))
    }

    /// The owned spawn path shared by [`OwnedProvider::submit_async`] and
    /// [`crate::OwnedPreparedQuery::submit_async`]: the spawned task carries
    /// its own provider clone, so the returned future is `'static` and its
    /// `Drop` is non-blocking.
    pub(crate) fn spawn_owned(
        &self,
        job: Job,
        strategy: Strategy,
        options: QueryOptions,
    ) -> QueryFuture<'static> {
        let (state, token) = self.spawn_owned_parts(job, strategy, options);
        QueryFuture::new(state, token, Some(Arc::clone(&self.inner)))
    }

    /// The owned spawn machinery behind [`OwnedProvider::submit`] and
    /// [`OwnedProvider::spawn_owned`]: latch + token, with the task keeping
    /// its own provider clone alive.
    pub(crate) fn spawn_owned_parts(
        &self,
        job: Job,
        strategy: Strategy,
        options: QueryOptions,
    ) -> (Arc<QueryState>, Arc<CancelToken>) {
        // Admission first, like the borrowed path: a shed submission
        // spawns no task and compiles nothing — the latch is already
        // resolved to `Overloaded`.
        if let Err(error) = self.inner.admit_submission(&options) {
            return Provider::shed(error);
        }
        let (token, control) = Provider::arm(&options);
        let state = QueryState::new();
        let completion = Arc::clone(&state);
        let provider = Arc::clone(&self.inner);
        provider.in_flight_guard().increment();
        let task: Box<dyn FnOnce() + Send + 'static> = Box::new(move || {
            let result = provider.run_submitted(&control, job, strategy, None);
            completion.complete(result);
            provider.release_submission();
            // Decrement before `provider` (this closure's own keep-alive
            // clone) drops at the end of the body: if this is the last
            // clone, `Provider::drop` then observes zero in-flight and
            // returns instead of waiting on itself.
            provider.in_flight_guard().decrement();
        });
        WorkerPool::global().spawn_as(options.class, task);
        (state, token)
    }

    /// The owned streaming spawn path shared by
    /// [`OwnedProvider::submit_stream`] and
    /// [`crate::OwnedPreparedQuery::submit_stream`]: like
    /// [`OwnedProvider::spawn_owned_parts`] but the task runs inside a
    /// stream scope wired to a bounded channel.
    pub(crate) fn spawn_streamed_owned(
        &self,
        job: Job,
        strategy: Strategy,
        options: QueryOptions,
    ) -> (Arc<QueryState>, Arc<CancelToken>, StreamReceiver) {
        if let Err(error) = self.inner.admit_submission(&options) {
            let (state, token) = Provider::shed(error.clone());
            let (sink, receiver) = mrq_common::stream::channel(1, Arc::clone(&token));
            sink.close(Some(error));
            return (state, token, receiver);
        }
        let (token, control) = Provider::arm(&options);
        let (sink, receiver) =
            mrq_common::stream::channel(options.stream_batch_rows, Arc::clone(&token));
        let state = QueryState::new();
        let completion = Arc::clone(&state);
        let provider = Arc::clone(&self.inner);
        provider.in_flight_guard().increment();
        let task: Box<dyn FnOnce() + Send + 'static> = Box::new(move || {
            let result = provider.run_submitted(&control, job, strategy, Some(&sink));
            let result = provider.finish_stream(&sink, result);
            completion.complete(result);
            provider.release_submission();
            // Same decrement-before-clone-drop ordering as
            // `spawn_owned_parts`.
            provider.in_flight_guard().decrement();
        });
        WorkerPool::global().spawn_as(options.class, task);
        (state, token, receiver)
    }

    /// The sealed provider itself (also reachable through `Deref`).
    pub fn provider(&self) -> &Provider<'static> {
        &self.inner
    }

    /// A clone of the keep-alive `Arc` — what an owned stream or future
    /// stores to mark itself non-blocking on drop.
    pub(crate) fn shared_arc(&self) -> Arc<Provider<'static>> {
        Arc::clone(&self.inner)
    }
}

impl Deref for OwnedProvider {
    type Target = Provider<'static>;

    fn deref(&self) -> &Provider<'static> {
        &self.inner
    }
}

/// The owned serving path must stay fully thread-mobile: handles clone and
/// cross threads, and the futures they mint are `'static` and `Send`. This
/// fails to compile if any field regresses.
#[allow(dead_code)]
fn _assert_owned_provider_is_send_sync() {
    fn assert_both<T: Send + Sync>() {}
    assert_both::<OwnedProvider>();
    fn assert_send<T: Send>() {}
    assert_send::<QueryFuture<'static>>();
    assert_send::<QueryStream<'static>>();
    fn assert_unpin<T: Unpin>() {}
    assert_unpin::<QueryFuture<'static>>();
    assert_unpin::<QueryStream<'static>>();
}
