//! Prepared queries: compile a statement once, execute it many times with
//! fresh parameter bindings.
//!
//! The paper's central trade (§7.4) is compilation cost against execution
//! speed: the compiled strategies beat the interpreted baseline only after
//! their up-front code-generation cost is amortized. A server handling
//! millions of requests pays that cost once per query *shape* — the
//! canonicalizer lifts every literal into a positional parameter slot, so
//! `price > 10` and `price > 99` share one plan — and executes the cached
//! plan for every request. This module is that serving path:
//!
//! * [`Provider::prepare`] canonicalizes a statement, keys it by
//!   ([`PlanKey`]: expression structure + [`Strategy`] + the bound sources'
//!   schemas) and compiles it through the provider's shared [`PlanCache`]
//!   (a sharded LRU from [`mrq_common::plancache`], sized by
//!   `MRQ_PLAN_CACHE_SHARDS` / `MRQ_PLAN_CACHE_CAP`);
//! * the returned [`PreparedQuery`] executes the plan with caller-supplied
//!   bindings — blocking ([`PreparedQuery::execute`]), queued on the worker
//!   pool ([`PreparedQuery::submit`]), as a waker-driven future
//!   ([`PreparedQuery::submit_async`]) or as an incremental batch stream
//!   ([`PreparedQuery::submit_stream`]) — under exactly the same
//!   [`QueryOptions`] lifecycle (cancel, deadline, QoS class) as ad-hoc
//!   submission;
//! * [`OwnedProvider::prepare`] is the `'static` counterpart for sealed
//!   providers: its [`OwnedPreparedQuery`] mints futures that escape the
//!   binding scope.
//!
//! Prepared execution is bit-identical to ad-hoc execution of the same
//! statement — the equivalence suite in `tests/prepared_equivalence.rs`
//! asserts this for every strategy × scheduler shape.

use crate::future::QueryFuture;
use crate::stream::QueryStream;
use crate::{
    CompiledQuery, Job, OwnedProvider, Provider, ProviderCatalog, QueryHandle, QueryOptions,
    Strategy,
};
use mrq_codegen::emit::{emit_source, Backend};
use mrq_codegen::exec::QueryOutput;
use mrq_codegen::spec::{lower, QuerySpec};
use mrq_common::plancache::ShardedLru;
use mrq_common::{MrqError, Result, Schema, Value};
use mrq_expr::optimize::optimize;
use mrq_expr::{canonicalize, Expr};
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

/// The identity of a cached plan: canonical expression structure, execution
/// [`Strategy`] (including any embedded parallel/hybrid configuration), and
/// the schemas of the sources the statement reads, in first-appearance
/// order.
///
/// Two statements that differ only in literal values produce equal keys
/// (literals are lifted into parameter slots before keying); changing the
/// strategy, or re-binding a source to a schema with different fields,
/// produces a different key and therefore a cache miss. Equality compares
/// the full canonical tree — the precomputed structural hash accelerates
/// shard selection and bucket lookup but never decides equality, so hash
/// collisions cannot alias two plans.
#[derive(Clone, PartialEq, Eq)]
pub struct PlanKey {
    shape_hash: u64,
    expr: Expr,
    strategy: Strategy,
    schemas: Vec<Schema>,
}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The canonical tree is folded into the precomputed structural hash;
        // strategy and schemas hash directly.
        self.shape_hash.hash(state);
        self.strategy.hash(state);
        self.schemas.hash(state);
    }
}

impl PlanKey {
    /// The canonical expression's structural hash (stable across literal
    /// values).
    pub fn shape_hash(&self) -> u64 {
        self.shape_hash
    }

    /// The strategy this plan was prepared for.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

/// The concrete plan cache [`Provider::prepare`] compiles through: a
/// sharded LRU ([`mrq_common::plancache::ShardedLru`]) from [`PlanKey`] to
/// the compiled artefact. Share one across providers with
/// [`Provider::set_plan_cache`].
pub type PlanCache = ShardedLru<PlanKey, CompiledQuery>;

impl<'a> Provider<'a> {
    /// Compiles a statement once — through the shared [`PlanCache`] — and
    /// returns a [`PreparedQuery`] that executes the plan with fresh
    /// parameter bindings, any number of times.
    ///
    /// The statement is optimized and canonicalized exactly as
    /// [`Provider::execute`] would: every literal becomes a positional
    /// parameter slot, and the literal values observed at prepare time
    /// become the plan's *default* bindings. The cache key is the canonical
    /// structure plus `strategy` plus the schemas of the bound sources, so
    /// a repeated `prepare` of the same shape is a cache hit that skips
    /// lowering and code generation entirely.
    ///
    /// # Examples
    ///
    /// ```
    /// use mrq_common::{DataType, Field, Schema, Value};
    /// use mrq_core::{Provider, Strategy};
    /// use mrq_engine_native::RowStore;
    /// use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};
    ///
    /// let schema = Schema::new("N", vec![Field::new("n", DataType::Int64)]);
    /// let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int64(i)]).collect();
    /// let store = RowStore::from_rows(schema, &rows);
    /// let mut provider = Provider::new();
    /// provider.bind_native(SourceId(0), &store);
    ///
    /// // Prepare once: the literal 10 becomes parameter slot 0.
    /// let stmt = Query::from_source(SourceId(0))
    ///     .where_(lam("x", Expr::binary(BinaryOp::Lt, col("x", "n"), lit(10i64))))
    ///     .select(lam("x", col("x", "n")))
    ///     .into_expr();
    /// let prepared = provider.prepare(stmt, Strategy::CompiledNative)?;
    ///
    /// // Execute many times with different bindings — no recompilation.
    /// assert_eq!(prepared.execute(&[Value::Int64(10)])?.rows.len(), 10);
    /// assert_eq!(prepared.execute(&[Value::Int64(25)])?.rows.len(), 25);
    /// // No bindings: the literals captured at prepare time.
    /// assert_eq!(prepared.execute(&[])?.rows.len(), 10);
    ///
    /// // One compilation, served from the cache thereafter.
    /// assert_eq!(provider.plan_cache_stats().entries, 1);
    /// # Ok::<(), mrq_common::MrqError>(())
    /// ```
    pub fn prepare(&self, expr: Expr, strategy: Strategy) -> Result<PreparedQuery<'_, 'a>> {
        let optimized = optimize(expr, self.optimizer);
        let canonical = canonicalize(optimized.expr);
        let rewrites = optimized.rewrites;
        let mut schemas = Vec::new();
        for source in canonical.expr.sources() {
            schemas.push(
                self.schema_of(source)
                    .ok_or_else(|| MrqError::Codegen(format!("source {source:?} is not bound")))?,
            );
        }
        let key = PlanKey {
            shape_hash: canonical.shape_hash,
            expr: canonical.expr.clone(),
            strategy,
            schemas,
        };
        let catalog = ProviderCatalog { provider: self };
        // The compile-and-insert composite is panic-isolated: a panic in
        // lowering/codegen (or injected at the `plancache.insert` fault
        // point) becomes a clean per-statement error, and the cache — whose
        // shard locks recover from poisoning — keeps serving other shapes.
        let compiled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.plan_cache.get_or_insert_with(&key, || {
                mrq_common::fault::point("plancache.insert")?;
                let start = Instant::now();
                let spec = lower(&canonical, &catalog)?;
                let csharp_source = emit_source(&spec, Backend::CSharp);
                let c_source = emit_source(&spec, Backend::C);
                Ok::<_, MrqError>(Arc::new(CompiledQuery {
                    spec,
                    csharp_source,
                    c_source,
                    rewrites,
                    generation_time: start.elapsed(),
                }))
            })
        }));
        let plan = match compiled {
            Ok(plan) => plan?,
            Err(payload) => return Err(MrqError::Internal(mrq_common::panic_message(payload))),
        };
        Ok(PreparedQuery {
            provider: self,
            plan,
            strategy,
            shape_hash: canonical.shape_hash,
            defaults: canonical.params,
        })
    }
}

/// A statement compiled once, executable many times with fresh parameter
/// bindings — the handle [`Provider::prepare`] returns.
///
/// Bindings are positional: slot `i` replaces the `i`-th literal of the
/// original statement (in canonicalization order; [`PreparedQuery::defaults`]
/// shows the prepare-time values, so the order is inspectable). Passing an
/// empty slice executes with the defaults. Supplying fewer values than the
/// plan reads is an error, not a panic — every engine checks arity before
/// touching a slot.
///
/// All four front ends accept bindings:
/// [`execute`](PreparedQuery::execute) runs on the calling thread;
/// [`submit`](PreparedQuery::submit) queues on the worker pool and returns
/// a [`QueryHandle`]; [`submit_async`](PreparedQuery::submit_async) returns
/// a [`QueryFuture`]; [`submit_stream`](PreparedQuery::submit_stream)
/// returns a [`QueryStream`] of in-order row batches. The submitted paths
/// skip compilation on the worker — the plan rides along — but are
/// otherwise identical to ad-hoc submission, including [`QueryOptions`]
/// deadlines, cancellation and QoS classes.
pub struct PreparedQuery<'p, 'a> {
    provider: &'p Provider<'a>,
    plan: Arc<CompiledQuery>,
    strategy: Strategy,
    shape_hash: u64,
    defaults: Vec<Value>,
}

impl<'p, 'a> PreparedQuery<'p, 'a> {
    /// Number of parameter slots the plan actually reads. Bindings must
    /// supply at least this many values (an empty slice means "use the
    /// defaults").
    pub fn param_slots(&self) -> usize {
        self.plan.spec.param_slots
    }

    /// The literal values captured at prepare time, in slot order — what an
    /// empty bindings slice executes with.
    pub fn defaults(&self) -> &[Value] {
        &self.defaults
    }

    /// The strategy the plan was prepared for.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The lowered plan (shared with the cache; eviction never invalidates
    /// it).
    pub fn spec(&self) -> &QuerySpec {
        &self.plan.spec
    }

    /// The full compiled artefact, including the generated sources.
    pub fn compiled(&self) -> &CompiledQuery {
        &self.plan
    }

    /// The parameter vector one execution uses: the caller's bindings, or
    /// the prepare-time defaults when `bindings` is empty. Arity is
    /// enforced downstream by [`QuerySpec::check_params`] so a submitted
    /// under-binding resolves its handle to an error instead of panicking a
    /// pool worker.
    fn params_for(&self, bindings: &[Value]) -> Vec<Value> {
        if bindings.is_empty() {
            self.defaults.clone()
        } else {
            bindings.to_vec()
        }
    }

    fn job(&self, bindings: &[Value]) -> Job {
        Job::Prepared {
            shape_hash: self.shape_hash,
            plan: Arc::clone(&self.plan),
            params: self.params_for(bindings),
        }
    }

    /// Executes the prepared plan with the given bindings on the calling
    /// thread. Bit-identical to [`Provider::execute`] of the equivalent
    /// statement with the bindings inlined as literals; result recycling
    /// (when enabled) applies with the bound parameter values as part of
    /// the key.
    pub fn execute(&self, bindings: &[Value]) -> Result<QueryOutput> {
        self.provider.execute_plan(
            self.shape_hash,
            &self.plan.spec,
            &self.params_for(bindings),
            self.strategy,
        )
    }

    /// Queues one execution with the given bindings on the worker pool and
    /// returns immediately with a [`QueryHandle`] — identical semantics to
    /// [`Provider::submit`] (deadline armed at submission, QoS class
    /// routing), minus the compilation (the plan rides along with the
    /// task). Pass `QueryOptions::default()` for no lifecycle controls.
    pub fn submit(&self, bindings: &[Value], options: QueryOptions) -> QueryHandle<'p> {
        let (state, token) =
            self.provider
                .spawn_submitted(self.job(bindings), self.strategy, options);
        QueryHandle {
            state,
            token,
            _provider: PhantomData,
        }
    }

    /// Queues one execution with the given bindings and returns a
    /// waker-driven [`QueryFuture`] — the async counterpart of
    /// [`PreparedQuery::submit`], matching [`Provider::submit_async`]'s
    /// lifecycle exactly.
    pub fn submit_async(&self, bindings: &[Value], options: QueryOptions) -> QueryFuture<'p> {
        let (state, token) =
            self.provider
                .spawn_submitted(self.job(bindings), self.strategy, options);
        QueryFuture::new(state, token, None)
    }

    /// Queues one execution with the given bindings and returns a
    /// [`QueryStream`] of in-order row batches — the prepared counterpart
    /// of [`Provider::submit_stream`], with the same ordered-frontier
    /// publication, deterministic batching and backpressure. Note that a
    /// streamed execution bypasses result recycling (its rows leave through
    /// the channel, so there is no complete output to cache or recycle).
    pub fn submit_stream(&self, bindings: &[Value], options: QueryOptions) -> QueryStream<'p> {
        let (state, token, receiver) =
            self.provider
                .spawn_streamed(self.job(bindings), self.strategy, options);
        QueryStream::new(state, token, receiver, None)
    }
}

impl OwnedProvider {
    /// The `'static` counterpart of [`Provider::prepare`]: compiles through
    /// the sealed provider's [`PlanCache`] and returns an
    /// [`OwnedPreparedQuery`] whose futures escape the binding scope (and
    /// whose tasks each keep the provider alive with their own clone).
    pub fn prepare(&self, expr: Expr, strategy: Strategy) -> Result<OwnedPreparedQuery> {
        let prepared = self.provider().prepare(expr, strategy)?;
        let plan = Arc::clone(&prepared.plan);
        let shape_hash = prepared.shape_hash;
        let defaults = prepared.defaults.clone();
        Ok(OwnedPreparedQuery {
            provider: self.clone(),
            plan,
            strategy,
            shape_hash,
            defaults,
        })
    }
}

/// A prepared statement over a sealed [`OwnedProvider`]: cloneable,
/// `'static`, and shareable across server threads — each clone (and each
/// in-flight submission) keeps the provider and its bindings alive.
///
/// Binding semantics match [`PreparedQuery`]: positional values, empty
/// slice for the prepare-time defaults, arity checked before execution.
#[derive(Clone)]
pub struct OwnedPreparedQuery {
    provider: OwnedProvider,
    plan: Arc<CompiledQuery>,
    strategy: Strategy,
    shape_hash: u64,
    defaults: Vec<Value>,
}

impl OwnedPreparedQuery {
    /// Number of parameter slots the plan reads.
    pub fn param_slots(&self) -> usize {
        self.plan.spec.param_slots
    }

    /// The literal values captured at prepare time, in slot order.
    pub fn defaults(&self) -> &[Value] {
        &self.defaults
    }

    /// The strategy the plan was prepared for.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The job one submission carries: the shared plan plus the caller's
    /// bindings (or the prepare-time defaults for an empty slice).
    fn job(&self, bindings: &[Value]) -> Job {
        let params = if bindings.is_empty() {
            self.defaults.clone()
        } else {
            bindings.to_vec()
        };
        Job::Prepared {
            shape_hash: self.shape_hash,
            plan: Arc::clone(&self.plan),
            params,
        }
    }

    /// Executes the prepared plan with the given bindings on the calling
    /// thread.
    pub fn execute(&self, bindings: &[Value]) -> Result<QueryOutput> {
        let params = if bindings.is_empty() {
            self.defaults.clone()
        } else {
            bindings.to_vec()
        };
        self.provider.provider().execute_plan(
            self.shape_hash,
            &self.plan.spec,
            &params,
            self.strategy,
        )
    }

    /// Queues one execution with the given bindings and returns a `'static`
    /// [`QueryHandle`] — the prepared counterpart of
    /// [`OwnedProvider::submit`], with the same unified
    /// `(bindings, options)` signature as [`PreparedQuery::submit`].
    pub fn submit(&self, bindings: &[Value], options: QueryOptions) -> QueryHandle<'static> {
        let (state, token) =
            self.provider
                .spawn_owned_parts(self.job(bindings), self.strategy, options);
        QueryHandle {
            state,
            token,
            _provider: PhantomData,
        }
    }

    /// Queues one execution with the given bindings and returns a `'static`
    /// [`QueryFuture`] that can escape this scope entirely — the prepared
    /// counterpart of [`OwnedProvider::submit_async`], with the same
    /// non-blocking-drop semantics.
    pub fn submit_async(&self, bindings: &[Value], options: QueryOptions) -> QueryFuture<'static> {
        self.provider
            .spawn_owned(self.job(bindings), self.strategy, options)
    }

    /// Queues one execution with the given bindings and returns a `'static`
    /// [`QueryStream`] of in-order row batches — the prepared counterpart
    /// of [`OwnedProvider::submit_stream`]: dropping it mid-way cancels the
    /// query without blocking, because the task keeps its own provider
    /// clone alive.
    pub fn submit_stream(&self, bindings: &[Value], options: QueryOptions) -> QueryStream<'static> {
        let (state, token, receiver) =
            self.provider
                .spawn_streamed_owned(self.job(bindings), self.strategy, options);
        QueryStream::new(state, token, receiver, Some(self.provider.shared_arc()))
    }
}
