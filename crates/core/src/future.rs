//! The executor-agnostic async front end: [`QueryFuture`] and the
//! waker-slot + condvar completion latch behind it.
//!
//! A submitted query completes exactly once, on a pool worker. Before this
//! module, the only way to observe that completion was the latch's condvar
//! (block in `join`) or polling `is_finished` in a loop. [`QueryState`] is
//! the same latch extended with a *waker slot*: an async caller's
//! [`Waker`], registered by [`QueryFuture::poll`], is stored next to the
//! condvar and woken exactly once when the task completes. Blocking `join`
//! and async `poll` therefore coexist on one latch — a future can be polled
//! a few times from a mini-executor and then `join`ed synchronously, or the
//! other way round — and one serving thread can multiplex thousands of
//! in-flight queries without a blocked OS thread per query.
//!
//! Nothing here depends on an executor: [`QueryFuture`] is a plain
//! [`Future`] + [`Unpin`] type driven by whatever polls it — tokio,
//! async-std, or the dependency-free `block_on` mini-executor shipped in
//! `examples/async_server.rs`. See `docs/SERVING.md` for the waker
//! lifecycle in full.

use mrq_codegen::exec::QueryOutput;
use mrq_common::cancel::CancelToken;
use mrq_common::{Result, WakerSlot};
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};

/// Completion channel between a submitted query task and its handle or
/// future: a condvar latch (blocking `join`) plus a waker slot (async
/// `poll`), completed exactly once by the pool task.
pub(crate) struct QueryState {
    slot: Mutex<QuerySlot>,
    done: Condvar,
}

struct QuerySlot {
    /// True once the task finished (stays true after the result is taken).
    finished: bool,
    /// The outcome, present from completion until the handle takes it.
    result: Option<Result<QueryOutput>>,
    /// The waker of the most recent `poll`, if any. Completion takes and
    /// wakes it exactly once; re-polling before completion replaces it
    /// (the latest poll's waker wins, per the `Future` contract). The same
    /// [`WakerSlot`] type backs the stream channel's per-batch wakes.
    waker: WakerSlot,
}

impl QueryState {
    pub(crate) fn new() -> Arc<QueryState> {
        Arc::new(QueryState {
            slot: Mutex::new(QuerySlot {
                finished: false,
                result: None,
                waker: WakerSlot::new(),
            }),
            done: Condvar::new(),
        })
    }

    /// A latch that is already resolved to `result`: what a shed
    /// submission's handle or future wraps. No task exists; `join`/`poll`
    /// return immediately and drop-waits are trivially satisfied.
    pub(crate) fn completed(result: Result<QueryOutput>) -> Arc<QueryState> {
        Arc::new(QueryState {
            slot: Mutex::new(QuerySlot {
                finished: true,
                result: Some(result),
                waker: WakerSlot::new(),
            }),
            done: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, QuerySlot> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Completes the latch: publishes the result, releases every blocked
    /// `join`, and wakes the registered waker (if any) exactly once. The
    /// waker is invoked *after* the slot lock is released, so a waker that
    /// immediately re-polls from another thread cannot deadlock against
    /// this call.
    ///
    /// Completion is panic-isolated: this latch is the last line between a
    /// finished task and a joiner blocked forever, so the
    /// `future.complete` fault point (and any panic it injects) is caught
    /// here and folded into the published result rather than allowed to
    /// skip the notify.
    pub(crate) fn complete(&self, result: Result<QueryOutput>) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let result = match catch_unwind(AssertUnwindSafe(|| {
            mrq_common::fault::point("future.complete")
        })) {
            Ok(Ok(())) => result,
            Ok(Err(injected)) => Err(injected),
            Err(payload) => Err(mrq_common::MrqError::Internal(mrq_common::panic_message(
                payload,
            ))),
        };
        let waker = {
            let mut slot = self.lock();
            slot.result = Some(result);
            slot.finished = true;
            slot.waker.take()
        };
        self.done.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// True once the task finished. Non-blocking.
    pub(crate) fn is_finished(&self) -> bool {
        self.lock().finished
    }

    /// Blocks until the task finished, then takes the result.
    pub(crate) fn wait_take(&self) -> Result<QueryOutput> {
        let mut slot = self.lock();
        while !slot.finished {
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        slot.result
            .take()
            .expect("a query result is joined at most once")
    }

    /// Blocks until the task finished without consuming the result.
    pub(crate) fn wait_finished(&self) {
        let mut slot = self.lock();
        while !slot.finished {
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// One async poll step: takes the result if the task finished, else
    /// registers (or refreshes) `waker` to be woken on completion.
    fn poll_take(&self, waker: &Waker) -> Poll<Result<QueryOutput>> {
        let mut slot = self.lock();
        if slot.finished {
            return Poll::Ready(
                slot.result
                    .take()
                    .expect("a QueryFuture must not be polled after it returned Ready"),
            );
        }
        // Re-registration across polls: the slot keeps an equivalent waker,
        // replaces a stale one (an executor may migrate the task between
        // polls).
        slot.waker.register(waker);
        Poll::Pending
    }

    /// Drops any registered waker (called when a future is dropped before
    /// completion, so the completing task does not wake a dead task slot).
    fn clear_waker(&self) {
        self.lock().waker.clear();
    }
}

/// A query in flight on the worker pool, as a [`Future`].
///
/// Returned by `Provider::submit_async` (borrowed — the future cannot
/// outlive the provider) and `OwnedProvider::submit_async` (`'static` — the
/// future can escape the binding scope and be driven from any thread). The
/// output is exactly what `Provider::execute` would have returned for the
/// same statement and strategy: `Ok(QueryOutput)` bit-identical to the
/// sequential engines, or the error — including
/// [`QueryError::Cancelled`](crate::QueryError::Cancelled) after
/// [`QueryFuture::cancel`] and
/// [`QueryError::DeadlineExceeded`](crate::QueryError::DeadlineExceeded)
/// when the submission's deadline lapses.
///
/// The future is [`Unpin`] and executor-agnostic: poll it from any
/// executor, or skip executors entirely — [`QueryFuture::join`] blocks on
/// the same completion latch the waker hangs off. Polling it after it
/// returned [`Poll::Ready`] panics (the result is moved out), like most
/// one-shot futures.
///
/// # Waker lifecycle
///
/// Each `poll` stores the caller's [`Waker`] in the completion latch
/// (replacing a stale one, so re-registration across polls and executor
/// migrations is safe). The pool task wakes it **exactly once**, when the
/// query completes — normally, with an error, cancelled, or past its
/// deadline. Cancelled queries complete within ~4096 rows (the intra-morsel
/// checkpoint cadence): remaining morsels retire unrun and the retirement
/// itself fires the latch, so the waker is not left waiting on work that
/// will never run. Dropping the future unregisters its waker.
///
/// # Drop semantics
///
/// Dropping an *owned* future (from `OwnedProvider::submit_async`) is
/// non-blocking and never leaks: the in-flight task holds its own provider
/// handle, finishes in the background, and releases everything it holds.
/// Dropping a *borrowed* future blocks until the query finished, exactly
/// like `QueryHandle` — that wait is what lets the pool task borrow the
/// provider safely. Either way `Provider::drop` still waits for every
/// in-flight submission, so teardown can never race a running query.
///
/// # Examples
///
/// A future driven without any async runtime — a ~15-line `block_on` built
/// on [`std::task::Wake`] and thread parking (the same mini-executor
/// `examples/async_server.rs` uses to multiplex many of these on one
/// thread):
///
/// ```
/// # use mrq_common::{DataType, Field, Schema, Value};
/// # use mrq_core::{Provider, QueryOptions, Strategy};
/// # use mrq_engine_native::RowStore;
/// # use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};
/// # use std::future::Future;
/// # use std::pin::pin;
/// # use std::sync::Arc;
/// # use std::task::{Context, Poll, Wake, Waker};
/// # struct Unpark(std::thread::Thread);
/// # impl Wake for Unpark {
/// #     fn wake(self: Arc<Self>) {
/// #         self.0.unpark();
/// #     }
/// # }
/// fn block_on<F: Future>(future: F) -> F::Output {
///     let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
///     let mut context = Context::from_waker(&waker);
///     let mut future = pin!(future);
///     loop {
///         match future.as_mut().poll(&mut context) {
///             Poll::Ready(output) => return output,
///             Poll::Pending => std::thread::park(),
///         }
///     }
/// }
///
/// # let schema = Schema::new("N", vec![Field::new("n", DataType::Int64)]);
/// # let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int64(i)]).collect();
/// # let store = RowStore::from_rows(schema, &rows);
/// # let mut provider = Provider::new();
/// # provider.bind_native(SourceId(0), &store);
/// # let stmt = Query::from_source(SourceId(0))
/// #     .where_(lam("x", Expr::binary(BinaryOp::Lt, col("x", "n"), lit(10i64))))
/// #     .select(lam("x", col("x", "n")))
/// #     .into_expr();
/// let future = provider.submit_async(stmt, Strategy::CompiledNative, QueryOptions::new());
/// let out = block_on(future)?;
/// assert_eq!(out.rows.len(), 10);
/// # Ok::<(), mrq_core::QueryError>(())
/// ```
///
/// Futures from a prepared plan: the statement compiles once
/// ([`Provider::prepare`](crate::Provider::prepare)), then each
/// `submit_async` binds fresh parameter values — here the filter cutoff —
/// and skips straight to execution. Every option (deadline, QoS class,
/// cancellation) works identically to an ad-hoc submission:
///
/// ```
/// # use mrq_common::{DataType, Field, Schema, Value};
/// # use mrq_core::{Provider, QueryOptions, Strategy};
/// # use mrq_engine_native::RowStore;
/// # use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};
/// # let schema = Schema::new("N", vec![Field::new("n", DataType::Int64)]);
/// # let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int64(i)]).collect();
/// # let store = RowStore::from_rows(schema, &rows);
/// # let mut provider = Provider::new();
/// # provider.bind_native(SourceId(0), &store);
/// # let stmt = Query::from_source(SourceId(0))
/// #     .where_(lam("x", Expr::binary(BinaryOp::Lt, col("x", "n"), lit(10i64))))
/// #     .select(lam("x", col("x", "n")))
/// #     .into_expr();
/// let prepared = provider.prepare(stmt, Strategy::CompiledNative)?;
/// for cutoff in [10i64, 25, 50] {
///     let future = prepared.submit_async(&[Value::Int64(cutoff)], QueryOptions::new());
///     assert_eq!(future.join()?.rows.len(), cutoff as usize);
/// }
/// assert_eq!(provider.plan_cache_stats().entries, 1);
/// # Ok::<(), mrq_core::QueryError>(())
/// ```
pub struct QueryFuture<'p> {
    state: Arc<QueryState>,
    token: Arc<CancelToken>,
    /// `Some` for futures from an `OwnedProvider`: the task keeps its own
    /// provider handle alive, so dropping the future is non-blocking; this
    /// clone only marks the future as owned (and is released on drop —
    /// nothing leaks). `None` for borrowed futures, whose drop must block
    /// exactly like `QueryHandle`'s.
    owner: Option<Arc<crate::Provider<'static>>>,
    _provider: PhantomData<&'p ()>,
}

impl<'p> QueryFuture<'p> {
    pub(crate) fn new(
        state: Arc<QueryState>,
        token: Arc<CancelToken>,
        owner: Option<Arc<crate::Provider<'static>>>,
    ) -> QueryFuture<'p> {
        QueryFuture {
            state,
            token,
            owner,
            _provider: PhantomData,
        }
    }

    /// True once the query finished (successfully or not). Non-blocking.
    pub fn is_finished(&self) -> bool {
        self.state.is_finished()
    }

    /// Requests cooperative cancellation, exactly like
    /// [`QueryHandle::cancel`](crate::QueryHandle::cancel): the token trips,
    /// in-flight morsels stop at the next intra-morsel checkpoint (~4096
    /// rows), unclaimed morsels retire unrun, and the future resolves to
    /// [`QueryError::Cancelled`](crate::QueryError::Cancelled) — waking its
    /// registered waker — unless the query completed first, in which case
    /// the completed result stands. Idempotent and non-blocking.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the query finished and returns its result — the
    /// synchronous escape hatch on the same completion latch the waker
    /// uses. A future polled a few times and then `join`ed behaves
    /// identically to one driven to `Ready`.
    pub fn join(self) -> Result<QueryOutput> {
        self.state.wait_take()
    }
}

impl Future for QueryFuture<'_> {
    type Output = Result<QueryOutput>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.state.poll_take(cx.waker())
    }
}

impl Drop for QueryFuture<'_> {
    /// Unregisters the waker; a borrowed future then waits for the query
    /// (the lifetime-erasure safety contract), while an owned future
    /// returns immediately — its task self-keeps-alive.
    fn drop(&mut self) {
        self.state.clear_waker();
        if self.owner.is_none() {
            self.state.wait_finished();
        }
    }
}
