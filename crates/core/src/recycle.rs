//! Query-result recycling.
//!
//! The paper's future-work list (§9) includes "query result caching" in the
//! style of the authors' recycling work \[15\]: applications driven by GUIs
//! re-issue the same parameterised statements over data that changes rarely,
//! so materialised results can be reused outright instead of re-evaluating
//! the (already compiled) query.
//!
//! [`ResultCache`] keys a materialised [`QueryOutput`] by the statement's
//! canonical shape, its bound parameter values, and a fingerprint of the
//! bound collections (their lengths). The provider additionally stamps every
//! entry with its own invalidation epoch: applications that mutate objects in
//! place call [`Provider::invalidate_results`](crate::Provider::invalidate_results)
//! to drop every cached result at once, while appends to collections
//! invalidate automatically through the fingerprint.

use mrq_codegen::exec::QueryOutput;
use mrq_common::hash::FxHashMap;
use mrq_common::Value;
use mrq_expr::SourceId;
use std::sync::Arc;

/// Identity of one materialised result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultKey {
    /// Canonical shape hash of the statement.
    pub shape_hash: u64,
    /// Parameter values bound to this instance.
    pub params: Vec<Value>,
    /// `(source, rows)` fingerprint of every bound collection the statement
    /// reads, in slot order.
    pub sources: Vec<(SourceId, usize)>,
    /// Provider invalidation epoch at insertion time.
    pub epoch: u64,
}

/// Hit/miss counters for the result cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecycleStats {
    /// Results served from the cache.
    pub hits: u64,
    /// Executions that had to run the query.
    pub misses: u64,
    /// Entries dropped because their epoch or fingerprint went stale.
    pub evicted: u64,
    /// Entries currently stored.
    pub entries: usize,
}

struct Entry {
    key: ResultKey,
    output: Arc<QueryOutput>,
}

/// A cache of materialised query results keyed by [`ResultKey`].
#[derive(Default)]
pub struct ResultCache {
    buckets: FxHashMap<u64, Vec<Entry>>,
    stats: RecycleStats,
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Looks up a result for the key. Entries whose epoch differs from the
    /// key's are evicted on the way.
    pub fn lookup(&mut self, key: &ResultKey) -> Option<Arc<QueryOutput>> {
        let evicted = &mut self.stats.evicted;
        let bucket = self.buckets.entry(key.shape_hash).or_default();
        bucket.retain(|entry| {
            let fresh = entry.key.epoch == key.epoch;
            if !fresh {
                *evicted += 1;
            }
            fresh
        });
        let found = bucket
            .iter()
            .find(|entry| entry.key.params == key.params && entry.key.sources == key.sources)
            .map(|entry| entry.output.clone());
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Stores a result under the key, replacing any entry with the same
    /// identity.
    pub fn insert(&mut self, key: ResultKey, output: Arc<QueryOutput>) {
        let bucket = self.buckets.entry(key.shape_hash).or_default();
        bucket
            .retain(|entry| !(entry.key.params == key.params && entry.key.sources == key.sources));
        bucket.push(Entry { key, output });
    }

    /// Removes every cached result.
    pub fn clear(&mut self) {
        self.buckets.clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> RecycleStats {
        let mut stats = self.stats;
        stats.entries = self.buckets.values().map(Vec::len).sum();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_common::Schema;

    fn output(n: i64) -> Arc<QueryOutput> {
        Arc::new(QueryOutput {
            schema: Schema::new("R", vec![]),
            rows: vec![vec![Value::Int64(n)]],
            work: Default::default(),
        })
    }

    fn key(shape: u64, param: i64, rows: usize, epoch: u64) -> ResultKey {
        ResultKey {
            shape_hash: shape,
            params: vec![Value::Int64(param)],
            sources: vec![(SourceId(0), rows)],
            epoch,
        }
    }

    #[test]
    fn identical_key_hits_after_insert() {
        let mut cache = ResultCache::new();
        assert!(cache.lookup(&key(1, 7, 100, 0)).is_none());
        cache.insert(key(1, 7, 100, 0), output(42));
        let hit = cache.lookup(&key(1, 7, 100, 0)).expect("hit");
        assert_eq!(hit.rows[0][0], Value::Int64(42));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn different_parameters_miss() {
        let mut cache = ResultCache::new();
        cache.insert(key(1, 7, 100, 0), output(1));
        assert!(cache.lookup(&key(1, 8, 100, 0)).is_none());
    }

    #[test]
    fn collection_growth_invalidates_through_the_fingerprint() {
        let mut cache = ResultCache::new();
        cache.insert(key(1, 7, 100, 0), output(1));
        assert!(cache.lookup(&key(1, 7, 101, 0)).is_none());
        // The stale-by-fingerprint entry stays until its epoch changes, but is
        // never returned for the new fingerprint.
        assert!(cache.lookup(&key(1, 7, 100, 0)).is_some());
    }

    #[test]
    fn epoch_bump_evicts_entries() {
        let mut cache = ResultCache::new();
        cache.insert(key(1, 7, 100, 0), output(1));
        assert!(cache.lookup(&key(1, 7, 100, 1)).is_none());
        assert_eq!(cache.stats().evicted, 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn insert_replaces_same_identity() {
        let mut cache = ResultCache::new();
        cache.insert(key(1, 7, 100, 0), output(1));
        cache.insert(key(1, 7, 100, 0), output(2));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(
            cache.lookup(&key(1, 7, 100, 0)).unwrap().rows[0][0],
            Value::Int64(2)
        );
    }

    #[test]
    fn clear_empties_everything() {
        let mut cache = ResultCache::new();
        cache.insert(key(1, 7, 100, 0), output(1));
        cache.insert(key(2, 7, 100, 0), output(1));
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
