//! The streaming front end: [`QueryStream`], an in-order sequence of row
//! batches from a query that is still executing.
//!
//! `Provider::submit_stream` wires a submitted query to a bounded batch
//! channel ([`mrq_common::stream`]): streamable shapes publish completed
//! morsels at an ordered frontier while the query runs, and the stream
//! yields them as `Vec<Vec<Value>>` batches in exactly the order the
//! materialised [`QueryOutput`](mrq_codegen::exec::QueryOutput) would hold
//! the rows. Concatenating every batch therefore reproduces
//! `Provider::execute`'s result bit for bit — for every strategy, thread
//! count and stealing mode — while the first batch arrives after roughly
//! one checkpoint of work instead of after the whole scan (time-to-first-row
//! vs time-to-last-row; see `docs/SERVING.md`).
//!
//! The channel is bounded ([`mrq_common::stream::CHANNEL_BATCHES`] batches):
//! a consumer that stops reading exerts backpressure — workers pause at
//! their next intra-morsel checkpoint — instead of letting the result pile
//! up in memory. Dropping the stream disconnects the channel and trips the
//! query's [`CancelToken`], so an abandoned stream costs at most one more
//! checkpoint interval of work.

use crate::future::QueryState;
use mrq_common::cancel::CancelToken;
use mrq_common::stream::{RowBatch, StreamReceiver};
use mrq_common::Result;
use std::marker::PhantomData;
use std::sync::Arc;
use std::task::{Context, Poll};

/// A query in flight on the worker pool, consumed as in-order row batches
/// while it executes.
///
/// Returned by `Provider::submit_stream` (borrowed — the stream cannot
/// outlive the provider), `OwnedProvider::submit_stream` (`'static`), and
/// the prepared-query equivalents. Three consumption styles share the one
/// channel:
///
/// * **Blocking iteration** — `for batch in stream { ... }`; the stream is
///   an [`Iterator`] of `Result<RowBatch>`.
/// * **Blocking, one batch at a time** — [`QueryStream::next_batch`].
/// * **Async** — [`QueryStream::poll_next_batch`] registers the caller's
///   waker on the channel (same waker-slot design as
///   [`QueryFuture`](crate::QueryFuture)) and wakes it when the next batch
///   is published, the query fails, or the stream ends.
///
/// Batch boundaries are deterministic: rows are re-chunked into
/// `QueryOptions::stream_batch_rows`-sized batches from the totally ordered
/// output sequence, so the batch sequence — not just its concatenation — is
/// identical across scheduler configurations.
///
/// # Error and end-of-stream semantics
///
/// The stream yields `Some(Ok(batch))` per batch, then either `None` (the
/// query completed; every row was delivered) or one `Some(Err(_))` — the
/// query's lifecycle error (cancelled, deadline exceeded, engine failure)
/// delivered *after* every batch that was published before the failure,
/// then `None` forever. A deadline that expires mid-stream therefore
/// surfaces as a trailing
/// [`QueryError::DeadlineExceeded`](crate::QueryError::DeadlineExceeded)
/// item, exactly where the row sequence stops.
///
/// # Drop semantics
///
/// Dropping the stream — consumed to the end or abandoned mid-way —
/// disconnects the channel and cancels the query via its token. A borrowed
/// stream then waits for the task to unwind (the same lifetime-erasure
/// safety contract as [`QueryHandle`](crate::QueryHandle)'s drop-wait;
/// bounded by one checkpoint, since the disconnect unblocks any producer
/// waiting on a full channel). A stream from an
/// [`OwnedProvider`](crate::OwnedProvider) (`owner.is_some()`) skips the
/// wait entirely — its task keeps the provider alive on its own.
pub struct QueryStream<'p> {
    /// `Some` until `Drop` takes it; disconnecting the receiver *before*
    /// waiting for the task is what bounds the drop-wait.
    receiver: Option<StreamReceiver>,
    state: Arc<QueryState>,
    token: Arc<CancelToken>,
    /// `Some` for streams from an `OwnedProvider`: the task keeps its own
    /// provider handle alive, so dropping the stream is non-blocking.
    owner: Option<Arc<crate::Provider<'static>>>,
    _provider: PhantomData<&'p ()>,
}

impl<'p> QueryStream<'p> {
    pub(crate) fn new(
        state: Arc<QueryState>,
        token: Arc<CancelToken>,
        receiver: StreamReceiver,
        owner: Option<Arc<crate::Provider<'static>>>,
    ) -> QueryStream<'p> {
        QueryStream {
            receiver: Some(receiver),
            state,
            token,
            owner,
            _provider: PhantomData,
        }
    }

    /// Blocks until the next batch is published and returns it — or the
    /// query's error (once, after all pre-failure batches), or `None` at
    /// end of stream. The iterator facade calls exactly this.
    pub fn next_batch(&mut self) -> Option<Result<RowBatch>> {
        self.receiver.as_mut()?.recv_blocking()
    }

    /// One async poll step: returns the next batch if one is queued,
    /// otherwise registers (or refreshes) the caller's waker to be woken
    /// when a batch is published or the stream closes.
    ///
    /// `Poll::Ready(None)` is the end of the stream; like most one-shot
    /// wake protocols the waker is woken once per published batch, so a
    /// driver should poll until `Pending` before parking. The stream is
    /// `Unpin`; no pinning ceremony is needed.
    pub fn poll_next_batch(&mut self, cx: &mut Context<'_>) -> Poll<Option<Result<RowBatch>>> {
        match self.receiver.as_mut() {
            Some(receiver) => receiver.poll_recv(cx.waker()),
            None => Poll::Ready(None),
        }
    }

    /// Requests cooperative cancellation without consuming the stream:
    /// workers stop at their next checkpoint (~4096 rows), already-published
    /// batches remain readable, and the stream then yields
    /// [`QueryError::Cancelled`](crate::QueryError::Cancelled) — unless the
    /// query completed first. Idempotent and non-blocking.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// True once the query's task finished (successfully or not) — the
    /// channel may still hold published batches to drain. Non-blocking.
    pub fn is_finished(&self) -> bool {
        self.state.is_finished()
    }
}

impl Iterator for QueryStream<'_> {
    type Item = Result<RowBatch>;

    fn next(&mut self) -> Option<Result<RowBatch>> {
        self.next_batch()
    }
}

impl Drop for QueryStream<'_> {
    /// Disconnects the channel (unblocking any backpressured producer),
    /// trips the cancel token, and — for borrowed streams only — waits for
    /// the task to finish, so in-flight work never outlives the provider's
    /// bindings.
    fn drop(&mut self) {
        drop(self.receiver.take());
        self.token.cancel();
        if self.owner.is_none() {
            self.state.wait_finished();
        }
    }
}
