//! The "compiled C" strategy (§5): fused execution over flat row stores.
//!
//! When the source data lives in fixed-length arrays of value-type structs,
//! the paper hands the whole query to generated native C code: rows are
//! consecutive in memory, field access is an offset into the current row,
//! strings are flat byte ranges, and deferred execution is driven through a
//! context struct whose `EvaluateQuery` function is called once per result
//! element.
//!
//! This crate provides that representation ([`RowStore`]: a packed row-major
//! byte buffer with a string arena) plus the deferred-execution wrapper
//! ([`QueryContext`]). The fused algorithm itself is the shared compiled
//! template of [`mrq_codegen::exec`], instantiated here over flat buffers —
//! mirroring how the generated C of the paper shares its structure with the
//! generated C# but reads a row store instead of chasing object references.

#![warn(missing_docs)]

use mrq_codegen::exec::{execute_once, QueryOutput, TableAccess};
use mrq_codegen::spec::QuerySpec;
use mrq_common::trace::{AccessKind, MemTracer};
use mrq_common::{DataType, Date, Decimal, MrqError, Result, Schema, Value};
use std::cell::RefCell;

pub mod index;
pub mod parallel;

pub use index::HashIndex;
pub use parallel::{execute_indexed, execute_parallel, ParallelConfig};

/// Per-column layout inside a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnLayout {
    /// Byte offset within the row.
    pub offset: usize,
    /// The column's type.
    pub dtype: DataType,
}

/// A packed, row-major table: the `array of structs` of §5.
///
/// Every row occupies `stride` bytes; fixed-width values are stored at their
/// column offsets; string columns store a 4-byte offset into a shared string
/// arena whose entries are length-prefixed UTF-8.
#[derive(Debug, Clone)]
pub struct RowStore {
    schema: Schema,
    columns: Vec<ColumnLayout>,
    stride: usize,
    data: Vec<u8>,
    strings: Vec<u8>,
    len: usize,
    /// Simulated base address used for cache tracing (row stores are
    /// contiguous, so sequential scans touch consecutive lines).
    base_addr: u64,
}

/// Computes a packed layout for a schema: 8-byte-aligned fields first is not
/// necessary because every width is 1, 4 or 8 and we lay fields out in
/// declaration order with natural alignment padding (what a C compiler does
/// for the generated struct definitions).
fn layout(schema: &Schema) -> (Vec<ColumnLayout>, usize) {
    let mut columns = Vec::with_capacity(schema.len());
    let mut offset = 0usize;
    for field in schema.fields() {
        let width = field.dtype.native_width();
        let align = field.dtype.native_align();
        offset = offset.div_ceil(align) * align;
        columns.push(ColumnLayout {
            offset,
            dtype: field.dtype,
        });
        offset += width;
    }
    let stride = offset.div_ceil(8) * 8;
    (columns, stride.max(8))
}

impl RowStore {
    /// Creates an empty row store for a schema.
    pub fn new(schema: Schema) -> Self {
        let (columns, stride) = layout(&schema);
        RowStore {
            schema,
            columns,
            stride,
            data: Vec::new(),
            strings: Vec::new(),
            len: 0,
            base_addr: 0x4000_0000_0000,
        }
    }

    /// Creates a row store and loads the given value rows.
    pub fn from_rows(schema: Schema, rows: &[Vec<Value>]) -> Self {
        let mut store = RowStore::new(schema);
        store.data.reserve(rows.len() * store.stride);
        for row in rows {
            store.push_values(row);
        }
        store
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Bytes per row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total payload bytes (rows plus string arena) — the staging footprint
    /// the paper reports for full materialisation.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() + self.strings.len()
    }

    /// Appends one row given as dynamic values in schema order.
    pub fn push_values(&mut self, values: &[Value]) {
        assert_eq!(values.len(), self.schema.len(), "row arity mismatch");
        let start = self.len * self.stride;
        self.data.resize(start + self.stride, 0);
        for (col, value) in values.iter().enumerate() {
            let lay = self.columns[col];
            let at = start + lay.offset;
            match (lay.dtype, value) {
                (DataType::Bool, v) => self.data[at] = v.as_bool() as u8,
                (DataType::Int32, v) => self.data[at..at + 4]
                    .copy_from_slice(&(v.as_i64().unwrap_or(0) as i32).to_le_bytes()),
                (DataType::Date, v) => self.data[at..at + 4].copy_from_slice(
                    &v.as_date()
                        .map(|d| d.epoch_days())
                        .unwrap_or(0)
                        .to_le_bytes(),
                ),
                (DataType::Int64, v) => {
                    self.data[at..at + 8].copy_from_slice(&v.as_i64().unwrap_or(0).to_le_bytes())
                }
                (DataType::Decimal, v) => self.data[at..at + 8]
                    .copy_from_slice(&v.as_decimal().unwrap_or(Decimal::ZERO).raw().to_le_bytes()),
                (DataType::Float64, v) => {
                    self.data[at..at + 8].copy_from_slice(&v.as_f64().unwrap_or(0.0).to_le_bytes())
                }
                (DataType::Str, v) => {
                    let s = v.as_str().unwrap_or("");
                    let arena_offset = self.intern_string(s);
                    self.data[at..at + 4].copy_from_slice(&arena_offset.to_le_bytes());
                }
            }
        }
        self.len += 1;
    }

    fn intern_string(&mut self, s: &str) -> u32 {
        let offset = self.strings.len() as u32;
        let bytes = s.as_bytes();
        self.strings
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        self.strings.extend_from_slice(bytes);
        offset
    }

    #[inline]
    fn field_ptr(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.len);
        row * self.stride + self.columns[col].offset
    }

    /// Simulated byte address of a field (for cache tracing).
    pub fn field_address(&self, row: usize, col: usize) -> u64 {
        self.base_addr + self.field_ptr(row, col) as u64
    }

    /// Wraps the store with a memory tracer for the Figure 14 cache study.
    pub fn traced<'a>(&'a self, tracer: &'a mut dyn MemTracer) -> TracedRowStore<'a> {
        TracedRowStore {
            store: self,
            tracer: RefCell::new(tracer),
        }
    }
}

impl TableAccess for RowStore {
    fn len(&self) -> usize {
        self.len
    }
    #[inline]
    fn get_bool(&self, row: usize, col: usize) -> bool {
        self.data[self.field_ptr(row, col)] != 0
    }
    #[inline]
    fn get_i32(&self, row: usize, col: usize) -> i32 {
        let at = self.field_ptr(row, col);
        i32::from_le_bytes(self.data[at..at + 4].try_into().unwrap())
    }
    #[inline]
    fn get_i64(&self, row: usize, col: usize) -> i64 {
        let at = self.field_ptr(row, col);
        i64::from_le_bytes(self.data[at..at + 8].try_into().unwrap())
    }
    #[inline]
    fn get_f64(&self, row: usize, col: usize) -> f64 {
        let at = self.field_ptr(row, col);
        f64::from_le_bytes(self.data[at..at + 8].try_into().unwrap())
    }
    #[inline]
    fn get_decimal(&self, row: usize, col: usize) -> Decimal {
        Decimal::from_raw(self.get_i64(row, col))
    }
    #[inline]
    fn get_date(&self, row: usize, col: usize) -> Date {
        Date::from_epoch_days(self.get_i32(row, col))
    }
    #[inline]
    fn get_str(&self, row: usize, col: usize) -> &str {
        let at = self.field_ptr(row, col);
        let arena_offset = u32::from_le_bytes(self.data[at..at + 4].try_into().unwrap()) as usize;
        let len = u32::from_le_bytes(
            self.strings[arena_offset..arena_offset + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        std::str::from_utf8(&self.strings[arena_offset + 4..arena_offset + 4 + len])
            .expect("row-store strings are valid UTF-8")
    }
    fn get_value(&self, row: usize, col: usize) -> Value {
        match self.columns[col].dtype {
            DataType::Bool => Value::Bool(self.get_bool(row, col)),
            DataType::Int32 => Value::Int32(self.get_i32(row, col)),
            DataType::Int64 => Value::Int64(self.get_i64(row, col)),
            DataType::Decimal => Value::Decimal(self.get_decimal(row, col)),
            DataType::Float64 => Value::Float64(self.get_f64(row, col)),
            DataType::Date => Value::Date(self.get_date(row, col)),
            DataType::Str => Value::str(self.get_str(row, col)),
        }
    }
}

/// A [`RowStore`] wrapper that reports every access to a tracer.
pub struct TracedRowStore<'a> {
    store: &'a RowStore,
    tracer: RefCell<&'a mut dyn MemTracer>,
}

impl TracedRowStore<'_> {
    #[inline]
    fn trace(&self, row: usize, col: usize, len: u32) {
        self.tracer.borrow_mut().access(
            AccessKind::NativeRead,
            self.store.field_address(row, col),
            len,
        );
    }
}

impl TableAccess for TracedRowStore<'_> {
    fn len(&self) -> usize {
        self.store.len()
    }
    fn get_bool(&self, row: usize, col: usize) -> bool {
        self.trace(row, col, 1);
        self.store.get_bool(row, col)
    }
    fn get_i32(&self, row: usize, col: usize) -> i32 {
        self.trace(row, col, 4);
        self.store.get_i32(row, col)
    }
    fn get_i64(&self, row: usize, col: usize) -> i64 {
        self.trace(row, col, 8);
        self.store.get_i64(row, col)
    }
    fn get_f64(&self, row: usize, col: usize) -> f64 {
        self.trace(row, col, 8);
        self.store.get_f64(row, col)
    }
    fn get_decimal(&self, row: usize, col: usize) -> Decimal {
        self.trace(row, col, 8);
        self.store.get_decimal(row, col)
    }
    fn get_date(&self, row: usize, col: usize) -> Date {
        self.trace(row, col, 4);
        self.store.get_date(row, col)
    }
    fn get_str(&self, row: usize, col: usize) -> &str {
        self.trace(row, col, 4);
        self.store.get_str(row, col)
    }
    fn get_value(&self, row: usize, col: usize) -> Value {
        self.trace(row, col, 8);
        self.store.get_value(row, col)
    }
}

/// Executes a fused query spec over row stores. `tables[0]` is the probe
/// side; subsequent tables follow `spec.joins` order.
pub fn execute(spec: &QuerySpec, params: &[Value], tables: &[&RowStore]) -> Result<QueryOutput> {
    mrq_common::fault::point("engine.native.probe")?;
    if tables.len() != spec.joins.len() + 1 {
        return Err(MrqError::Internal(format!(
            "expected {} tables, got {}",
            spec.joins.len() + 1,
            tables.len()
        )));
    }
    let schemas: Vec<Schema> = tables.iter().map(|t| t.schema().clone()).collect();
    execute_once(spec, params, tables, &schemas)
}

/// The deferred-execution context of §5.1.
///
/// The paper's generated C exposes `EvaluateQuery(Context*)`, called once per
/// result element so only the consumed part of a query is paid for and state
/// survives across the managed/native boundary. [`QueryContext`] mirrors
/// that: construction performs no work; the first [`QueryContext::next`] call
/// runs the blocking part of the query; each subsequent call returns one
/// result row and counts one boundary crossing.
pub struct QueryContext {
    output: Option<QueryOutput>,
    cursor: usize,
    boundary_calls: u64,
    pending: Box<dyn FnOnce() -> Result<QueryOutput>>,
}

impl QueryContext {
    /// Creates a context whose work runs lazily on first use.
    pub fn new(run: impl FnOnce() -> Result<QueryOutput> + 'static) -> Self {
        QueryContext {
            output: None,
            cursor: 0,
            boundary_calls: 0,
            pending: Box::new(run),
        }
    }

    /// Returns the next result row, running the query on first call.
    /// (Deliberately named after the paper's per-result `EvaluateQuery`
    /// cursor call rather than implementing `Iterator`, which cannot
    /// return `Result`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Vec<Value>>> {
        self.boundary_calls += 1;
        if self.output.is_none() {
            let run = std::mem::replace(&mut self.pending, Box::new(|| unreachable!()));
            self.output = Some(run()?);
        }
        let out = self.output.as_ref().expect("initialised above");
        if self.cursor < out.rows.len() {
            let row = out.rows[self.cursor].clone();
            self.cursor += 1;
            Ok(Some(row))
        } else {
            Ok(None)
        }
    }

    /// Number of managed→native boundary crossings so far (the per-result
    /// call cost discussed in §7.2).
    pub fn boundary_calls(&self) -> u64 {
        self.boundary_calls
    }

    /// The result schema (available after the first `next`).
    pub fn schema(&self) -> Option<&Schema> {
        self.output.as_ref().map(|o| &o.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_codegen::spec::lower;
    use mrq_expr::{canonicalize, col, lam, lit, BinaryOp, Expr, Query, SourceId};
    use std::collections::HashMap;

    fn schema() -> Schema {
        Schema::new(
            "Sale",
            vec![
                mrq_common::Field::new("id", DataType::Int64),
                mrq_common::Field::new("city", DataType::Str),
                mrq_common::Field::new("price", DataType::Decimal),
                mrq_common::Field::new("day", DataType::Date),
                mrq_common::Field::new("flag", DataType::Bool),
                mrq_common::Field::new("size", DataType::Int32),
            ],
        )
    }

    fn store() -> RowStore {
        let rows = vec![
            vec![
                Value::Int64(1),
                Value::str("London"),
                Value::Decimal(Decimal::from_int(10)),
                Value::Date(Date::from_ymd(1995, 1, 1)),
                Value::Bool(true),
                Value::Int32(-3),
            ],
            vec![
                Value::Int64(2),
                Value::str("Paris"),
                Value::Decimal(Decimal::from_int(20)),
                Value::Date(Date::from_ymd(1996, 6, 15)),
                Value::Bool(false),
                Value::Int32(7),
            ],
            vec![
                Value::Int64(3),
                Value::str("London"),
                Value::Decimal(Decimal::from_int(30)),
                Value::Date(Date::from_ymd(1997, 12, 31)),
                Value::Bool(true),
                Value::Int32(50),
            ],
        ];
        RowStore::from_rows(schema(), &rows)
    }

    #[test]
    fn layout_is_packed_with_natural_alignment() {
        let s = store();
        // i64(8) + str(4) + pad(4)? — layout is declaration order with
        // natural alignment: id@0, city@8, price@16 (aligned up), day@24,
        // flag@28, size@32 → stride 40.
        assert_eq!(s.stride(), 40);
        assert!(s.payload_bytes() >= 3 * 40);
    }

    #[test]
    fn typed_round_trip_through_the_flat_representation() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get_i64(0, 0), 1);
        assert_eq!(s.get_str(1, 1), "Paris");
        assert_eq!(s.get_decimal(2, 2), Decimal::from_int(30));
        assert_eq!(s.get_date(1, 3), Date::from_ymd(1996, 6, 15));
        assert!(!s.get_bool(1, 4));
        assert_eq!(s.get_i32(0, 5), -3);
        assert_eq!(s.get_value(2, 1), Value::str("London"));
    }

    #[test]
    fn fused_execution_over_the_row_store() {
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        let canon = canonicalize(
            Query::from_source(SourceId(0))
                .where_(lam(
                    "s",
                    Expr::binary(BinaryOp::Eq, col("s", "city"), lit("London")),
                ))
                .select(lam("s", col("s", "price")))
                .into_expr(),
        );
        let spec = lower(&canon, &catalog).unwrap();
        let s = store();
        let out = execute(&spec, &canon.params, &[&s]).unwrap();
        assert_eq!(
            out.rows,
            vec![
                vec![Value::Decimal(Decimal::from_int(10))],
                vec![Value::Decimal(Decimal::from_int(30))]
            ]
        );
    }

    #[test]
    fn traced_store_reports_native_reads() {
        use mrq_common::trace::CountingTracer;
        let s = store();
        let mut tracer = CountingTracer::default();
        {
            let traced = s.traced(&mut tracer);
            let mut total = Decimal::ZERO;
            for row in 0..traced.len() {
                total += traced.get_decimal(row, 2);
            }
            assert_eq!(total, Decimal::from_int(60));
        }
        assert_eq!(tracer.events_of(AccessKind::NativeRead), 3);
    }

    #[test]
    fn query_context_defers_execution_and_counts_boundary_calls() {
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        let canon = canonicalize(
            Query::from_source(SourceId(0))
                .select(lam("s", col("s", "id")))
                .into_expr(),
        );
        let spec = lower(&canon, &catalog).unwrap();
        let s = store();
        let mut ctx = QueryContext::new(move || {
            let spec = spec;
            let canon = canon;
            execute(&spec, &canon.params, &[&s])
        });
        assert_eq!(ctx.boundary_calls(), 0);
        let mut ids = Vec::new();
        while let Some(row) = ctx.next().unwrap() {
            ids.push(row[0].clone());
        }
        assert_eq!(ids, vec![Value::Int64(1), Value::Int64(2), Value::Int64(3)]);
        // One call per result element plus the final empty call.
        assert_eq!(ctx.boundary_calls(), 4);
    }

    #[test]
    fn empty_store_executes_cleanly() {
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        let canon = canonicalize(Query::from_source(SourceId(0)).count().into_expr());
        let spec = lower(&canon, &catalog).unwrap();
        let s = RowStore::new(schema());
        let out = execute(&spec, &canon.params, &[&s]).unwrap();
        assert!(out.rows.is_empty() || out.rows[0][0] == Value::Int64(0));
    }
}
