//! Parallel execution over native row stores.
//!
//! The paper explicitly leaves parallel execution to future work (§4, §9) but
//! notes that its database-centric plan shape makes existing parallelisation
//! strategies directly applicable. This module provides that extension for
//! the native strategy: the probe-side scan is range-partitioned across
//! workers of the persistent pool by the shared morsel scheduler
//! ([`mrq_common::morsel`] over [`mrq_common::pool::WorkerPool`] — no
//! thread is spawned per query), each worker runs the same fused pipeline
//! over its partition, and the partial states (group hash tables, aggregate
//! states, top-N buffers or plain result rows) are merged at the end. The
//! same scheduler drives the compiled-C# and hybrid engines' parallel
//! paths.
//!
//! Joins build their hash tables per worker unless a [`HashIndex`] is
//! supplied for the build side, in which case all workers share the
//! pre-built index. Result rows keep the enumeration order of the underlying
//! collection because partitions are contiguous and merged in partition
//! order.

use crate::index::HashIndex;
use crate::RowStore;
use mrq_codegen::exec::{consume_partitioned, ExecState, JoinIndex, QueryOutput};
use mrq_codegen::spec::QuerySpec;
use mrq_common::{MrqError, Result, Schema, Value};

pub use mrq_common::ParallelConfig;

/// Executes a fused query spec over row stores with `config.threads` workers.
/// `tables[0]` is the probe side; subsequent tables follow `spec.joins`
/// order. `indexes[j]`, when given and applicable, replaces the hash-table
/// build of join `j` (see [`HashIndex::serves`]).
///
/// Build-side hash tables are built exactly once, themselves in parallel
/// (hash-partitioned shards, see [`ExecState::new_parallel`]); the shared
/// morsel scheduler ([`mrq_common::morsel`]) then forks the state per
/// worker (the built tables are shared behind an `Arc`), runs the identical
/// fused pipeline over work-stolen or static morsels and merges the partial
/// states in morsel order, so row order is preserved for non-sorted
/// outputs and results are bit-identical to the sequential engine.
pub fn execute_parallel(
    spec: &QuerySpec,
    params: &[Value],
    tables: &[&RowStore],
    indexes: &[Option<&HashIndex>],
    config: ParallelConfig,
) -> Result<QueryOutput> {
    mrq_common::fault::point("engine.native.probe")?;
    if tables.len() != spec.joins.len() + 1 {
        return Err(MrqError::Internal(format!(
            "expected {} tables, got {}",
            spec.joins.len() + 1,
            tables.len()
        )));
    }
    let schemas: Vec<Schema> = tables.iter().map(|t| t.schema().clone()).collect();
    let join_indexes = resolve_indexes(spec, indexes)?;
    let root = tables[0];
    let builds: Vec<&RowStore> = tables[1..].to_vec();
    let base = ExecState::new_parallel(spec, params, builds, &schemas, &join_indexes, config)?;
    // Lifecycle control: a submitted query that was cancelled (or whose
    // deadline lapsed) during the join builds stops here rather than paying
    // for the probe scan; the scan itself then checks between morsels.
    mrq_common::cancel::checkpoint();
    Ok(consume_partitioned(base, root, config))
}

/// Maps per-join [`HashIndex`]es to executor join indexes, dropping any index
/// that does not serve its join (wrong column, filtered build side).
fn resolve_indexes<'a>(
    spec: &QuerySpec,
    indexes: &[Option<&'a HashIndex>],
) -> Result<Vec<Option<&'a JoinIndex>>> {
    if !indexes.is_empty() && indexes.len() != spec.joins.len() {
        return Err(MrqError::Internal(format!(
            "expected {} join indexes, got {}",
            spec.joins.len(),
            indexes.len()
        )));
    }
    Ok(spec
        .joins
        .iter()
        .enumerate()
        .map(|(j, join)| {
            indexes
                .get(j)
                .copied()
                .flatten()
                .filter(|index| index.serves(join))
                .map(|index| index.join_index())
        })
        .collect())
}

/// Executes with pre-built indexes on the sequential path (no extra threads).
/// Joins whose index does not apply fall back to building a hash table.
pub fn execute_indexed(
    spec: &QuerySpec,
    params: &[Value],
    tables: &[&RowStore],
    indexes: &[Option<&HashIndex>],
) -> Result<QueryOutput> {
    execute_parallel(
        spec,
        params,
        tables,
        indexes,
        ParallelConfig::with_threads(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute;
    use mrq_codegen::spec::lower;
    use mrq_common::{DataType, Date, Decimal, Field};
    use mrq_expr::{canonicalize, col, lam, lit, BinaryOp, Expr, Query, SourceId};
    use std::collections::HashMap;

    fn sales_schema() -> Schema {
        Schema::new(
            "Sale",
            vec![
                Field::new("id", DataType::Int64),
                Field::new("city_id", DataType::Int64),
                Field::new("price", DataType::Decimal),
                Field::new("day", DataType::Date),
            ],
        )
    }

    fn cities_schema() -> Schema {
        Schema::new(
            "City",
            vec![
                Field::new("city_id", DataType::Int64),
                Field::new("population", DataType::Int64),
            ],
        )
    }

    fn sales_store(n: i64) -> RowStore {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Int64(i % 50),
                    Value::Decimal(Decimal::from_int(i % 97)),
                    Value::Date(Date::from_ymd(1995, 1, 1).add_days((i % 400) as i32)),
                ]
            })
            .collect();
        RowStore::from_rows(sales_schema(), &rows)
    }

    fn cities_store() -> RowStore {
        let rows: Vec<Vec<Value>> = (0..50i64)
            .map(|i| vec![Value::Int64(i), Value::Int64(i * 1000)])
            .collect();
        RowStore::from_rows(cities_schema(), &rows)
    }

    fn catalog() -> HashMap<SourceId, Schema> {
        let mut map = HashMap::new();
        map.insert(SourceId(0), sales_schema());
        map.insert(SourceId(1), cities_schema());
        map
    }

    fn agg_query() -> Expr {
        Query::from_source(SourceId(0))
            .where_(lam(
                "s",
                Expr::binary(
                    BinaryOp::Le,
                    col("s", "day"),
                    lit(Date::from_ymd(1996, 1, 1)),
                ),
            ))
            .group_by(lam("s", col("s", "city_id")))
            .select(lam(
                "g",
                Expr::Constructor {
                    name: "R".into(),
                    fields: vec![
                        (
                            "city_id".into(),
                            Expr::member(Expr::member(mrq_expr::var("g"), "Key"), "city_id"),
                        ),
                        (
                            "total".into(),
                            mrq_expr::builder::agg(
                                mrq_expr::AggFunc::Sum,
                                "g",
                                Some(lam("x", col("x", "price"))),
                            ),
                        ),
                        (
                            "avg".into(),
                            mrq_expr::builder::agg(
                                mrq_expr::AggFunc::Average,
                                "g",
                                Some(lam("x", col("x", "price"))),
                            ),
                        ),
                        (
                            "n".into(),
                            mrq_expr::builder::agg(mrq_expr::AggFunc::Count, "g", None),
                        ),
                    ],
                },
            ))
            .order_by(lam("r", col("r", "city_id")))
            .into_expr()
    }

    fn join_query() -> Expr {
        Query::from_source(SourceId(0))
            .join_query(
                Query::from_source(SourceId(1)),
                lam("s", col("s", "city_id")),
                lam("c", col("c", "city_id")),
                lam(
                    "s",
                    lam(
                        "c",
                        Expr::Constructor {
                            name: "SC".into(),
                            fields: vec![
                                ("id".into(), col("s", "id")),
                                ("population".into(), col("c", "population")),
                            ],
                        },
                    ),
                ),
            )
            .order_by(lam("r", col("r", "id")))
            .take(40)
            .into_expr()
    }

    #[test]
    fn parallel_aggregation_matches_sequential() {
        let canon = canonicalize(agg_query());
        let spec = lower(&canon, &catalog()).unwrap();
        let store = sales_store(4_000);
        let sequential = execute(&spec, &canon.params, &[&store]).unwrap();
        for threads in [1, 2, 4, 7] {
            let parallel = execute_parallel(
                &spec,
                &canon.params,
                &[&store],
                &[],
                ParallelConfig {
                    threads,
                    min_rows_per_thread: 100,
                    ..ParallelConfig::default()
                },
            )
            .unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_join_with_topn_matches_sequential() {
        let canon = canonicalize(join_query());
        let spec = lower(&canon, &catalog()).unwrap();
        let sales = sales_store(3_000);
        let cities = cities_store();
        let sequential = execute(&spec, &canon.params, &[&sales, &cities]).unwrap();
        let index = HashIndex::build(&cities, 0).unwrap();
        let parallel = execute_parallel(
            &spec,
            &canon.params,
            &[&sales, &cities],
            &[Some(&index)],
            ParallelConfig {
                threads: 4,
                min_rows_per_thread: 64,
                ..ParallelConfig::default()
            },
        )
        .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn indexed_sequential_execution_matches_hash_build() {
        let canon = canonicalize(join_query());
        let spec = lower(&canon, &catalog()).unwrap();
        let sales = sales_store(1_000);
        let cities = cities_store();
        let reference = execute(&spec, &canon.params, &[&sales, &cities]).unwrap();
        let index = HashIndex::build(&cities, 0).unwrap();
        let indexed =
            execute_indexed(&spec, &canon.params, &[&sales, &cities], &[Some(&index)]).unwrap();
        assert_eq!(indexed, reference);
    }

    #[test]
    fn inapplicable_index_falls_back_to_hash_build() {
        let canon = canonicalize(join_query());
        let spec = lower(&canon, &catalog()).unwrap();
        let sales = sales_store(500);
        let cities = cities_store();
        // Index on the wrong column: population instead of the join key.
        let wrong = HashIndex::build(&cities, 1).unwrap();
        assert!(!wrong.serves(&spec.joins[0]));
        let out =
            execute_indexed(&spec, &canon.params, &[&sales, &cities], &[Some(&wrong)]).unwrap();
        let reference = execute(&spec, &canon.params, &[&sales, &cities]).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn small_inputs_do_not_split() {
        let config = ParallelConfig {
            threads: 8,
            min_rows_per_thread: 4096,
            ..ParallelConfig::default()
        };
        assert_eq!(config.partitions_for(100), 1);
        assert_eq!(config.partitions_for(0), 1);
        assert_eq!(config.partitions_for(10_000), 3);
        assert_eq!(ParallelConfig::with_threads(1).partitions_for(1_000_000), 1);
    }

    #[test]
    fn row_order_is_preserved_for_unsorted_projections() {
        let q = Query::from_source(SourceId(0))
            .where_(lam(
                "s",
                Expr::binary(BinaryOp::Lt, col("s", "city_id"), lit(10i64)),
            ))
            .select(lam("s", col("s", "id")))
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let store = sales_store(2_000);
        let sequential = execute(&spec, &canon.params, &[&store]).unwrap();
        let parallel = execute_parallel(
            &spec,
            &canon.params,
            &[&store],
            &[],
            ParallelConfig {
                threads: 5,
                min_rows_per_thread: 1,
                ..ParallelConfig::default()
            },
        )
        .unwrap();
        assert_eq!(parallel, sequential);
        // Enumeration order: ids ascending as in the source collection.
        let ids: Vec<i64> = parallel
            .rows
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mismatched_table_count_is_reported() {
        let canon = canonicalize(join_query());
        let spec = lower(&canon, &catalog()).unwrap();
        let sales = sales_store(10);
        let err = execute_parallel(
            &spec,
            &canon.params,
            &[&sales],
            &[],
            ParallelConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MrqError::Internal(_)));
    }
}
