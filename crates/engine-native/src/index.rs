//! Equality hash indexes over native row stores.
//!
//! The paper lists index support as future work (§9): once data lives in
//! database-style arrays of structs, the classic IMDB machinery becomes
//! applicable. A [`HashIndex`] is built once over one column of a
//! [`RowStore`] and can then replace the per-query
//! hash-table build of every join whose build key is exactly that column —
//! the equivalent of a primary-key/foreign-key index in a relational engine.
//!
//! Only fixed-width key columns can be indexed (integers, dates, decimals,
//! booleans). String keys are excluded because the executor encodes probe-side
//! strings with a per-execution interner, so a persistent index could not
//! produce matching key encodings.

use crate::RowStore;
use mrq_codegen::exec::{JoinIndex, TableAccess};
use mrq_codegen::spec::{JoinSpec, ScalarExpr};
use mrq_common::{morsel, DataType, MrqError, ParallelConfig, Result, Value};

/// Encodes an indexable value into the executor's 64-bit key representation.
/// Must agree with the probe-side encoding used by the fused executor.
pub fn encode_key(value: &Value) -> Option<u64> {
    match value {
        Value::Bool(b) => Some(*b as u64),
        Value::Int32(i) => Some(*i as i64 as u64),
        Value::Int64(i) => Some(*i as u64),
        Value::Decimal(d) => Some(d.raw() as u64),
        Value::Date(d) => Some(d.epoch_days() as u32 as u64),
        Value::Float64(_) | Value::Str(_) | Value::Null => None,
    }
}

/// True if a column of this type can back a [`HashIndex`].
pub fn indexable(dtype: DataType) -> bool {
    matches!(
        dtype,
        DataType::Bool | DataType::Int32 | DataType::Int64 | DataType::Decimal | DataType::Date
    )
}

/// An equality index over one fixed-width column of a row store.
#[derive(Debug, Clone)]
pub struct HashIndex {
    column: usize,
    dtype: DataType,
    index: JoinIndex,
}

impl HashIndex {
    /// Builds an index over `column` of `store`.
    ///
    /// Returns [`MrqError::Unsupported`] for string or floating-point
    /// columns.
    pub fn build(store: &RowStore, column: usize) -> Result<Self> {
        let field = store
            .schema()
            .fields()
            .get(column)
            .ok_or_else(|| MrqError::Internal(format!("no column {column} to index")))?;
        if !indexable(field.dtype) {
            return Err(MrqError::Unsupported(format!(
                "cannot build a hash index over a {} column",
                field.dtype
            )));
        }
        let mut index = JoinIndex::new();
        for row in 0..store.len() {
            let key =
                encode_key(&store.get_value(row, column)).expect("indexable columns always encode");
            index.insert(key, row);
        }
        Ok(HashIndex {
            column,
            dtype: field.dtype,
            index,
        })
    }

    /// Builds an index over `column` of `store` with hash-partitioned
    /// parallel workers: morsels of the table are scanned by the shared
    /// scheduler ([`mrq_common::morsel`]), each worker scatters `(key, row)`
    /// pairs into per-shard buckets by [`JoinIndex::shard_index`], and the
    /// shards are finalised into per-shard maps in parallel with zero merge
    /// contention. Per-key row lists stay in ascending row order (morsel
    /// partials are gathered in morsel order), so lookups return exactly
    /// what [`HashIndex::build`] returns. Sequential configs and tiny
    /// stores fall back to the sequential build.
    pub fn build_parallel(store: &RowStore, column: usize, config: ParallelConfig) -> Result<Self> {
        let workers = config.partitions_for(store.len());
        if workers <= 1 {
            return Self::build(store, column);
        }
        let field = store
            .schema()
            .fields()
            .get(column)
            .ok_or_else(|| MrqError::Internal(format!("no column {column} to index")))?;
        if !indexable(field.dtype) {
            return Err(MrqError::Unsupported(format!(
                "cannot build a hash index over a {} column",
                field.dtype
            )));
        }
        let shard_count = workers.next_power_of_two();
        let bits = shard_count.trailing_zeros();
        let shards =
            morsel::build_hash_shards(store.len(), config, shard_count, |range, buckets| {
                for row in range {
                    let key = encode_key(&store.get_value(row, column))
                        .expect("indexable columns always encode");
                    buckets[JoinIndex::shard_index(key, bits)].push((key, row));
                }
            });
        Ok(HashIndex {
            column,
            dtype: field.dtype,
            index: JoinIndex::from_shards(shards),
        })
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// The indexed column's type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the indexed table was empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of distinct key values.
    pub fn distinct_keys(&self) -> usize {
        self.index.distinct_keys()
    }

    /// Rows whose key equals `value` (empty for non-indexable values).
    pub fn lookup(&self, value: &Value) -> &[usize] {
        encode_key(value)
            .and_then(|k| self.index.get(k))
            .unwrap_or(&[])
    }

    /// The executor-facing index.
    pub fn join_index(&self) -> &JoinIndex {
        &self.index
    }

    /// Whether this index can serve the given join: the build side must be
    /// unfiltered and its single key must be exactly the indexed column.
    pub fn serves(&self, join: &JoinSpec) -> bool {
        if !join.build_filters.is_empty() || join.build_keys.len() != 1 {
            return false;
        }
        matches!(
            &join.build_keys[0],
            ScalarExpr::Column(c) if c.slot == join.slot && c.col == self.column
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_common::{Date, Decimal, Field, Schema};

    fn store() -> RowStore {
        let schema = Schema::new(
            "T",
            vec![
                Field::new("key", DataType::Int64),
                Field::new("name", DataType::Str),
                Field::new("price", DataType::Decimal),
                Field::new("day", DataType::Date),
            ],
        );
        let rows: Vec<Vec<Value>> = (0..20i64)
            .map(|i| {
                vec![
                    Value::Int64(i % 5),
                    Value::str(format!("row{i}")),
                    Value::Decimal(Decimal::from_int(i)),
                    Value::Date(Date::from_ymd(1995, 1, 1).add_days(i as i32)),
                ]
            })
            .collect();
        RowStore::from_rows(schema, &rows)
    }

    #[test]
    fn builds_over_integer_columns_and_groups_duplicates() {
        let s = store();
        let index = HashIndex::build(&s, 0).unwrap();
        assert_eq!(index.len(), 20);
        assert_eq!(index.distinct_keys(), 5);
        assert_eq!(index.lookup(&Value::Int64(2)), &[2, 7, 12, 17]);
        assert!(index.lookup(&Value::Int64(99)).is_empty());
        assert_eq!(index.column(), 0);
        assert_eq!(index.dtype(), DataType::Int64);
    }

    #[test]
    fn builds_over_date_and_decimal_columns() {
        let s = store();
        let by_price = HashIndex::build(&s, 2).unwrap();
        assert_eq!(by_price.lookup(&Value::Decimal(Decimal::from_int(7))), &[7]);
        let by_day = HashIndex::build(&s, 3).unwrap();
        assert_eq!(
            by_day.lookup(&Value::Date(Date::from_ymd(1995, 1, 4))),
            &[3]
        );
    }

    #[test]
    fn string_columns_are_rejected() {
        let s = store();
        let err = HashIndex::build(&s, 1).unwrap_err();
        assert!(matches!(err, MrqError::Unsupported(_)));
        assert!(HashIndex::build(&s, 99).is_err());
    }

    #[test]
    fn lookup_of_non_indexable_value_is_empty() {
        let s = store();
        let index = HashIndex::build(&s, 0).unwrap();
        assert!(index.lookup(&Value::str("not a key")).is_empty());
        assert!(index.lookup(&Value::Null).is_empty());
    }

    #[test]
    fn parallel_index_build_matches_sequential() {
        let schema = Schema::new("T", vec![Field::new("key", DataType::Int64)]);
        // Skewed key distribution: most rows share key 0.
        let rows: Vec<Vec<Value>> = (0..5_000i64)
            .map(|i| vec![Value::Int64(if i % 10 < 8 { 0 } else { i % 97 })])
            .collect();
        let s = RowStore::from_rows(schema.clone(), &rows);
        let reference = HashIndex::build(&s, 0).unwrap();
        for threads in [1usize, 2, 8] {
            for stealing in [false, true] {
                let config = ParallelConfig {
                    threads,
                    min_rows_per_thread: 64,
                    ..ParallelConfig::default()
                }
                .with_morsel_rows(128)
                .with_stealing(stealing);
                let parallel = HashIndex::build_parallel(&s, 0, config).unwrap();
                assert_eq!(parallel.len(), reference.len());
                assert_eq!(parallel.distinct_keys(), reference.distinct_keys());
                for key in 0..100i64 {
                    assert_eq!(
                        parallel.lookup(&Value::Int64(key)),
                        reference.lookup(&Value::Int64(key)),
                        "key {key} at {threads} threads, stealing={stealing}"
                    );
                }
            }
        }
        // An empty store builds an empty (sequential) index.
        let empty = RowStore::new(schema);
        let index = HashIndex::build_parallel(&empty, 0, ParallelConfig::with_threads(8)).unwrap();
        assert!(index.is_empty());
    }

    #[test]
    fn empty_store_builds_an_empty_index() {
        let schema = Schema::new("T", vec![Field::new("key", DataType::Int64)]);
        let s = RowStore::new(schema);
        let index = HashIndex::build(&s, 0).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.distinct_keys(), 0);
    }
}
