//! The MRQ wire protocol and reference TCP server.
//!
//! This crate puts the serving layer on a socket. Everything below it —
//! admission control, QoS scheduling, prepared statements, streamed
//! batches — already exists in `mrq-core`; what this crate adds is a
//! dependency-free, length-prefixed frame protocol over `std::net` and a
//! per-connection server loop that multiplexes many in-flight queries on
//! `mrq_common::executor`'s [`Multiplexer`](mrq_common::executor::Multiplexer).
//!
//! The layering, bottom up:
//!
//! * [`wire`] — little-endian primitives and a bounds-checked [`wire::Reader`]
//!   that turns malformed bytes into [`ProtocolError`]s, never panics;
//! * [`codec`] — serializers for the domain types ([`mrq_common::Value`],
//!   [`mrq_common::Schema`], expression trees, strategies, options, errors);
//! * [`frame`] — the [`Request`] / [`Response`] frame grammar and the
//!   length-prefixed envelope ([`read_frame`] / [`write_frame`]);
//! * [`server`] — [`Server`]: a `std::net::TcpListener` accept loop, one
//!   reader thread and one executor-driver thread per connection, streamed
//!   batches written to the socket as the engine publishes them.
//!
//! The protocol is specified frame-by-frame in `docs/SERVING.md`; the
//! golden-bytes test in `tests/tests/wire_protocol.rs` pins the encoding.
//! The client half lives in the `mrq-client` crate, which depends only on
//! this crate's [`frame`] layer.

#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod server;
pub mod wire;

pub use frame::{
    read_frame, write_frame, ProtocolError, Request, Response, MAGIC, MAX_FRAME, VERSION,
};
pub use server::Server;
