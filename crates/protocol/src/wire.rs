//! Primitive byte encoding: fixed-width little-endian integers,
//! length-prefixed UTF-8 strings, and a bounds-checked cursor for decoding.
//!
//! Every multi-byte integer on the wire is little-endian. Strings are
//! `u32` byte length + UTF-8 bytes. There is no varint layer — the frame
//! sizes this protocol moves (expression trees, row batches) are dominated
//! by row payloads, and fixed-width fields keep the golden-bytes test in
//! `tests/tests/wire_protocol.rs` trivially auditable.

use crate::ProtocolError;

/// Appends primitives to a byte buffer. A thin namespace over `Vec<u8>` so
/// the codec reads as `put_u32(buf, …)` rather than manual `extend_from_slice`
/// calls.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a bool as one byte (`0` / `1`).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i32`, little-endian.
pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64`, little-endian.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a string: `u32` byte length then UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v.as_bytes());
}

/// A bounds-checked read cursor over a decoded frame payload. Every read
/// returns [`ProtocolError::Truncated`] instead of panicking when the
/// buffer runs out — a garbage length prefix must never take the process
/// down.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly; trailing bytes mean the
    /// two sides disagree about the frame layout.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool encoded as one byte; anything other than `0`/`1` is a
    /// protocol error (a corrupted stream, not a silent `true`).
    pub fn bool(&mut self) -> Result<bool, ProtocolError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ProtocolError::Invalid(format!("bool byte {other:#04x}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, ProtocolError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32` length intended to drive a loop or allocation, capped
    /// against the bytes actually remaining so a garbage length cannot
    /// trigger a huge allocation before the truncation is noticed.
    #[allow(clippy::len_without_is_empty)] // a decode step, not a container accessor
    pub fn len(&mut self) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    /// Reads a count of variable-size items: bounded only by the remaining
    /// bytes (each item costs at least one byte), same rationale as
    /// [`Reader::len`].
    pub fn count(&mut self) -> Result<usize, ProtocolError> {
        self.len()
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ProtocolError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Invalid("non-UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_bool(&mut buf, true);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i32(&mut buf, -42);
        put_i64(&mut buf, i64::MIN);
        put_f64(&mut buf, -0.125);
        put_str(&mut buf, "héllo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.u64(), Err(ProtocolError::Truncated)));
    }

    #[test]
    fn oversized_length_prefix_is_truncation_not_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.len(), Err(ProtocolError::Truncated)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let buf = [0u8; 2];
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(ProtocolError::TrailingBytes(1))));
    }

    #[test]
    fn bad_bool_byte_is_invalid() {
        let buf = [9u8];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bool(), Err(ProtocolError::Invalid(_))));
    }
}
