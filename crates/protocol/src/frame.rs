//! Frame layer: the length-prefixed envelope, the request / response frame
//! types, and their encoders and decoders.
//!
//! A frame on the socket is a little-endian `u32` payload length followed
//! by the payload; the payload's first byte is the frame tag. Request tags
//! occupy `0x01..=0x7F`, response tags `0x81..=0xFF`, so a desynchronised
//! peer fails fast on an unknown tag instead of misparsing.

use crate::codec::{
    get_error, get_expr, get_options, get_rows, get_schema, get_strategy, get_value, put_error,
    put_expr, put_options, put_rows, put_schema, put_strategy, put_value,
};
use crate::wire::{put_bool, put_str, put_u32, put_u64, put_u8, Reader};
use mrq_common::{MrqError, Schema, Value};
use mrq_core::{QueryOptions, Strategy};
use mrq_expr::Expr;
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic exchanged in the handshake: both sides must speak MRQ.
pub const MAGIC: &str = "MRQ1";

/// Protocol version negotiated in the handshake. The server refuses
/// mismatches rather than guessing.
pub const VERSION: u32 = 1;

/// Hard ceiling on a single frame's payload (32 MiB). A length prefix past
/// this is treated as garbage before any allocation happens.
pub const MAX_FRAME: usize = 32 * 1024 * 1024;

/// Everything that can go wrong between bytes and frames. Malformed input
/// always lands here — never in a panic — because the server feeds this
/// decoder with whatever an arbitrary TCP peer sends.
#[derive(Debug)]
pub enum ProtocolError {
    /// The payload ended before the value being decoded was complete (also
    /// covers length prefixes that point past the end of the payload).
    Truncated,
    /// A frame announced a payload larger than [`MAX_FRAME`].
    Oversized(usize),
    /// An unknown tag byte; the `&str` names the kind of tag expected
    /// (frame, value, strategy, …).
    UnknownTag(&'static str, u8),
    /// An expression tree nested deeper than the decoder's budget.
    TooDeep,
    /// The payload was longer than the frame it claimed to encode.
    TrailingBytes(usize),
    /// A malformed scalar (bad bool byte, non-UTF-8 string, bad magic…).
    Invalid(String),
    /// The underlying socket failed.
    Io(io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::Oversized(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_FRAME}-byte limit"
                )
            }
            ProtocolError::UnknownTag(kind, tag) => {
                write!(f, "unknown {kind} tag {tag:#04x}")
            }
            ProtocolError::TooDeep => write!(f, "expression tree nested too deeply"),
            ProtocolError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after frame payload")
            }
            ProtocolError::Invalid(what) => write!(f, "malformed frame: {what}"),
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

/// A client-to-server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: the first frame on every connection. Carries the magic
    /// and the client's protocol version.
    Hello {
        /// Must equal [`MAGIC`].
        magic: String,
        /// Must equal [`VERSION`].
        version: u32,
    },
    /// Submit an ad-hoc query. `id` is a client-chosen correlation id; all
    /// response frames for this query echo it, so many queries can be in
    /// flight on one connection.
    Query {
        /// Client-chosen correlation id.
        id: u64,
        /// `true` to stream row batches as they publish, `false` for one
        /// [`Response::Rows`] with the complete result.
        streamed: bool,
        /// Execution strategy.
        strategy: Strategy,
        /// Per-query options (deadline, QoS class, streamed-batch rows).
        options: QueryOptions,
        /// The query's expression tree.
        expr: Expr,
    },
    /// Compile and cache a statement server-side; constants are
    /// canonicalised into parameter slots. Answered by
    /// [`Response::Prepared`].
    Prepare {
        /// Client-chosen correlation id for the *prepare* round trip.
        id: u64,
        /// Execution strategy the statement is compiled for.
        strategy: Strategy,
        /// The statement's expression tree (with constants in place; the
        /// server extracts them as defaults).
        expr: Expr,
    },
    /// Execute a prepared statement with positional parameter bindings.
    /// A binding of [`Value::Null`] keeps that slot's captured default.
    Execute {
        /// Client-chosen correlation id.
        id: u64,
        /// Server-assigned statement handle from [`Response::Prepared`].
        statement: u64,
        /// Streamed or unary, as for [`Request::Query`].
        streamed: bool,
        /// Per-execution options.
        options: QueryOptions,
        /// Positional parameter bindings.
        bindings: Vec<Value>,
    },
    /// Drop a prepared statement handle.
    CloseStatement {
        /// The handle to drop.
        statement: u64,
    },
    /// Ask the server process to shut down (used by the load generator and
    /// the CI smoke test for a clean exit).
    Shutdown,
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake acknowledgement.
    Hello {
        /// The server's protocol version.
        version: u32,
    },
    /// The complete result of a unary query.
    Rows {
        /// Correlation id of the originating request.
        id: u64,
        /// Result schema.
        schema: Schema,
        /// All result rows.
        rows: Vec<Vec<Value>>,
    },
    /// One streamed row batch. Batches for a query arrive in order;
    /// a [`Response::End`] or [`Response::Error`] frame terminates the
    /// stream.
    Batch {
        /// Correlation id of the originating request.
        id: u64,
        /// The batch's rows (streams carry no schema, mirroring the
        /// in-process `QueryStream`).
        rows: Vec<Vec<Value>>,
    },
    /// Clean end of a streamed query.
    End {
        /// Correlation id of the originating request.
        id: u64,
    },
    /// The query failed (or was shed, or cancelled); terminal for both
    /// unary and streamed queries. Batches already delivered stand.
    Error {
        /// Correlation id of the originating request.
        id: u64,
        /// The typed execution error.
        error: MrqError,
    },
    /// Answer to [`Request::Prepare`].
    Prepared {
        /// Correlation id of the prepare request.
        id: u64,
        /// Server-assigned statement handle for [`Request::Execute`].
        statement: u64,
        /// Number of positional parameter slots the statement exposes.
        param_slots: u64,
    },
}

impl Request {
    /// The standard handshake frame.
    pub fn hello() -> Request {
        Request::Hello {
            magic: MAGIC.to_string(),
            version: VERSION,
        }
    }

    /// Encodes the frame payload (tag + body, without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { magic, version } => {
                put_u8(&mut buf, 0x01);
                put_str(&mut buf, magic);
                put_u32(&mut buf, *version);
            }
            Request::Query {
                id,
                streamed,
                strategy,
                options,
                expr,
            } => {
                put_u8(&mut buf, 0x02);
                put_u64(&mut buf, *id);
                put_bool(&mut buf, *streamed);
                put_strategy(&mut buf, strategy);
                put_options(&mut buf, options);
                put_expr(&mut buf, expr);
            }
            Request::Prepare { id, strategy, expr } => {
                put_u8(&mut buf, 0x03);
                put_u64(&mut buf, *id);
                put_strategy(&mut buf, strategy);
                put_expr(&mut buf, expr);
            }
            Request::Execute {
                id,
                statement,
                streamed,
                options,
                bindings,
            } => {
                put_u8(&mut buf, 0x04);
                put_u64(&mut buf, *id);
                put_u64(&mut buf, *statement);
                put_bool(&mut buf, *streamed);
                put_options(&mut buf, options);
                put_u32(&mut buf, bindings.len() as u32);
                for v in bindings {
                    put_value(&mut buf, v);
                }
            }
            Request::CloseStatement { statement } => {
                put_u8(&mut buf, 0x05);
                put_u64(&mut buf, *statement);
            }
            Request::Shutdown => put_u8(&mut buf, 0x06),
        }
        buf
    }

    /// Decodes a frame payload produced by [`Request::encode`].
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            0x01 => Request::Hello {
                magic: r.str()?,
                version: r.u32()?,
            },
            0x02 => Request::Query {
                id: r.u64()?,
                streamed: r.bool()?,
                strategy: get_strategy(&mut r)?,
                options: get_options(&mut r)?,
                expr: get_expr(&mut r)?,
            },
            0x03 => Request::Prepare {
                id: r.u64()?,
                strategy: get_strategy(&mut r)?,
                expr: get_expr(&mut r)?,
            },
            0x04 => {
                let id = r.u64()?;
                let statement = r.u64()?;
                let streamed = r.bool()?;
                let options = get_options(&mut r)?;
                let n = r.count()?;
                let mut bindings = Vec::with_capacity(n);
                for _ in 0..n {
                    bindings.push(get_value(&mut r)?);
                }
                Request::Execute {
                    id,
                    statement,
                    streamed,
                    options,
                    bindings,
                }
            }
            0x05 => Request::CloseStatement {
                statement: r.u64()?,
            },
            0x06 => Request::Shutdown,
            tag => return Err(ProtocolError::UnknownTag("request frame", tag)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the frame payload (tag + body, without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Hello { version } => {
                put_u8(&mut buf, 0x81);
                put_u32(&mut buf, *version);
            }
            Response::Rows { id, schema, rows } => {
                put_u8(&mut buf, 0x82);
                put_u64(&mut buf, *id);
                put_schema(&mut buf, schema);
                put_rows(&mut buf, rows);
            }
            Response::Batch { id, rows } => {
                put_u8(&mut buf, 0x83);
                put_u64(&mut buf, *id);
                put_rows(&mut buf, rows);
            }
            Response::End { id } => {
                put_u8(&mut buf, 0x84);
                put_u64(&mut buf, *id);
            }
            Response::Error { id, error } => {
                put_u8(&mut buf, 0x85);
                put_u64(&mut buf, *id);
                put_error(&mut buf, error);
            }
            Response::Prepared {
                id,
                statement,
                param_slots,
            } => {
                put_u8(&mut buf, 0x86);
                put_u64(&mut buf, *id);
                put_u64(&mut buf, *statement);
                put_u64(&mut buf, *param_slots);
            }
        }
        buf
    }

    /// Decodes a frame payload produced by [`Response::encode`].
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            0x81 => Response::Hello { version: r.u32()? },
            0x82 => Response::Rows {
                id: r.u64()?,
                schema: get_schema(&mut r)?,
                rows: get_rows(&mut r)?,
            },
            0x83 => Response::Batch {
                id: r.u64()?,
                rows: get_rows(&mut r)?,
            },
            0x84 => Response::End { id: r.u64()? },
            0x85 => Response::Error {
                id: r.u64()?,
                error: get_error(&mut r)?,
            },
            0x86 => Response::Prepared {
                id: r.u64()?,
                statement: r.u64()?,
                param_slots: r.u64()?,
            },
            tag => return Err(ProtocolError::UnknownTag("response frame", tag)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Writes one length-prefixed frame to `w`. The payload should come from
/// [`Request::encode`] / [`Response::encode`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame payload from `r`.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up); an EOF mid-frame is [`ProtocolError::Truncated`]; a length prefix
/// past [`MAX_FRAME`] is rejected before any allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ProtocolError::Truncated);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    let mut read = 0;
    while read < len {
        match r.read(&mut payload[read..]) {
            Ok(0) => return Err(ProtocolError::Truncated),
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_byte_pipe() {
        let req = Request::hello();
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &req.encode()).unwrap();
        let mut cursor = io::Cursor::new(pipe);
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut cursor = io::Cursor::new(huge.to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::Oversized(_))
        ));
    }

    #[test]
    fn eof_mid_frame_is_truncation() {
        let mut bytes = 16u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut cursor = io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::Truncated)
        ));
    }

    #[test]
    fn unknown_frame_tag_is_an_error() {
        assert!(matches!(
            Request::decode(&[0x7E]),
            Err(ProtocolError::UnknownTag("request frame", 0x7E))
        ));
        assert!(matches!(
            Response::decode(&[0x02]),
            Err(ProtocolError::UnknownTag("response frame", 0x02))
        ));
    }
}
