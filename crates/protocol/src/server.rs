//! The reference TCP server: an accept loop over `std::net::TcpListener`
//! with, per connection, one frame-reader thread and one executor-driver
//! thread multiplexing every in-flight query for that connection.
//!
//! # Threading model
//!
//! The reader thread owns the request side: it parses frames, submits
//! queries through the [`OwnedProvider`] (admission control runs inside
//! `submit_async` / `submit_stream`, so shed requests are answered with an
//! `Overloaded` error frame without ever reaching the worker pool), and
//! hands the resulting `'static` futures and streams to a
//! [`Multiplexer`] as poll closures. The
//! driver thread runs the multiplexer: it parks until an engine waker fires
//! and then writes `Rows` / `Batch` / `End` / `Error` frames. Both threads
//! share the socket's write half behind a mutex, so handshake and
//! `Prepared` replies (written by the reader) interleave safely with result
//! frames (written by the driver).
//!
//! # Cancellation and backpressure
//!
//! Result frames are written with blocking socket writes from the driver —
//! a slow client backpressures the stream channel, which backpressures the
//! producing engine, exactly like a slow in-process consumer. A failed
//! write (client gone) drops the `QueryStream`, whose `Drop` trips the
//! query's cancel token: disconnecting mid-stream cancels the work, which
//! `tests/tests/chaos.rs` pins by watching the work counters stop.

use crate::frame::{read_frame, write_frame, Request, Response, MAGIC, VERSION};
use mrq_common::executor::{Multiplexer, MuxHandle};
use mrq_common::MrqError;
use mrq_core::{OwnedPreparedQuery, OwnedProvider, QueryStream};
use std::collections::HashMap;
use std::future::Future;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::Poll;
use std::thread::JoinHandle;

/// A running MRQ server.
///
/// Bind with [`Server::start`], discover the bound port with
/// [`Server::local_addr`] (bind to port 0 for tests), and stop with
/// [`Server::shutdown`] — which is also what a client's `Shutdown` frame
/// triggers. Dropping the server shuts it down.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// State shared by the accept loop and every connection.
struct ServerShared {
    provider: OwnedProvider,
    stop: Arc<AtomicBool>,
    local_addr: SocketAddr,
    /// Read halves of live connections, so shutdown can unblock parked
    /// reader threads with `Shutdown::Both`.
    sockets: Mutex<Vec<TcpStream>>,
}

impl ServerShared {
    /// Trips the stop flag, unblocks the accept loop with a throwaway
    /// connection, and shuts down every live socket.
    fn initiate_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        for socket in self.sockets.lock().unwrap().iter() {
            let _ = socket.shutdown(Shutdown::Both);
        }
    }
}

impl Server {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral test port) and
    /// starts accepting connections, serving queries from `provider`.
    ///
    /// The provider's admission gate, plan cache and parallelism settings
    /// apply as configured before sealing — the server adds no policy of
    /// its own.
    pub fn start(provider: OwnedProvider, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ServerShared {
            provider,
            stop: Arc::clone(&stop),
            local_addr,
            sockets: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("mrq-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once a shutdown (local or client-requested) has begun.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stops accepting, disconnects every client, and waits for all
    /// connection threads to finish. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the server stops on its own (a client sent a
    /// `Shutdown` frame). Used by the standalone binary.
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        {
            let mut sockets = shared.sockets.lock().unwrap();
            if let Ok(clone) = stream.try_clone() {
                sockets.push(clone);
            }
        }
        let conn_shared = Arc::clone(&shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("mrq-conn".into())
            .spawn(move || serve_connection(stream, conn_shared))
        {
            connections.push(handle);
        }
        // Reap finished connections so a long-lived server does not
        // accumulate join handles.
        connections.retain(|h| !h.is_finished());
    }
    // Stop flag is set: disconnect stragglers and wait for their threads.
    for socket in shared.sockets.lock().unwrap().drain(..) {
        let _ = socket.shutdown(Shutdown::Both);
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Sends one response frame over the shared write half.
fn send(writer: &Mutex<TcpStream>, response: &Response) -> io::Result<()> {
    let payload = response.encode();
    let mut guard = writer.lock().unwrap();
    write_frame(&mut *guard, &payload)
}

fn serve_connection(stream: TcpStream, shared: Arc<ServerShared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mux = Multiplexer::new();
    let handle = mux.handle();
    let driver = std::thread::Builder::new()
        .name("mrq-conn-driver".into())
        .spawn(move || {
            mux.run();
        });
    read_requests(&stream, &writer, &handle, &shared);
    // Reader is done (EOF, protocol error, or shutdown): no new tasks, let
    // the driver drain what is in flight. Shut the socket down so tasks
    // still writing to a gone client fail fast instead of blocking.
    handle.close();
    if shared.stop.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Both);
    }
    if let Ok(driver) = driver {
        let _ = driver.join();
    }
}

/// The reader loop: handshake, then one request frame at a time until the
/// peer hangs up, breaks protocol, or asks for shutdown.
fn read_requests(
    stream: &TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    handle: &MuxHandle,
    shared: &Arc<ServerShared>,
) {
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // Handshake: the first frame must be a matching Hello.
    match read_frame(&mut read_half) {
        Ok(Some(payload)) => match Request::decode(&payload) {
            Ok(Request::Hello { magic, version }) if magic == MAGIC && version == VERSION => {
                if send(writer, &Response::Hello { version: VERSION }).is_err() {
                    return;
                }
            }
            _ => return,
        },
        _ => return,
    }
    let mut statements: HashMap<u64, Arc<OwnedPreparedQuery>> = HashMap::new();
    let mut next_statement: u64 = 1;
    loop {
        let payload = match read_frame(&mut read_half) {
            Ok(Some(payload)) => payload,
            // Clean EOF or broken frame: either way the conversation is
            // over. A decode error below still gets a best-effort error
            // frame; a transport error cannot.
            Ok(None) | Err(_) => return,
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                // Correlation id 0 is reserved for connection-level errors.
                let _ = send(
                    writer,
                    &Response::Error {
                        id: 0,
                        error: MrqError::Internal(format!("protocol error: {e}")),
                    },
                );
                return;
            }
        };
        match request {
            Request::Hello { .. } => {
                let _ = send(
                    writer,
                    &Response::Error {
                        id: 0,
                        error: MrqError::Internal("unexpected second handshake".into()),
                    },
                );
                return;
            }
            Request::Query {
                id,
                streamed,
                strategy,
                options,
                expr,
            } => {
                if streamed {
                    let stream = shared.provider.submit_stream(expr, strategy, options);
                    spawn_stream_task(handle, writer, id, stream);
                } else {
                    let future = shared.provider.submit_async(expr, strategy, options);
                    spawn_unary_task(handle, writer, id, future);
                }
            }
            Request::Prepare { id, strategy, expr } => {
                let reply = match shared.provider.prepare(expr, strategy) {
                    Ok(prepared) => {
                        let statement = next_statement;
                        next_statement += 1;
                        let param_slots = prepared.param_slots() as u64;
                        statements.insert(statement, Arc::new(prepared));
                        Response::Prepared {
                            id,
                            statement,
                            param_slots,
                        }
                    }
                    Err(error) => Response::Error { id, error },
                };
                if send(writer, &reply).is_err() {
                    return;
                }
            }
            Request::Execute {
                id,
                statement,
                streamed,
                options,
                bindings,
            } => match statements.get(&statement) {
                Some(prepared) => {
                    if streamed {
                        let stream = prepared.submit_stream(&bindings, options);
                        spawn_stream_task(handle, writer, id, stream);
                    } else {
                        let future = prepared.submit_async(&bindings, options);
                        spawn_unary_task(handle, writer, id, future);
                    }
                }
                None => {
                    let reply = Response::Error {
                        id,
                        error: MrqError::Internal(format!("unknown statement handle {statement}")),
                    };
                    if send(writer, &reply).is_err() {
                        return;
                    }
                }
            },
            Request::CloseStatement { statement } => {
                statements.remove(&statement);
            }
            Request::Shutdown => {
                shared.initiate_shutdown();
                return;
            }
        }
    }
}

/// Injects a poll task for a unary query: resolve the future, write one
/// `Rows` (or `Error`) frame, done.
fn spawn_unary_task(
    handle: &MuxHandle,
    writer: &Arc<Mutex<TcpStream>>,
    id: u64,
    future: mrq_core::QueryFuture<'static>,
) {
    let writer = Arc::clone(writer);
    let mut future = Some(future);
    handle.spawn(Box::new(move |cx| {
        let Some(inner) = future.as_mut() else {
            return Poll::Ready(());
        };
        match Pin::new(inner).poll(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(result) => {
                let reply = match result {
                    Ok(output) => Response::Rows {
                        id,
                        schema: output.schema,
                        rows: output.rows,
                    },
                    Err(error) => Response::Error { id, error },
                };
                let _ = send(&writer, &reply);
                future = None;
                Poll::Ready(())
            }
        }
    }));
}

/// Injects a poll task for a streamed query: write each batch as it
/// publishes, then `End` or a trailing `Error`. A failed socket write drops
/// the stream, whose `Drop` cancels the query — the network mirror of a
/// dropped in-process `QueryStream`.
fn spawn_stream_task(
    handle: &MuxHandle,
    writer: &Arc<Mutex<TcpStream>>,
    id: u64,
    stream: QueryStream<'static>,
) {
    let writer = Arc::clone(writer);
    let mut stream = Some(stream);
    handle.spawn(Box::new(move |cx| {
        let Some(inner) = stream.as_mut() else {
            return Poll::Ready(());
        };
        loop {
            match inner.poll_next_batch(cx) {
                Poll::Pending => return Poll::Pending,
                Poll::Ready(Some(Ok(batch))) => {
                    if send(&writer, &Response::Batch { id, rows: batch }).is_err() {
                        stream = None;
                        return Poll::Ready(());
                    }
                }
                Poll::Ready(Some(Err(error))) => {
                    let _ = send(&writer, &Response::Error { id, error });
                    stream = None;
                    return Poll::Ready(());
                }
                Poll::Ready(None) => {
                    let _ = send(&writer, &Response::End { id });
                    stream = None;
                    return Poll::Ready(());
                }
            }
        }
    }));
}
