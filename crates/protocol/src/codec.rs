//! Serializers for the domain types that cross the wire: values, schemas,
//! expression trees, strategies, query options and errors.
//!
//! Layouts are documented in `docs/SERVING.md` (the wire-protocol
//! specification) and pinned by the golden-bytes test in
//! `tests/tests/wire_protocol.rs` — any change here is a protocol version
//! bump, not a refactor.

use crate::wire::{put_bool, put_f64, put_i32, put_i64, put_str, put_u32, put_u64, put_u8, Reader};
use crate::ProtocolError;
use mrq_common::{DataType, Date, Decimal, Field, MrqError, QosClass, Schema, Value};
use mrq_core::{ParallelConfig, QueryOptions, Strategy};
use mrq_engine_hybrid::{HybridConfig, Materialization, StagingLayout, TransferPolicy};
use mrq_expr::{BinaryOp, Expr, QueryMethod, SortDirection, SourceId, UnaryOp};
use std::sync::Arc;
use std::time::Duration;

/// Maximum expression-tree nesting the decoder will follow. A hand-crafted
/// frame of nested unary nodes must exhaust this budget, not the thread's
/// stack — the cap bounds the recursive decoder to a depth that fits
/// comfortably in a 2 MiB test-thread stack even with debug-size frames,
/// while real query trees stay one order of magnitude below it.
pub const MAX_EXPR_DEPTH: usize = 256;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// Encodes a [`Value`]: a one-byte type tag, then the payload. `Decimal`
/// travels as its raw fixed-point `i64`, `Date` as epoch days, `Float64` as
/// its IEEE-754 bit pattern — all lossless, so the bit-identity tests can
/// compare server results against in-process execution directly.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Bool(b) => {
            put_u8(buf, 1);
            put_bool(buf, *b);
        }
        Value::Int32(i) => {
            put_u8(buf, 2);
            put_i32(buf, *i);
        }
        Value::Int64(i) => {
            put_u8(buf, 3);
            put_i64(buf, *i);
        }
        Value::Decimal(d) => {
            put_u8(buf, 4);
            put_i64(buf, d.raw());
        }
        Value::Float64(f) => {
            put_u8(buf, 5);
            put_f64(buf, *f);
        }
        Value::Date(d) => {
            put_u8(buf, 6);
            put_i32(buf, d.epoch_days());
        }
        Value::Str(s) => {
            put_u8(buf, 7);
            put_str(buf, s);
        }
    }
}

/// Decodes a [`Value`]; see [`put_value`] for the layout.
pub fn get_value(r: &mut Reader<'_>) -> Result<Value, ProtocolError> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.bool()?),
        2 => Value::Int32(r.i32()?),
        3 => Value::Int64(r.i64()?),
        4 => Value::Decimal(Decimal::from_raw(r.i64()?)),
        5 => Value::Float64(r.f64()?),
        6 => Value::Date(Date::from_epoch_days(r.i32()?)),
        7 => Value::Str(Arc::from(r.str()?.as_str())),
        tag => return Err(ProtocolError::UnknownTag("value", tag)),
    })
}

// ---------------------------------------------------------------------------
// DataType / Schema / rows
// ---------------------------------------------------------------------------

fn put_dtype(buf: &mut Vec<u8>, d: DataType) {
    put_u8(
        buf,
        match d {
            DataType::Bool => 0,
            DataType::Int32 => 1,
            DataType::Int64 => 2,
            DataType::Decimal => 3,
            DataType::Float64 => 4,
            DataType::Date => 5,
            DataType::Str => 6,
        },
    );
}

fn get_dtype(r: &mut Reader<'_>) -> Result<DataType, ProtocolError> {
    Ok(match r.u8()? {
        0 => DataType::Bool,
        1 => DataType::Int32,
        2 => DataType::Int64,
        3 => DataType::Decimal,
        4 => DataType::Float64,
        5 => DataType::Date,
        6 => DataType::Str,
        tag => return Err(ProtocolError::UnknownTag("dtype", tag)),
    })
}

/// Encodes a [`Schema`]: type name, field count, then `name + dtype` per
/// field in declaration order.
pub fn put_schema(buf: &mut Vec<u8>, s: &Schema) {
    put_str(buf, s.name());
    put_u32(buf, s.fields().len() as u32);
    for f in s.fields() {
        put_str(buf, &f.name);
        put_dtype(buf, f.dtype);
    }
}

/// Decodes a [`Schema`]; see [`put_schema`].
pub fn get_schema(r: &mut Reader<'_>) -> Result<Schema, ProtocolError> {
    let name = r.str()?;
    let n = r.count()?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let fname = r.str()?;
        let dtype = get_dtype(r)?;
        fields.push(Field::new(fname, dtype));
    }
    Ok(Schema::new(name, fields))
}

/// Encodes a batch of rows: row count, then per row a column count and the
/// column values.
pub fn put_rows(buf: &mut Vec<u8>, rows: &[Vec<Value>]) {
    put_u32(buf, rows.len() as u32);
    for row in rows {
        put_u32(buf, row.len() as u32);
        for v in row {
            put_value(buf, v);
        }
    }
}

/// Decodes a batch of rows; see [`put_rows`].
pub fn get_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<Value>>, ProtocolError> {
    let n = r.count()?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let cols = r.count()?;
        let mut row = Vec::with_capacity(cols);
        for _ in 0..cols {
            row.push(get_value(r)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

fn put_method(buf: &mut Vec<u8>, m: QueryMethod) {
    put_u8(
        buf,
        match m {
            QueryMethod::Where => 0,
            QueryMethod::Select => 1,
            QueryMethod::GroupBy => 2,
            QueryMethod::OrderBy => 3,
            QueryMethod::ThenBy => 4,
            QueryMethod::Take => 5,
            QueryMethod::Join => 6,
            QueryMethod::Sum => 7,
            QueryMethod::Count => 8,
            QueryMethod::Average => 9,
            QueryMethod::Min => 10,
            QueryMethod::Max => 11,
            QueryMethod::First => 12,
            QueryMethod::StartsWith => 13,
            QueryMethod::EndsWith => 14,
            QueryMethod::Contains => 15,
        },
    );
}

fn get_method(r: &mut Reader<'_>) -> Result<QueryMethod, ProtocolError> {
    Ok(match r.u8()? {
        0 => QueryMethod::Where,
        1 => QueryMethod::Select,
        2 => QueryMethod::GroupBy,
        3 => QueryMethod::OrderBy,
        4 => QueryMethod::ThenBy,
        5 => QueryMethod::Take,
        6 => QueryMethod::Join,
        7 => QueryMethod::Sum,
        8 => QueryMethod::Count,
        9 => QueryMethod::Average,
        10 => QueryMethod::Min,
        11 => QueryMethod::Max,
        12 => QueryMethod::First,
        13 => QueryMethod::StartsWith,
        14 => QueryMethod::EndsWith,
        15 => QueryMethod::Contains,
        tag => return Err(ProtocolError::UnknownTag("method", tag)),
    })
}

fn put_binop(buf: &mut Vec<u8>, op: BinaryOp) {
    put_u8(
        buf,
        match op {
            BinaryOp::Eq => 0,
            BinaryOp::Ne => 1,
            BinaryOp::Lt => 2,
            BinaryOp::Le => 3,
            BinaryOp::Gt => 4,
            BinaryOp::Ge => 5,
            BinaryOp::And => 6,
            BinaryOp::Or => 7,
            BinaryOp::Add => 8,
            BinaryOp::Sub => 9,
            BinaryOp::Mul => 10,
            BinaryOp::Div => 11,
        },
    );
}

fn get_binop(r: &mut Reader<'_>) -> Result<BinaryOp, ProtocolError> {
    Ok(match r.u8()? {
        0 => BinaryOp::Eq,
        1 => BinaryOp::Ne,
        2 => BinaryOp::Lt,
        3 => BinaryOp::Le,
        4 => BinaryOp::Gt,
        5 => BinaryOp::Ge,
        6 => BinaryOp::And,
        7 => BinaryOp::Or,
        8 => BinaryOp::Add,
        9 => BinaryOp::Sub,
        10 => BinaryOp::Mul,
        11 => BinaryOp::Div,
        tag => return Err(ProtocolError::UnknownTag("binop", tag)),
    })
}

/// Encodes an [`Expr`] tree recursively, one tag byte per node.
pub fn put_expr(buf: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Constant(v) => {
            put_u8(buf, 0);
            put_value(buf, v);
        }
        Expr::QueryParam(i) => {
            put_u8(buf, 1);
            put_u64(buf, *i as u64);
        }
        Expr::Source(SourceId(id)) => {
            put_u8(buf, 2);
            put_u32(buf, *id);
        }
        Expr::Parameter(p) => {
            put_u8(buf, 3);
            put_str(buf, p);
        }
        Expr::Member { target, field } => {
            put_u8(buf, 4);
            put_str(buf, field);
            put_expr(buf, target);
        }
        Expr::Binary { op, left, right } => {
            put_u8(buf, 5);
            put_binop(buf, *op);
            put_expr(buf, left);
            put_expr(buf, right);
        }
        Expr::Unary { op, expr } => {
            put_u8(buf, 6);
            put_u8(buf, matches!(op, UnaryOp::Neg) as u8);
            put_expr(buf, expr);
        }
        Expr::Lambda { param, body } => {
            put_u8(buf, 7);
            put_str(buf, param);
            put_expr(buf, body);
        }
        Expr::Call {
            method,
            target,
            args,
            direction,
        } => {
            put_u8(buf, 8);
            put_method(buf, *method);
            put_u8(buf, matches!(direction, SortDirection::Descending) as u8);
            put_expr(buf, target);
            put_u32(buf, args.len() as u32);
            for a in args {
                put_expr(buf, a);
            }
        }
        Expr::Constructor { name, fields } => {
            put_u8(buf, 9);
            put_str(buf, name);
            put_u32(buf, fields.len() as u32);
            for (n, e) in fields {
                put_str(buf, n);
                put_expr(buf, e);
            }
        }
    }
}

/// Decodes an [`Expr`] tree, refusing nesting past [`MAX_EXPR_DEPTH`].
pub fn get_expr(r: &mut Reader<'_>) -> Result<Expr, ProtocolError> {
    get_expr_at(r, 0)
}

fn get_expr_at(r: &mut Reader<'_>, depth: usize) -> Result<Expr, ProtocolError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(ProtocolError::TooDeep);
    }
    Ok(match r.u8()? {
        0 => Expr::Constant(get_value(r)?),
        1 => Expr::QueryParam(r.u64()? as usize),
        2 => Expr::Source(SourceId(r.u32()?)),
        3 => Expr::Parameter(r.str()?),
        4 => {
            let field = r.str()?;
            let target = Box::new(get_expr_at(r, depth + 1)?);
            Expr::Member { target, field }
        }
        5 => {
            let op = get_binop(r)?;
            let left = Box::new(get_expr_at(r, depth + 1)?);
            let right = Box::new(get_expr_at(r, depth + 1)?);
            Expr::Binary { op, left, right }
        }
        6 => {
            let op = if r.bool()? {
                UnaryOp::Neg
            } else {
                UnaryOp::Not
            };
            let expr = Box::new(get_expr_at(r, depth + 1)?);
            Expr::Unary { op, expr }
        }
        7 => {
            let param = r.str()?;
            let body = Box::new(get_expr_at(r, depth + 1)?);
            Expr::Lambda { param, body }
        }
        8 => {
            let method = get_method(r)?;
            let direction = if r.bool()? {
                SortDirection::Descending
            } else {
                SortDirection::Ascending
            };
            let target = Box::new(get_expr_at(r, depth + 1)?);
            let n = r.count()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(get_expr_at(r, depth + 1)?);
            }
            Expr::Call {
                method,
                target,
                args,
                direction,
            }
        }
        9 => {
            let name = r.str()?;
            let n = r.count()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let fname = r.str()?;
                fields.push((fname, get_expr_at(r, depth + 1)?));
            }
            Expr::Constructor { name, fields }
        }
        tag => return Err(ProtocolError::UnknownTag("expr", tag)),
    })
}

// ---------------------------------------------------------------------------
// Strategy / options
// ---------------------------------------------------------------------------

fn put_parallel(buf: &mut Vec<u8>, p: &ParallelConfig) {
    put_u64(buf, p.threads as u64);
    put_u64(buf, p.min_rows_per_thread as u64);
    put_u64(buf, p.morsel_rows as u64);
    put_bool(buf, p.stealing);
}

fn get_parallel(r: &mut Reader<'_>) -> Result<ParallelConfig, ProtocolError> {
    Ok(ParallelConfig {
        threads: r.u64()? as usize,
        min_rows_per_thread: r.u64()? as usize,
        morsel_rows: r.u64()? as usize,
        stealing: r.bool()?,
    })
}

/// Encodes a [`Strategy`], including the full parallel / hybrid
/// configurations so the server reproduces the client's execution plan
/// exactly.
pub fn put_strategy(buf: &mut Vec<u8>, s: &Strategy) {
    match s {
        Strategy::LinqToObjects => put_u8(buf, 0),
        Strategy::CompiledCSharp => put_u8(buf, 1),
        Strategy::CompiledNative => put_u8(buf, 2),
        Strategy::CompiledNativeParallel(p) => {
            put_u8(buf, 3);
            put_parallel(buf, p);
        }
        Strategy::Hybrid(h) => {
            put_u8(buf, 4);
            match h.materialization {
                Materialization::Full => put_u8(buf, 0),
                Materialization::Buffered { rows_per_buffer } => {
                    put_u8(buf, 1);
                    put_u64(buf, rows_per_buffer as u64);
                }
            }
            put_u8(buf, matches!(h.transfer, TransferPolicy::Min) as u8);
            put_u8(buf, matches!(h.layout, StagingLayout::Columnar) as u8);
            put_parallel(buf, &h.parallel);
        }
    }
}

/// Decodes a [`Strategy`]; see [`put_strategy`].
pub fn get_strategy(r: &mut Reader<'_>) -> Result<Strategy, ProtocolError> {
    Ok(match r.u8()? {
        0 => Strategy::LinqToObjects,
        1 => Strategy::CompiledCSharp,
        2 => Strategy::CompiledNative,
        3 => Strategy::CompiledNativeParallel(get_parallel(r)?),
        4 => {
            let materialization = match r.u8()? {
                0 => Materialization::Full,
                1 => Materialization::Buffered {
                    rows_per_buffer: r.u64()? as usize,
                },
                tag => return Err(ProtocolError::UnknownTag("materialization", tag)),
            };
            let transfer = if r.bool()? {
                TransferPolicy::Min
            } else {
                TransferPolicy::Max
            };
            let layout = if r.bool()? {
                StagingLayout::Columnar
            } else {
                StagingLayout::RowWise
            };
            let parallel = get_parallel(r)?;
            Strategy::Hybrid(HybridConfig {
                materialization,
                transfer,
                layout,
                parallel,
            })
        }
        tag => return Err(ProtocolError::UnknownTag("strategy", tag)),
    })
}

/// Encodes [`QueryOptions`]: deadline presence flag + nanoseconds, QoS
/// class byte, streamed-batch row count.
pub fn put_options(buf: &mut Vec<u8>, o: &QueryOptions) {
    match o.deadline {
        None => put_bool(buf, false),
        Some(d) => {
            put_bool(buf, true);
            put_u64(buf, d.as_nanos() as u64);
        }
    }
    put_u8(
        buf,
        match o.class {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
            QosClass::Maintenance => 2,
        },
    );
    put_u64(buf, o.stream_batch_rows as u64);
}

/// Decodes [`QueryOptions`]; see [`put_options`].
pub fn get_options(r: &mut Reader<'_>) -> Result<QueryOptions, ProtocolError> {
    let deadline = if r.bool()? {
        Some(Duration::from_nanos(r.u64()?))
    } else {
        None
    };
    let class = match r.u8()? {
        0 => QosClass::Interactive,
        1 => QosClass::Batch,
        2 => QosClass::Maintenance,
        tag => return Err(ProtocolError::UnknownTag("qos", tag)),
    };
    let stream_batch_rows = r.u64()? as usize;
    Ok(QueryOptions {
        deadline,
        class,
        stream_batch_rows,
    })
}

// ---------------------------------------------------------------------------
// MrqError
// ---------------------------------------------------------------------------

/// Encodes an [`MrqError`] so execution failures cross the wire as typed
/// values, not strings — the client can still match on `Overloaded` and
/// read the exact in-flight / limit numbers the admission gate observed.
pub fn put_error(buf: &mut Vec<u8>, e: &MrqError) {
    match e {
        MrqError::UnknownField(s) => {
            put_u8(buf, 0);
            put_str(buf, s);
        }
        MrqError::TypeMismatch { expected, found } => {
            put_u8(buf, 1);
            put_str(buf, expected);
            put_str(buf, found);
        }
        MrqError::Unsupported(s) => {
            put_u8(buf, 2);
            put_str(buf, s);
        }
        MrqError::Codegen(s) => {
            put_u8(buf, 3);
            put_str(buf, s);
        }
        MrqError::Heap(s) => {
            put_u8(buf, 4);
            put_str(buf, s);
        }
        MrqError::Cancelled => put_u8(buf, 5),
        MrqError::DeadlineExceeded => put_u8(buf, 6),
        MrqError::Overloaded { in_flight, limit } => {
            put_u8(buf, 7);
            put_u64(buf, *in_flight as u64);
            put_u64(buf, *limit as u64);
        }
        MrqError::Internal(s) => {
            put_u8(buf, 8);
            put_str(buf, s);
        }
    }
}

/// Decodes an [`MrqError`]; see [`put_error`].
pub fn get_error(r: &mut Reader<'_>) -> Result<MrqError, ProtocolError> {
    Ok(match r.u8()? {
        0 => MrqError::UnknownField(r.str()?),
        1 => MrqError::TypeMismatch {
            expected: r.str()?,
            found: r.str()?,
        },
        2 => MrqError::Unsupported(r.str()?),
        3 => MrqError::Codegen(r.str()?),
        4 => MrqError::Heap(r.str()?),
        5 => MrqError::Cancelled,
        6 => MrqError::DeadlineExceeded,
        7 => MrqError::Overloaded {
            in_flight: r.u64()? as usize,
            limit: r.u64()? as usize,
        },
        8 => MrqError::Internal(r.str()?),
        tag => return Err(ProtocolError::UnknownTag("error", tag)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_value(v: Value) {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        let mut r = Reader::new(&buf);
        let back = get_value(&mut r).unwrap();
        r.finish().unwrap();
        // Float64 NaN never compares equal; compare bit patterns instead.
        match (&v, &back) {
            (Value::Float64(a), Value::Float64(b)) => {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            _ => assert_eq!(v, back),
        }
    }

    #[test]
    fn values_round_trip() {
        round_trip_value(Value::Null);
        round_trip_value(Value::Bool(true));
        round_trip_value(Value::Int32(-7));
        round_trip_value(Value::Int64(i64::MAX));
        round_trip_value(Value::Decimal(Decimal::from_raw(-123_456)));
        round_trip_value(Value::Float64(f64::NAN));
        round_trip_value(Value::Date(Date::from_epoch_days(9000)));
        round_trip_value(Value::str("BRASS"));
    }

    #[test]
    fn deep_expr_is_rejected_not_overflowed() {
        let mut e = Expr::Parameter("x".into());
        for _ in 0..(MAX_EXPR_DEPTH + 8) {
            e = Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            };
        }
        let mut buf = Vec::new();
        put_expr(&mut buf, &e);
        let mut r = Reader::new(&buf);
        assert!(matches!(get_expr(&mut r), Err(ProtocolError::TooDeep)));
    }

    #[test]
    fn strategies_round_trip() {
        let strategies = [
            Strategy::LinqToObjects,
            Strategy::CompiledCSharp,
            Strategy::CompiledNative,
            Strategy::CompiledNativeParallel(ParallelConfig {
                threads: 8,
                min_rows_per_thread: 1,
                morsel_rows: 1024,
                stealing: true,
            }),
            Strategy::Hybrid(HybridConfig {
                materialization: Materialization::Buffered {
                    rows_per_buffer: 4096,
                },
                transfer: TransferPolicy::Min,
                layout: StagingLayout::Columnar,
                parallel: ParallelConfig::sequential(),
            }),
        ];
        for s in &strategies {
            let mut buf = Vec::new();
            put_strategy(&mut buf, s);
            let mut r = Reader::new(&buf);
            assert_eq!(&get_strategy(&mut r).unwrap(), s);
            r.finish().unwrap();
        }
    }
}
