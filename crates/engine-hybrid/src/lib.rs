//! The combined managed/native strategy (§6): stage, then compute natively.
//!
//! Arbitrary managed collections cannot be handed to native code, so the
//! paper's third strategy generates *both* sides: managed code iterates the
//! collection, applies the filters, and copies only the columns the rest of
//! the query needs (the implicit projection of §6.1.1) into unmanaged
//! buffers; generated native code then does the heavy lifting over the
//! staged, flat data.
//!
//! Two materialisation policies are reproduced:
//!
//! * **Full materialisation** (§6.1.1) — all qualifying rows are staged
//!   before native processing starts (large footprint, single hand-off).
//! * **Buffered materialisation** (§6.1.2) — a fixed-size buffer is staged
//!   and consumed repeatedly, keeping the footprint constant; only valid for
//!   queries whose native part can consume input incrementally (aggregation,
//!   join probe), exactly as in the paper.
//!
//! Two transfer policies for result construction are reproduced (§6.1.1,
//! §7.3):
//!
//! * **Max** — every column the query needs downstream is staged, so results
//!   are built entirely from native data.
//! * **Min** — only key/filter/aggregation columns are staged together with
//!   each row's index in the source collection; output columns are fetched
//!   from the original managed objects when results are constructed.

#![warn(missing_docs)]

use mrq_codegen::exec::{ExecState, QueryOutput, TableAccess};
use mrq_codegen::spec::{ColumnRef, OutputExpr, QuerySpec, ScalarExpr};
use mrq_common::profile::{phases, CostBreakdown};
use mrq_common::{
    morsel, DataType, Field, MrqError, ParallelConfig, Result, Schema, Value, WorkStats,
};
use mrq_engine_csharp::HeapTable;
use std::time::{Duration, Instant};

pub mod staging;
pub use staging::{ColumnBuffer, StagedTable};

/// How probe-side data is materialised into unmanaged memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Materialization {
    /// Stage everything, then process (§6.1.1).
    Full,
    /// Stage into a fixed-size buffer of this many rows and hand each full
    /// buffer to the native side (§6.1.2).
    Buffered {
        /// Rows per staging buffer.
        rows_per_buffer: usize,
    },
}

/// Which columns are shipped to the native side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferPolicy {
    /// Ship every column needed to build results natively.
    Max,
    /// Ship only the columns the native computation itself needs, plus the
    /// row's index; result columns are read back from the managed objects.
    Min,
}

/// How the unmanaged staging buffers are laid out (§6.1.1: the buffer pages
/// are cast either to arrays of a generated struct type — row-wise — or to
/// arrays of primitive types — columnar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum StagingLayout {
    /// One generated struct per staged row (the paper's default).
    #[default]
    RowWise,
    /// One primitive array per staged column.
    Columnar,
}

/// Configuration of a hybrid execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HybridConfig {
    /// Materialisation policy.
    pub materialization: Materialization,
    /// Transfer policy.
    pub transfer: TransferPolicy,
    /// Staging-buffer layout.
    pub layout: StagingLayout,
    /// Degree of parallelism for staging (probe and build sides), the
    /// partitioned join build and native processing. The default
    /// ([`ParallelConfig::sequential`]) reproduces the paper's
    /// single-threaded behaviour exactly; with more threads each morsel
    /// worker filters its morsels of the managed collection (work-stolen
    /// from a shared cursor or static ranges, per
    /// [`ParallelConfig::stealing`]) into a thread-local staging shard and
    /// the partial native states merge in morsel order.
    pub parallel: ParallelConfig,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            materialization: Materialization::Full,
            transfer: TransferPolicy::Max,
            layout: StagingLayout::RowWise,
            parallel: ParallelConfig::sequential(),
        }
    }
}

impl HybridConfig {
    /// The paper's default buffer size (64 KB) expressed in rows for a
    /// typical staged row of ~32 bytes.
    pub fn buffered() -> Self {
        HybridConfig {
            materialization: Materialization::Buffered {
                rows_per_buffer: 2048,
            },
            ..HybridConfig::default()
        }
    }

    /// The same configuration with columnar staging buffers.
    pub fn columnar(mut self) -> Self {
        self.layout = StagingLayout::Columnar;
        self
    }

    /// The same configuration with the given degree of parallelism.
    pub fn parallel(mut self, config: ParallelConfig) -> Self {
        self.parallel = config;
        self
    }

    /// The same configuration with `threads` morsel workers.
    pub fn with_threads(self, threads: usize) -> Self {
        self.parallel(ParallelConfig {
            threads: threads.max(1),
            min_rows_per_thread: 1024,
            ..ParallelConfig::default()
        })
    }
}

/// The outcome of a hybrid execution: the result plus the cost breakdown the
/// paper's Figures 8, 10 and 12 report, and the staging footprint.
#[derive(Debug, Clone)]
pub struct HybridRun {
    /// Query result.
    pub output: QueryOutput,
    /// Per-phase wall-clock breakdown.
    pub breakdown: CostBreakdown,
    /// Bytes copied into unmanaged staging buffers.
    pub staged_bytes: usize,
    /// Rows that qualified on the managed side and were staged.
    pub staged_rows: usize,
}

/// Which columns of the original spec are needed natively, in Min mode.
fn native_columns(spec: &QuerySpec, slot: usize, transfer: TransferPolicy) -> Vec<usize> {
    match transfer {
        TransferPolicy::Max => spec.referenced_columns(slot),
        TransferPolicy::Min => {
            // Keys, group keys, aggregate inputs and post filters must be
            // native; plain output columns are looked up from managed objects
            // at result-construction time.
            let mut cols = Vec::new();
            let mut push = |e: &ScalarExpr| {
                let mut refs = Vec::new();
                e.columns(&mut refs);
                for r in refs {
                    if r.slot == slot && !cols.contains(&r.col) {
                        cols.push(r.col);
                    }
                }
            };
            for j in &spec.joins {
                for e in j.build_keys.iter().chain(j.probe_keys.iter()) {
                    push(e);
                }
            }
            for e in spec.post_filters.iter().chain(spec.group_keys.iter()) {
                push(e);
            }
            for a in &spec.aggregates {
                if let Some(e) = &a.input {
                    push(e);
                }
            }
            // Sort keys live in the output; grouped outputs are computed
            // natively anyway. For non-grouped queries sort keys must also be
            // native.
            if !spec.is_grouped() {
                for k in &spec.sort {
                    if let OutputExpr::Scalar(e) = &spec.output[k.output_col].1 {
                        push(e);
                    }
                }
            }
            cols.sort_unstable();
            cols
        }
    }
}

/// Builds the staged schema for one slot: the projected columns (renamed to
/// their original names) plus, in Min mode, a trailing `__idx` column.
fn staged_schema(
    original: &Schema,
    cols: &[usize],
    with_index: bool,
    slot: usize,
) -> (Schema, Vec<(usize, usize)>) {
    let mut fields = Vec::new();
    let mut mapping = Vec::new(); // (original col, staged col)
    for (staged_idx, &col) in cols.iter().enumerate() {
        fields.push(original.field(col).clone());
        mapping.push((col, staged_idx));
    }
    if with_index {
        fields.push(Field::new("__idx", DataType::Int64));
    }
    (Schema::new(format!("Staged{slot}"), fields), mapping)
}

struct SlotStaging {
    /// original column -> staged column
    mapping: Vec<(usize, usize)>,
    schema: Schema,
    /// index of the `__idx` column, if present
    index_col: Option<usize>,
}

/// Executes a query with the hybrid strategy.
///
/// `tables[0]` is the managed probe-side collection; following tables match
/// `spec.joins` order. Filters on slot 0 and on join build sides are applied
/// on the managed side before staging, as in the paper.
pub fn execute(
    spec: &QuerySpec,
    params: &[Value],
    tables: &[&HeapTable<'_>],
    config: HybridConfig,
) -> Result<HybridRun> {
    if tables.len() != spec.joins.len() + 1 {
        return Err(MrqError::Internal(format!(
            "expected {} tables, got {}",
            spec.joins.len() + 1,
            tables.len()
        )));
    }
    // Managed-side staging filters evaluate parameters before the ExecState
    // guard runs, so under-bound prepared executions must fail here.
    spec.check_params(params)?;
    let mut breakdown = CostBreakdown::new();
    let min_mode = config.transfer == TransferPolicy::Min;
    // Min-mode result reconstruction from managed objects is only defined for
    // non-grouped queries (the paper uses it for sorting and the plain join);
    // grouped queries fall back to Max.
    let min_mode = min_mode && !spec.is_grouped();

    // ------------------------------------------------------------------
    // Plan the staging: per slot, which columns are shipped.
    // ------------------------------------------------------------------
    let mut slots: Vec<SlotStaging> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for slot in 0..=spec.joins.len() {
        let cols = native_columns(
            spec,
            slot,
            if min_mode {
                TransferPolicy::Min
            } else {
                TransferPolicy::Max
            },
        );
        let (schema, mapping) = staged_schema(tables[slot].schema(), &cols, min_mode, slot);
        let index_col = min_mode.then(|| schema.len() - 1);
        slots.push(SlotStaging {
            mapping,
            schema,
            index_col,
        });
    }

    // ------------------------------------------------------------------
    // Rewrite the spec against the staged layouts.
    // ------------------------------------------------------------------
    let remap = |c: ColumnRef| -> ColumnRef {
        let staged = &slots[c.slot];
        match staged.mapping.iter().find(|(orig, _)| *orig == c.col) {
            Some((_, staged_col)) => ColumnRef {
                slot: c.slot,
                col: *staged_col,
            },
            None => ColumnRef {
                slot: c.slot,
                col: usize::MAX, // unresolved: only legal for Min-mode outputs
            },
        }
    };
    let remap_expr = |e: &ScalarExpr| e.remap_columns(&remap);

    let mut native_spec = spec.clone();
    native_spec.root_filters.clear();
    for (j, join) in native_spec.joins.iter_mut().enumerate() {
        join.build_filters.clear();
        join.build_keys = spec.joins[j].build_keys.iter().map(remap_expr).collect();
        join.probe_keys = spec.joins[j].probe_keys.iter().map(remap_expr).collect();
    }
    native_spec.post_filters = spec.post_filters.iter().map(remap_expr).collect();
    native_spec.group_keys = spec.group_keys.iter().map(remap_expr).collect();
    for (a, orig) in native_spec
        .aggregates
        .iter_mut()
        .zip(spec.aggregates.iter())
    {
        a.input = orig.input.as_ref().map(remap_expr);
    }
    // Outputs: in Max mode, remap; in Min mode, replace plain scalar outputs
    // with the per-slot index columns and remember how to rebuild them.
    let mut min_output_slots: Vec<usize> = Vec::new();
    if min_mode {
        // Ship one index column per slot that any output references.
        let mut referenced_slots: Vec<usize> = Vec::new();
        for (_, o) in &spec.output {
            if let OutputExpr::Scalar(e) = o {
                let mut refs = Vec::new();
                e.columns(&mut refs);
                for r in refs {
                    if !referenced_slots.contains(&r.slot) {
                        referenced_slots.push(r.slot);
                    }
                }
            }
        }
        referenced_slots.sort_unstable();
        min_output_slots = referenced_slots;
        native_spec.output = min_output_slots
            .iter()
            .map(|&slot| {
                (
                    format!("__idx_{slot}"),
                    OutputExpr::Scalar(ScalarExpr::Column(ColumnRef {
                        slot,
                        col: slots[slot].index_col.expect("min mode has index columns"),
                    })),
                )
            })
            .collect();
        // Sort keys must be re-pointed at native columns appended after the
        // index outputs.
        let mut new_sort = Vec::new();
        for key in &spec.sort {
            if let OutputExpr::Scalar(e) = &spec.output[key.output_col].1 {
                native_spec.output.push((
                    format!("__sortkey_{}", key.output_col),
                    OutputExpr::Scalar(remap_expr(e)),
                ));
                new_sort.push(mrq_codegen::spec::SortKeySpec {
                    output_col: native_spec.output.len() - 1,
                    descending: key.descending,
                });
            }
        }
        native_spec.sort = new_sort;
        native_spec.hidden_outputs = 0;
        native_spec.output_schema = Schema::new(
            "MinStagedResult",
            native_spec
                .output
                .iter()
                .map(|(name, _)| Field::new(name.clone(), DataType::Int64))
                .collect(),
        );
    } else {
        for (_, o) in native_spec.output.iter_mut() {
            if let OutputExpr::Scalar(e) = o {
                *o = OutputExpr::Scalar(remap_expr(e));
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage build sides (full materialisation always: hash tables need the
    // whole build input, §6.1.2).
    // ------------------------------------------------------------------
    let mut staged_bytes = 0usize;
    let mut staged_rows = 0usize;
    // Managed-side work accounting (`mrq_common::workcount`): the staging
    // scans and copies happen outside the native executor's fused loops, so
    // they are tallied here and folded into the execution state below.
    // Totals are derived from input/output lengths, not per-worker counts,
    // so they are identical whatever `config.parallel` says.
    let mut staging_work = WorkStats::default();
    let mut build_stores: Vec<StagedTable> = Vec::new();
    for (j, join) in spec.joins.iter().enumerate() {
        let slot = join.slot;
        let table = tables[slot];
        let staging = &slots[slot];
        let store = breakdown.time(phases::STAGING, || {
            stage_table_parallel(
                table,
                &staging.schema,
                &staging.mapping,
                staging.index_col,
                &join.build_filters,
                params,
                config.layout,
                config.parallel,
            )
        });
        staged_bytes += store.payload_bytes();
        staged_rows += store.len();
        staging_work.scanned_rows(table.len() as u64);
        staging_work.staged_rows(store.len() as u64);
        build_stores.push(store);
        let _ = j;
    }

    // ------------------------------------------------------------------
    // Execute: stage the probe side (fully or buffered) and consume it.
    // Sequentially with one staging buffer, or morsel-parallel with one
    // thread-local staging shard per worker.
    // ------------------------------------------------------------------
    let slot_schemas: Vec<Schema> = slots.iter().map(|s| s.schema.clone()).collect();
    let build_refs: Vec<&StagedTable> = build_stores.iter().collect();
    // Join hash tables over the staged build sides are themselves built
    // with hash-partitioned parallel workers (string build keys fall back
    // to the sequential build inside the executor).
    let none = vec![None; native_spec.joins.len()];
    let mut state = breakdown.time(phases::BUILD_HASH, || {
        ExecState::new_parallel(
            &native_spec,
            params,
            build_refs,
            &slot_schemas,
            &none,
            config.parallel,
        )
    })?;
    state.record_work(&staging_work);

    // Streaming: attach the serving layer's sink (if any) for incremental
    // publication while later morsels still stage. Min-transfer native rows
    // are `__idx_*` heap handles, not final output rows — they must be
    // rebuilt from the managed collections after the native pass — so Min
    // mode always delivers through the stream's residual output instead.
    if !min_mode {
        if let Some(sink) = mrq_common::stream::current() {
            state.attach_stream_sink(sink);
        }
    }

    let root = tables[0];
    let root_staging = &slots[0];
    let phase = native_phase(spec);

    /// Per-worker staging + consumption totals for one morsel range.
    struct RangeRun {
        /// Peak bytes live in this worker's staging buffer(s).
        staged_bytes: usize,
        staged_rows: usize,
        staging_time: Duration,
        native_time: Duration,
    }

    // Stages one contiguous row range into a worker-local buffer (one shard
    // under full materialisation, a reused fixed-size buffer under buffered
    // materialisation) and feeds it to `worker_state`. Shared by the
    // sequential path (on `state` directly) and every morsel worker (on a
    // fork of `state`). Staged `__idx` columns (Min transfer) hold absolute
    // row indexes, so Min-mode result reconstruction is oblivious to the
    // partitioning.
    let run_range = |worker_state: &mut ExecState<'_, StagedTable>,
                     range: std::ops::Range<usize>|
     -> RangeRun {
        let mut run = RangeRun {
            staged_bytes: 0,
            staged_rows: 0,
            staging_time: Duration::ZERO,
            native_time: Duration::ZERO,
        };
        let chunk = match config.materialization {
            Materialization::Full => range.len().max(1),
            Materialization::Buffered { rows_per_buffer } => rows_per_buffer.max(1),
        };
        let mut cursor = range.start;
        loop {
            let end = (cursor + chunk).min(range.end);
            let start = Instant::now();
            let mut buffer = StagedTable::new(root_staging.schema.clone(), config.layout);
            stage_range(
                root,
                cursor..end,
                &root_staging.mapping,
                root_staging.index_col,
                &spec.root_filters,
                params,
                &mut buffer,
            );
            run.staging_time += start.elapsed();
            run.staged_bytes = run.staged_bytes.max(buffer.payload_bytes());
            run.staged_rows += buffer.len();
            // Managed probe-side staging work: rows scanned from the managed
            // collection plus rows copied into the shard. The chunked
            // `consume` below then accounts the native scan of the staged
            // rows itself.
            worker_state.record_work(&WorkStats {
                rows_scanned: (end - cursor) as u64,
                staging_copies: buffer.len() as u64,
                ..WorkStats::default()
            });
            let start = Instant::now();
            worker_state.consume(&buffer);
            run.native_time += start.elapsed();
            cursor = end;
            if cursor >= range.end {
                break;
            }
        }
        run
    };

    // Lifecycle control: a cancelled/expired query stops between the
    // build-side staging above and the probe-side staging loop below (the
    // morsel fan-out then checks between morsels).
    mrq_common::cancel::checkpoint();
    let (ranges, stealing) = morsel::plan(root.len(), config.parallel);
    if ranges.len() <= 1 {
        // Sequential (or single-morsel) fast path: no fork, no merge.
        let run = run_range(&mut state, 0..root.len());
        staged_bytes += run.staged_bytes;
        staged_rows += run.staged_rows;
        breakdown.add(phases::STAGING, run.staging_time);
        breakdown.add(phase, run.native_time);
    } else {
        // Morsel-parallel staging: every worker filters its morsel of the
        // managed collection into a thread-local staging shard (row-wise or
        // columnar) and immediately consumes it with a forked native state.
        // Workers come from the persistent pool; morsels come from the
        // shared work-stealing cursor (or one static
        // range per worker when stealing is off); join hash tables were
        // built once above and are shared behind an `Arc`. Partial states
        // merge in morsel order, so result row order matches the sequential
        // path exactly.
        // Streaming: the sink moves from the base state to the ordered
        // gather (forks never inherit it), so each shard's rows publish the
        // moment every earlier morsel has published — the same in-order
        // frontier the merge below reproduces.
        let sink = state.take_sink();
        let work = |_: usize, range: std::ops::Range<usize>| {
            let mut worker_state = state.fork();
            let run = run_range(&mut worker_state, range);
            (worker_state, run)
        };
        let max_workers = if stealing {
            config.parallel.threads
        } else {
            ranges.len()
        };
        let partials = match &sink {
            Some(sink) => morsel::run_ordered(&ranges, max_workers, work, |_, partial| {
                partial.0.flush_rows_to(sink)
            }),
            None if stealing => morsel::steal(&ranges, max_workers, work),
            None => morsel::scatter(&ranges, work),
        };
        // Per-phase wall-clock is estimated as the slowest single morsel or
        // the ideal per-worker share of the total, whichever is larger (the
        // two coincide for static one-range-per-worker partitioning);
        // footprint is the sum of concurrently live shards.
        let workers = config.parallel.threads.min(ranges.len()).max(1) as u32;
        let mut max_staging = Duration::ZERO;
        let mut max_native = Duration::ZERO;
        let mut sum_staging = Duration::ZERO;
        let mut sum_native = Duration::ZERO;
        for (partial, run) in partials {
            state.merge(partial);
            staged_bytes += run.staged_bytes;
            staged_rows += run.staged_rows;
            max_staging = max_staging.max(run.staging_time);
            max_native = max_native.max(run.native_time);
            sum_staging += run.staging_time;
            sum_native += run.native_time;
        }
        breakdown.add(phases::STAGING, max_staging.max(sum_staging / workers));
        breakdown.add(phase, max_native.max(sum_native / workers));
    }

    // The staging→native boundary: every staged shard has merged into the
    // final state. Chaos tests inject here to prove a failure between
    // staging and finishing leaves peers and the pool untouched.
    mrq_common::fault::point("staging.merge")?;

    // ------------------------------------------------------------------
    // Finish natively, then (Min mode) rebuild result objects from the
    // original managed collections.
    // ------------------------------------------------------------------
    let native_out = breakdown.time(native_phase(spec), || state.finish());
    let output = if min_mode {
        breakdown.time(phases::RETURN_RESULT, || {
            rebuild_min_output(spec, params, tables, &min_output_slots, native_out)
        })?
    } else {
        breakdown.time(phases::RETURN_RESULT, || {
            // Result rows are already final; cloning them into the output is
            // the (small) result-construction cost.
            Ok::<QueryOutput, MrqError>(native_out)
        })?
    };

    Ok(HybridRun {
        output,
        breakdown,
        staged_bytes,
        staged_rows,
    })
}

/// Picks the phase label for the native part of a query (matching the
/// paper's breakdown figures).
fn native_phase(spec: &QuerySpec) -> &'static str {
    if !spec.joins.is_empty() {
        if spec.is_grouped() {
            phases::PROBE_RETURN
        } else {
            phases::BUILD_HASH
        }
    } else if spec.is_grouped() {
        phases::AGGREGATION
    } else if !spec.sort.is_empty() {
        phases::SORT
    } else {
        phases::PROBE_RETURN
    }
}

/// Stages qualifying rows of a managed table into a fresh staging buffer in
/// the configured layout.
#[allow(clippy::too_many_arguments)]
fn stage_table(
    table: &HeapTable<'_>,
    schema: &Schema,
    mapping: &[(usize, usize)],
    index_col: Option<usize>,
    filters: &[ScalarExpr],
    params: &[Value],
    layout: StagingLayout,
) -> StagedTable {
    let mut store = StagedTable::new(schema.clone(), layout);
    stage_range(
        table,
        0..table.len(),
        mapping,
        index_col,
        filters,
        params,
        &mut store,
    );
    store
}

/// Stages qualifying rows of a managed build-side table with morsel
/// workers: the managed-side filter evaluation and column reads (the
/// expensive part of staging) run in parallel over morsels of the
/// collection, and the qualifying rows are appended to the staging buffer
/// in morsel order — so the staged table is byte-identical to what the
/// sequential [`stage_table`] produces. Sequential configs and tiny tables
/// take the sequential path directly.
#[allow(clippy::too_many_arguments)]
fn stage_table_parallel(
    table: &HeapTable<'_>,
    schema: &Schema,
    mapping: &[(usize, usize)],
    index_col: Option<usize>,
    filters: &[ScalarExpr],
    params: &[Value],
    layout: StagingLayout,
    config: ParallelConfig,
) -> StagedTable {
    if config.partitions_for(table.len()) <= 1 {
        return stage_table(table, schema, mapping, index_col, filters, params, layout);
    }
    let width = schema.len();
    let partials: Vec<Vec<Vec<Value>>> = morsel::dispatch(table.len(), config, |_, range| {
        let mut staged = Vec::new();
        'rows: for row in range {
            for f in filters {
                if !eval_managed_predicate(f, table, row, params) {
                    continue 'rows;
                }
            }
            let mut buf = vec![Value::Null; width];
            for (orig, staged_col) in mapping {
                buf[*staged_col] = table.get_value(row, *orig);
            }
            if let Some(idx_col) = index_col {
                buf[idx_col] = Value::Int64(row as i64);
            }
            staged.push(buf);
        }
        staged
    });
    let mut store = StagedTable::new(schema.clone(), layout);
    for rows in &partials {
        for row in rows {
            store.push_values(row);
        }
    }
    store
}

/// Stages qualifying rows of a range of a managed table into `store`.
#[allow(clippy::too_many_arguments)]
fn stage_range(
    table: &HeapTable<'_>,
    range: std::ops::Range<usize>,
    mapping: &[(usize, usize)],
    index_col: Option<usize>,
    filters: &[ScalarExpr],
    params: &[Value],
    store: &mut StagedTable,
) {
    let width = store.schema().len();
    let mut row_buf: Vec<Value> = vec![Value::Null; width];
    'rows: for row in range {
        // Intra-morsel cancellation cadence, shared with every fused loop:
        // a no-op outside a cancel scope.
        if row.is_multiple_of(mrq_common::cancel::CHECK_EVERY_ROWS) {
            mrq_common::cancel::checkpoint();
        }
        for f in filters {
            if !eval_managed_predicate(f, table, row, params) {
                continue 'rows;
            }
        }
        for (orig, staged) in mapping {
            row_buf[*staged] = table.get_value(row, *orig);
        }
        if let Some(idx_col) = index_col {
            row_buf[idx_col] = Value::Int64(row as i64);
        }
        store.push_values(&row_buf);
    }
}

/// Evaluates a single-slot predicate against a managed table row. This is
/// the "apply predicates in C#" part of the hybrid strategy.
fn eval_managed_predicate(
    expr: &ScalarExpr,
    table: &HeapTable<'_>,
    row: usize,
    params: &[Value],
) -> bool {
    eval_managed_value(expr, table, row, params).as_bool()
}

fn eval_managed_value(
    expr: &ScalarExpr,
    table: &HeapTable<'_>,
    row: usize,
    params: &[Value],
) -> Value {
    match expr {
        ScalarExpr::Column(c) => table.get_value(row, c.col),
        ScalarExpr::Const(v) => v.clone(),
        ScalarExpr::Param(i) => params[*i].clone(),
        ScalarExpr::Binary { op, left, right } => {
            let l = eval_managed_value(left, table, row, params);
            let r = eval_managed_value(right, table, row, params);
            mrq_expr::canonical::eval_binary(*op, &l, &r).unwrap_or(Value::Bool(false))
        }
        ScalarExpr::Unary { op, expr } => {
            let v = eval_managed_value(expr, table, row, params);
            mrq_expr::canonical::eval_unary(*op, &v).unwrap_or(Value::Bool(false))
        }
        ScalarExpr::Str { op, target, arg } => {
            let t = eval_managed_value(target, table, row, params);
            let a = eval_managed_value(arg, table, row, params);
            let out = match (t.as_str(), a.as_str()) {
                (Some(t), Some(a)) => match op {
                    mrq_codegen::spec::StrOp::StartsWith => t.starts_with(a),
                    mrq_codegen::spec::StrOp::EndsWith => t.ends_with(a),
                    mrq_codegen::spec::StrOp::Contains => t.contains(a),
                },
                _ => false,
            };
            Value::Bool(out)
        }
    }
}

/// Min-mode result reconstruction: native execution produced, per result
/// row, the index of the original managed object(s); the real output columns
/// are read back from those objects.
fn rebuild_min_output(
    spec: &QuerySpec,
    params: &[Value],
    tables: &[&HeapTable<'_>],
    output_slots: &[usize],
    native_out: QueryOutput,
) -> Result<QueryOutput> {
    let work = native_out.work;
    let mut rows = Vec::with_capacity(native_out.rows.len());
    for native_row in &native_out.rows {
        // Map slot -> original row index.
        let mut slot_rows = vec![0usize; spec.joins.len() + 1];
        for (pos, &slot) in output_slots.iter().enumerate() {
            slot_rows[slot] = native_row[pos]
                .as_i64()
                .ok_or_else(|| MrqError::Internal("missing index column".into()))?
                as usize;
        }
        let mut row = Vec::with_capacity(spec.visible_outputs());
        for (_, o) in spec.output.iter().take(spec.visible_outputs()) {
            match o {
                OutputExpr::Scalar(e) => {
                    row.push(eval_multi_slot_value(e, tables, &slot_rows, params))
                }
                _ => {
                    return Err(MrqError::Internal(
                        "min mode requires scalar outputs".into(),
                    ))
                }
            }
        }
        rows.push(row);
    }
    Ok(QueryOutput {
        schema: spec.output_schema.clone(),
        rows,
        work,
    })
}

fn eval_multi_slot_value(
    expr: &ScalarExpr,
    tables: &[&HeapTable<'_>],
    slot_rows: &[usize],
    params: &[Value],
) -> Value {
    match expr {
        ScalarExpr::Column(c) => tables[c.slot].get_value(slot_rows[c.slot], c.col),
        ScalarExpr::Const(v) => v.clone(),
        ScalarExpr::Param(i) => params[*i].clone(),
        ScalarExpr::Binary { op, left, right } => {
            let l = eval_multi_slot_value(left, tables, slot_rows, params);
            let r = eval_multi_slot_value(right, tables, slot_rows, params);
            mrq_expr::canonical::eval_binary(*op, &l, &r).unwrap_or(Value::Null)
        }
        ScalarExpr::Unary { op, expr } => {
            let v = eval_multi_slot_value(expr, tables, slot_rows, params);
            mrq_expr::canonical::eval_unary(*op, &v).unwrap_or(Value::Null)
        }
        ScalarExpr::Str { .. } => Value::Bool(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_codegen::spec::lower;
    use mrq_common::{Date, Decimal};
    use mrq_expr::{canonicalize, col, lam, lit, BinaryOp, Expr, Query, SourceId};
    use mrq_mheap::{ClassDesc, Heap, ListId};
    use std::collections::HashMap;

    fn schema() -> Schema {
        Schema::new(
            "Sale",
            vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Str),
                Field::new("price", DataType::Decimal),
                Field::new("day", DataType::Date),
            ],
        )
    }

    fn setup(n: i64) -> (Heap, ListId) {
        let mut heap = Heap::new();
        let class = heap.register_class(ClassDesc::from_schema(&schema()));
        let list = heap.new_list("sales", Some(class));
        for i in 0..n {
            let obj = heap.alloc(class);
            heap.set_i64(obj, 0, i);
            heap.set_str(obj, 1, if i % 3 == 0 { "London" } else { "Paris" });
            heap.set_decimal(obj, 2, Decimal::from_int(i % 10));
            heap.set_date(
                obj,
                3,
                Date::from_ymd(1995, 1, 1).add_days((i % 300) as i32),
            );
            heap.list_push(list, obj);
        }
        (heap, list)
    }

    fn agg_query() -> mrq_expr::CanonicalQuery {
        canonicalize(
            Query::from_source(SourceId(0))
                .where_(lam(
                    "s",
                    Expr::binary(BinaryOp::Eq, col("s", "city"), lit("London")),
                ))
                .group_by(lam("s", col("s", "city")))
                .select(lam(
                    "g",
                    Expr::Constructor {
                        name: "R".into(),
                        fields: vec![
                            (
                                "city".into(),
                                Expr::member(Expr::member(mrq_expr::var("g"), "Key"), "city"),
                            ),
                            (
                                "total".into(),
                                mrq_expr::builder::agg(
                                    mrq_expr::AggFunc::Sum,
                                    "g",
                                    Some(lam("x", col("x", "price"))),
                                ),
                            ),
                        ],
                    },
                ))
                .into_expr(),
        )
    }

    #[test]
    fn full_and_buffered_materialisation_agree_with_the_managed_engine() {
        let (heap, list) = setup(500);
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        let canon = agg_query();
        let spec = lower(&canon, &catalog).unwrap();
        let table = HeapTable::new(&heap, list, schema());

        let reference = mrq_engine_csharp::execute(&spec, &canon.params, &[&table]).unwrap();
        let full = execute(&spec, &canon.params, &[&table], HybridConfig::default()).unwrap();
        let buffered = execute(
            &spec,
            &canon.params,
            &[&table],
            HybridConfig {
                materialization: Materialization::Buffered {
                    rows_per_buffer: 64,
                },
                transfer: TransferPolicy::Max,
                layout: StagingLayout::RowWise,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        assert_eq!(full.output, reference);
        assert_eq!(buffered.output, reference);
        assert!(full.staged_rows > 0);
        assert!(full.staged_bytes > 0);
        // Buffered staging never holds more than one buffer's worth of data.
        assert!(buffered.staged_bytes <= full.staged_bytes);
        // Both record staging and native phases.
        assert!(full.breakdown.get(phases::STAGING).is_some());
        assert!(full.breakdown.get(phases::AGGREGATION).is_some());
    }

    #[test]
    fn implicit_projection_stages_only_referenced_columns() {
        let (heap, list) = setup(100);
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        let canon = agg_query();
        let spec = lower(&canon, &catalog).unwrap();
        // The aggregation touches city and price only (plus the filter on
        // city), so the staged schema must have exactly those two columns.
        assert_eq!(spec.referenced_columns(0), vec![1, 2]);
        let table = HeapTable::new(&heap, list, schema());
        let run = execute(&spec, &canon.params, &[&table], HybridConfig::default()).unwrap();
        // 100/3 rows qualify, two columns staged.
        assert_eq!(run.staged_rows, 34);
    }

    #[test]
    fn columnar_staging_matches_row_wise_staging() {
        let (heap, list) = setup(600);
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        let canon = agg_query();
        let spec = lower(&canon, &catalog).unwrap();
        let table = HeapTable::new(&heap, list, schema());
        let row_wise = execute(&spec, &canon.params, &[&table], HybridConfig::default()).unwrap();
        let columnar = execute(
            &spec,
            &canon.params,
            &[&table],
            HybridConfig::default().columnar(),
        )
        .unwrap();
        let columnar_buffered = execute(
            &spec,
            &canon.params,
            &[&table],
            HybridConfig {
                materialization: Materialization::Buffered {
                    rows_per_buffer: 128,
                },
                transfer: TransferPolicy::Max,
                layout: StagingLayout::Columnar,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        assert_eq!(columnar.output, row_wise.output);
        assert_eq!(columnar_buffered.output, row_wise.output);
        assert!(columnar.staged_rows > 0);
        // The columnar layout stages only the raw column payloads (no per-row
        // struct padding), so its footprint is never larger.
        assert!(columnar.staged_bytes <= row_wise.staged_bytes);
    }

    #[test]
    fn parallel_staging_matches_sequential_for_every_policy() {
        let (heap, list) = setup(3_000);
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        let canon = agg_query();
        let spec = lower(&canon, &catalog).unwrap();
        let table = HeapTable::new(&heap, list, schema());
        let configs = [
            HybridConfig::default(),
            HybridConfig::buffered(),
            HybridConfig::default().columnar(),
            HybridConfig::buffered().columnar(),
        ];
        for base in configs {
            let sequential = execute(&spec, &canon.params, &[&table], base).unwrap();
            for threads in [2usize, 4, 8] {
                let config = base.parallel(ParallelConfig {
                    threads,
                    min_rows_per_thread: 64,
                    ..ParallelConfig::default()
                });
                let parallel = execute(&spec, &canon.params, &[&table], config).unwrap();
                assert_eq!(
                    parallel.output, sequential.output,
                    "{base:?} at {threads} threads"
                );
                assert_eq!(parallel.staged_rows, sequential.staged_rows);
                assert!(parallel.breakdown.get(phases::STAGING).is_some());
            }
        }
    }

    #[test]
    fn parallel_min_transfer_rebuilds_from_absolute_indexes() {
        let (heap, list) = setup(2_000);
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        // Sort query: Min transfer stages sort keys + row indexes only and
        // rebuilds output columns from the managed objects afterwards.
        let canon = canonicalize(
            Query::from_source(SourceId(0))
                .where_(lam(
                    "s",
                    Expr::binary(
                        BinaryOp::Le,
                        col("s", "day"),
                        lit(Date::from_ymd(1995, 6, 1)),
                    ),
                ))
                .order_by(lam("s", col("s", "id")))
                .select(lam(
                    "s",
                    Expr::Constructor {
                        name: "Out".into(),
                        fields: vec![
                            ("id".into(), col("s", "id")),
                            ("city".into(), col("s", "city")),
                            ("price".into(), col("s", "price")),
                        ],
                    },
                ))
                .into_expr(),
        );
        let spec = lower(&canon, &catalog).unwrap();
        let table = HeapTable::new(&heap, list, schema());
        let min = HybridConfig {
            transfer: TransferPolicy::Min,
            ..HybridConfig::default()
        };
        let sequential = execute(&spec, &canon.params, &[&table], min).unwrap();
        for threads in [2usize, 8] {
            let parallel = execute(
                &spec,
                &canon.params,
                &[&table],
                min.parallel(ParallelConfig {
                    threads,
                    min_rows_per_thread: 32,
                    ..ParallelConfig::default()
                }),
            )
            .unwrap();
            assert_eq!(parallel.output, sequential.output, "{threads} threads");
        }
    }

    #[test]
    fn min_transfer_reconstructs_results_from_managed_objects() {
        let (heap, list) = setup(200);
        let mut catalog = HashMap::new();
        catalog.insert(SourceId(0), schema());
        // Sort query in the style of §7.2: filter, sort by price, project.
        let canon = canonicalize(
            Query::from_source(SourceId(0))
                .where_(lam(
                    "s",
                    Expr::binary(
                        BinaryOp::Le,
                        col("s", "day"),
                        lit(Date::from_ymd(1995, 6, 1)),
                    ),
                ))
                .order_by(lam("s", col("s", "price")))
                .select(lam(
                    "s",
                    Expr::Constructor {
                        name: "Out".into(),
                        fields: vec![
                            ("id".into(), col("s", "id")),
                            ("city".into(), col("s", "city")),
                            ("price".into(), col("s", "price")),
                        ],
                    },
                ))
                .into_expr(),
        );
        let spec = lower(&canon, &catalog).unwrap();
        let table = HeapTable::new(&heap, list, schema());
        let reference = mrq_engine_csharp::execute(&spec, &canon.params, &[&table]).unwrap();
        let min = execute(
            &spec,
            &canon.params,
            &[&table],
            HybridConfig {
                materialization: Materialization::Full,
                transfer: TransferPolicy::Min,
                layout: StagingLayout::RowWise,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        let max = execute(
            &spec,
            &canon.params,
            &[&table],
            HybridConfig {
                materialization: Materialization::Full,
                transfer: TransferPolicy::Max,
                layout: StagingLayout::RowWise,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        assert_eq!(min.output.rows.len(), reference.rows.len());
        assert_eq!(max.output, reference);
        // Sorting is by price with duplicate keys, so compare as multisets of
        // (price, id) pairs after verifying the price ordering.
        let prices: Vec<&Value> = min.output.rows.iter().map(|r| &r[2]).collect();
        assert!(prices.windows(2).all(|w| w[0] <= w[1]));
        let mut got: Vec<String> = min.output.rows.iter().map(|r| format!("{:?}", r)).collect();
        let mut want: Vec<String> = reference.rows.iter().map(|r| format!("{:?}", r)).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
        // Min ships fewer bytes than Max (it stages price + index instead of
        // id, city and price).
        assert!(min.staged_bytes < max.staged_bytes);
    }
}
