//! Unmanaged staging buffers.
//!
//! §6.1.1 of the paper describes two ways to interpret the staged buffer
//! pages: "We cast the data part of each buffer page to an array of primitive
//! C# type …; or an array of a custom structure type that is defined in the
//! generated code. The former represents columnar, the latter row-wise
//! storage." The hybrid engine therefore stages qualifying rows either into
//! a [`RowStore`] (row-wise, the paper's default) or into a [`ColumnBuffer`]
//! (one typed array per staged column); [`StagedTable`] is the common
//! interface the native kernels consume.

use mrq_codegen::exec::TableAccess;
use mrq_common::{DataType, Date, Decimal, Schema, Value};
use mrq_engine_native::RowStore;

use crate::StagingLayout;

/// One staged column as a typed array (the "array of primitive type" view).
#[derive(Debug, Clone)]
enum ColumnData {
    Bool(Vec<bool>),
    Int32(Vec<i32>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    /// Fixed-point decimals stored by their raw scaled representation.
    Decimal(Vec<i64>),
    /// Dates stored as epoch days.
    Date(Vec<i32>),
    /// Staged strings: offsets into a shared arena (a string is not a
    /// primitive, but TPC-H group keys are strings, so the columnar layout
    /// stages them as offset + length pairs the way a native column store
    /// would).
    Str {
        offsets: Vec<(u32, u32)>,
    },
}

impl ColumnData {
    fn for_type(dtype: DataType) -> ColumnData {
        match dtype {
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Int32 => ColumnData::Int32(Vec::new()),
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Decimal => ColumnData::Decimal(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
            DataType::Str => ColumnData::Str {
                offsets: Vec::new(),
            },
        }
    }

    fn payload_bytes(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int32(v) => v.len() * 4,
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Decimal(v) => v.len() * 8,
            ColumnData::Date(v) => v.len() * 4,
            ColumnData::Str { offsets } => offsets.len() * 8,
        }
    }
}

/// A columnar staging buffer: one typed array per staged column plus a shared
/// string arena.
#[derive(Debug, Clone)]
pub struct ColumnBuffer {
    schema: Schema,
    columns: Vec<ColumnData>,
    arena: String,
    len: usize,
}

impl ColumnBuffer {
    /// Creates an empty buffer for the staged schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::for_type(f.dtype))
            .collect();
        ColumnBuffer {
            schema,
            columns,
            arena: String::new(),
            len: 0,
        }
    }

    /// The staged schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends one row given in schema order.
    pub fn push_values(&mut self, values: &[Value]) {
        assert_eq!(values.len(), self.schema.len(), "row arity mismatch");
        for (column, value) in self.columns.iter_mut().zip(values) {
            match column {
                ColumnData::Bool(v) => v.push(value.as_bool()),
                ColumnData::Int32(v) => v.push(value.as_i64().unwrap_or(0) as i32),
                ColumnData::Int64(v) => v.push(value.as_i64().unwrap_or(0)),
                ColumnData::Float64(v) => v.push(value.as_f64().unwrap_or(0.0)),
                ColumnData::Decimal(v) => v.push(value.as_decimal().unwrap_or(Decimal::ZERO).raw()),
                ColumnData::Date(v) => v.push(value.as_date().map(|d| d.epoch_days()).unwrap_or(0)),
                ColumnData::Str { offsets } => {
                    let s = value.as_str().unwrap_or("");
                    let start = self.arena.len() as u32;
                    self.arena.push_str(s);
                    offsets.push((start, s.len() as u32));
                }
            }
        }
        self.len += 1;
    }

    /// Total staged payload bytes across all columns and the string arena.
    pub fn payload_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(ColumnData::payload_bytes)
            .sum::<usize>()
            + self.arena.len()
    }
}

impl TableAccess for ColumnBuffer {
    fn len(&self) -> usize {
        self.len
    }
    fn get_bool(&self, row: usize, col: usize) -> bool {
        match &self.columns[col] {
            ColumnData::Bool(v) => v[row],
            _ => panic!("column {col} is not boolean"),
        }
    }
    fn get_i32(&self, row: usize, col: usize) -> i32 {
        match &self.columns[col] {
            ColumnData::Int32(v) => v[row],
            ColumnData::Date(v) => v[row],
            _ => panic!("column {col} is not i32"),
        }
    }
    fn get_i64(&self, row: usize, col: usize) -> i64 {
        match &self.columns[col] {
            ColumnData::Int64(v) => v[row],
            ColumnData::Int32(v) => v[row] as i64,
            _ => panic!("column {col} is not i64"),
        }
    }
    fn get_f64(&self, row: usize, col: usize) -> f64 {
        match &self.columns[col] {
            ColumnData::Float64(v) => v[row],
            _ => panic!("column {col} is not f64"),
        }
    }
    fn get_decimal(&self, row: usize, col: usize) -> Decimal {
        match &self.columns[col] {
            ColumnData::Decimal(v) => Decimal::from_raw(v[row]),
            _ => panic!("column {col} is not decimal"),
        }
    }
    fn get_date(&self, row: usize, col: usize) -> Date {
        match &self.columns[col] {
            ColumnData::Date(v) => Date::from_epoch_days(v[row]),
            _ => panic!("column {col} is not a date"),
        }
    }
    fn get_str(&self, row: usize, col: usize) -> &str {
        match &self.columns[col] {
            ColumnData::Str { offsets } => {
                let (start, len) = offsets[row];
                &self.arena[start as usize..(start + len) as usize]
            }
            _ => panic!("column {col} is not a string"),
        }
    }
    fn get_value(&self, row: usize, col: usize) -> Value {
        match self.schema.fields()[col].dtype {
            DataType::Bool => Value::Bool(self.get_bool(row, col)),
            DataType::Int32 => Value::Int32(self.get_i32(row, col)),
            DataType::Int64 => Value::Int64(self.get_i64(row, col)),
            DataType::Float64 => Value::Float64(self.get_f64(row, col)),
            DataType::Decimal => Value::Decimal(self.get_decimal(row, col)),
            DataType::Date => Value::Date(self.get_date(row, col)),
            DataType::Str => Value::str(self.get_str(row, col)),
        }
    }
}

/// A staging buffer in either layout; the native kernels are instantiated
/// over this type so one execution can mix staged build and probe sides.
#[derive(Debug, Clone)]
pub enum StagedTable {
    /// Row-wise staging (array of generated structs).
    Rows(RowStore),
    /// Columnar staging (array per primitive column).
    Columns(ColumnBuffer),
}

impl StagedTable {
    /// Creates an empty staging buffer for the schema in the given layout.
    pub fn new(schema: Schema, layout: StagingLayout) -> Self {
        match layout {
            StagingLayout::RowWise => StagedTable::Rows(RowStore::new(schema)),
            StagingLayout::Columnar => StagedTable::Columns(ColumnBuffer::new(schema)),
        }
    }

    /// The staged schema.
    pub fn schema(&self) -> &Schema {
        match self {
            StagedTable::Rows(store) => store.schema(),
            StagedTable::Columns(buffer) => buffer.schema(),
        }
    }

    /// Appends one row in schema order.
    pub fn push_values(&mut self, values: &[Value]) {
        match self {
            StagedTable::Rows(store) => store.push_values(values),
            StagedTable::Columns(buffer) => buffer.push_values(values),
        }
    }

    /// Total staged payload bytes.
    pub fn payload_bytes(&self) -> usize {
        match self {
            StagedTable::Rows(store) => store.payload_bytes(),
            StagedTable::Columns(buffer) => buffer.payload_bytes(),
        }
    }
}

impl TableAccess for StagedTable {
    fn len(&self) -> usize {
        match self {
            StagedTable::Rows(s) => s.len(),
            StagedTable::Columns(c) => c.len(),
        }
    }
    fn get_bool(&self, row: usize, col: usize) -> bool {
        match self {
            StagedTable::Rows(s) => s.get_bool(row, col),
            StagedTable::Columns(c) => c.get_bool(row, col),
        }
    }
    fn get_i32(&self, row: usize, col: usize) -> i32 {
        match self {
            StagedTable::Rows(s) => s.get_i32(row, col),
            StagedTable::Columns(c) => c.get_i32(row, col),
        }
    }
    fn get_i64(&self, row: usize, col: usize) -> i64 {
        match self {
            StagedTable::Rows(s) => s.get_i64(row, col),
            StagedTable::Columns(c) => c.get_i64(row, col),
        }
    }
    fn get_f64(&self, row: usize, col: usize) -> f64 {
        match self {
            StagedTable::Rows(s) => s.get_f64(row, col),
            StagedTable::Columns(c) => c.get_f64(row, col),
        }
    }
    fn get_decimal(&self, row: usize, col: usize) -> Decimal {
        match self {
            StagedTable::Rows(s) => s.get_decimal(row, col),
            StagedTable::Columns(c) => c.get_decimal(row, col),
        }
    }
    fn get_date(&self, row: usize, col: usize) -> Date {
        match self {
            StagedTable::Rows(s) => s.get_date(row, col),
            StagedTable::Columns(c) => c.get_date(row, col),
        }
    }
    fn get_str(&self, row: usize, col: usize) -> &str {
        match self {
            StagedTable::Rows(s) => s.get_str(row, col),
            StagedTable::Columns(c) => c.get_str(row, col),
        }
    }
    fn get_value(&self, row: usize, col: usize) -> Value {
        match self {
            StagedTable::Rows(s) => s.get_value(row, col),
            StagedTable::Columns(c) => c.get_value(row, col),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_common::Field;

    fn schema() -> Schema {
        Schema::new(
            "Staged",
            vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Str),
                Field::new("price", DataType::Decimal),
                Field::new("day", DataType::Date),
                Field::new("flag", DataType::Bool),
                Field::new("size", DataType::Int32),
                Field::new("ratio", DataType::Float64),
            ],
        )
    }

    fn rows() -> Vec<Vec<Value>> {
        (0..10i64)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::str(format!("city-{}", i % 3)),
                    Value::Decimal(Decimal::from_int(i * 7)),
                    Value::Date(Date::from_ymd(1995, 1, 1).add_days(i as i32)),
                    Value::Bool(i % 2 == 0),
                    Value::Int32(-(i as i32)),
                    Value::Float64(i as f64 / 4.0),
                ]
            })
            .collect()
    }

    #[test]
    fn columnar_buffer_round_trips_every_type() {
        let mut buffer = ColumnBuffer::new(schema());
        for row in rows() {
            buffer.push_values(&row);
        }
        assert_eq!(buffer.len(), 10);
        for (r, row) in rows().iter().enumerate() {
            for (c, value) in row.iter().enumerate() {
                assert_eq!(&buffer.get_value(r, c), value, "row {r} col {c}");
            }
        }
        assert!(buffer.payload_bytes() > 0);
    }

    #[test]
    fn both_layouts_agree_through_the_staged_table_interface() {
        let mut row_wise = StagedTable::new(schema(), StagingLayout::RowWise);
        let mut columnar = StagedTable::new(schema(), StagingLayout::Columnar);
        for row in rows() {
            row_wise.push_values(&row);
            columnar.push_values(&row);
        }
        assert_eq!(row_wise.len(), columnar.len());
        for r in 0..row_wise.len() {
            for c in 0..schema().len() {
                assert_eq!(row_wise.get_value(r, c), columnar.get_value(r, c));
            }
        }
        assert_eq!(row_wise.schema().name(), columnar.schema().name());
    }

    #[test]
    fn columnar_strings_share_one_arena() {
        let mut buffer =
            ColumnBuffer::new(Schema::new("S", vec![Field::new("name", DataType::Str)]));
        buffer.push_values(&[Value::str("aa")]);
        buffer.push_values(&[Value::str("bbbb")]);
        assert_eq!(buffer.get_str(0, 0), "aa");
        assert_eq!(buffer.get_str(1, 0), "bbbb");
        // 6 bytes of characters + 8 bytes of (offset, length) per entry.
        assert_eq!(buffer.payload_bytes(), 6 + 16);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_is_rejected() {
        let mut buffer = ColumnBuffer::new(schema());
        buffer.push_values(&[Value::Int64(1)]);
    }
}
