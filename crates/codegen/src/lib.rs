//! Query compilation: from expression trees to executable fused queries and
//! to generated source text.
//!
//! The paper's query provider translates a LINQ expression tree into a *code
//! tree* and then into source code (C#, C, or both) that evaluates the whole
//! query in a handful of tight loops (§§4–6). This crate is that middle
//! layer:
//!
//! * [`spec`] — lowers a canonicalised expression tree into a [`QuerySpec`]:
//!   the flattened, fused description of the query (scan, filters per
//!   source, left-deep hash joins, group-by keys, aggregates, sort keys,
//!   take, output columns), with every column reference resolved to a
//!   `(table slot, column index)` pair. This corresponds to the paper's
//!   expression-tree → code-tree translation plus the §6.2 object/native
//!   layout mapping.
//! * [`exec`] — the *compiled query templates*: a generic, monomorphic
//!   executor over a [`TableAccess`] implementation. Each engine instantiates
//!   the same fused algorithm over its own data representation (managed
//!   objects, native row store, staged buffers), exactly as the paper's
//!   generated C# and C code share structure but differ in data access. The
//!   executor is incremental (build → consume → finish) so the hybrid
//!   engine's buffered staging and the native engine's deferred execution
//!   both map onto it.
//! * [`emit`] — emits the C#-like and C-like source text the paper's
//!   provider would have compiled, and models the compilation cost the paper
//!   reports (§7.4). We do not invoke a compiler at run time (no JIT backend
//!   is available offline); the emitted source documents what would be
//!   compiled while the executor templates provide the compiled behaviour.
//!
//! [`QuerySpec`]: spec::QuerySpec
//! [`TableAccess`]: exec::TableAccess

#![warn(missing_docs)]

pub mod emit;
pub mod exec;
pub mod spec;

pub use exec::{ExecState, QueryOutput, TableAccess};
pub use spec::{
    lower, AggSpec, ColumnRef, JoinSpec, OutputExpr, QuerySpec, ScalarExpr, SortKeySpec, StrOp,
};
