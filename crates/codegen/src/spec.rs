//! Lowering expression trees into fused query specifications.
//!
//! A [`QuerySpec`] is the analogue of the paper's code tree (§4.2) combined
//! with the §6.2 layout mappings: every member access in the expression tree
//! is resolved to a `(slot, column)` reference, operator chains are fused
//! into at most one pipeline per blocking operator, and joins become
//! left-deep hash joins with their build-side filters attached.

use mrq_common::{DataType, MrqError, Result, Schema, Value};
use mrq_expr::{
    AggFunc, BinaryOp, CanonicalQuery, Expr, QueryMethod, SortDirection, SourceId, UnaryOp,
};
use std::collections::HashMap;

/// Resolves the schema of a source id. The provider implements this over its
/// bound collections; tests use a simple map.
pub trait Catalog {
    /// Schema of the given source.
    fn schema(&self, source: SourceId) -> Option<Schema>;
}

impl Catalog for HashMap<SourceId, Schema> {
    fn schema(&self, source: SourceId) -> Option<Schema> {
        self.get(&source).cloned()
    }
}

/// A `(table slot, column index)` reference. Slot 0 is the probe-side root
/// table; slot `i + 1` is the build side of the `i`-th join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table slot.
    pub slot: usize,
    /// Column index within that table's schema.
    pub col: usize,
}

/// String predicate operators (LIKE-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrOp {
    /// `StartsWith`
    StartsWith,
    /// `EndsWith`
    EndsWith,
    /// `Contains`
    Contains,
}

/// A scalar expression over resolved column references. This is what the
/// generated per-row code evaluates.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A column of one of the joined tables.
    Column(ColumnRef),
    /// A literal constant.
    Const(Value),
    /// A query parameter (bound at execution from the canonical query's
    /// parameter vector).
    Param(usize),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<ScalarExpr>,
    },
    /// A string-method predicate.
    Str {
        /// Which string operation.
        op: StrOp,
        /// The string being tested.
        target: Box<ScalarExpr>,
        /// The pattern argument.
        arg: Box<ScalarExpr>,
    },
}

impl ScalarExpr {
    /// Collects all column references in the expression.
    pub fn columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            ScalarExpr::Column(c) => {
                if !out.contains(c) {
                    out.push(*c);
                }
            }
            ScalarExpr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            ScalarExpr::Unary { expr, .. } => expr.columns(out),
            ScalarExpr::Str { target, arg, .. } => {
                target.columns(out);
                arg.columns(out);
            }
            ScalarExpr::Const(_) | ScalarExpr::Param(_) => {}
        }
    }

    /// Collects every [`ScalarExpr::Param`] slot index referenced by the
    /// expression (duplicates included; callers take the max).
    pub fn params(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Param(i) => out.push(*i),
            ScalarExpr::Binary { left, right, .. } => {
                left.params(out);
                right.params(out);
            }
            ScalarExpr::Unary { expr, .. } => expr.params(out),
            ScalarExpr::Str { target, arg, .. } => {
                target.params(out);
                arg.params(out);
            }
            ScalarExpr::Column(_) | ScalarExpr::Const(_) => {}
        }
    }

    /// True if every column reference uses the given slot.
    pub fn only_slot(&self, slot: usize) -> bool {
        let mut cols = Vec::new();
        self.columns(&mut cols);
        cols.iter().all(|c| c.slot == slot)
    }

    /// Rewrites column references through `f` (used by the hybrid engine to
    /// re-point references at staged buffers).
    pub fn remap_columns(&self, f: &impl Fn(ColumnRef) -> ColumnRef) -> ScalarExpr {
        match self {
            ScalarExpr::Column(c) => ScalarExpr::Column(f(*c)),
            ScalarExpr::Const(v) => ScalarExpr::Const(v.clone()),
            ScalarExpr::Param(i) => ScalarExpr::Param(*i),
            ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(f)),
                right: Box::new(right.remap_columns(f)),
            },
            ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
                op: *op,
                expr: Box::new(expr.remap_columns(f)),
            },
            ScalarExpr::Str { op, target, arg } => ScalarExpr::Str {
                op: *op,
                target: Box::new(target.remap_columns(f)),
                arg: Box::new(arg.remap_columns(f)),
            },
        }
    }
}

/// One aggregate computed per group.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Its input expression (`None` for `Count()`).
    pub input: Option<ScalarExpr>,
    /// The output type of the aggregate.
    pub dtype: DataType,
    /// The type of the input expression (`None` for `Count()`). Averages
    /// over decimal inputs accumulate exactly in fixed point, which keeps
    /// parallel merges bit-identical to sequential execution.
    pub input_dtype: Option<DataType>,
}

/// One hash join in the left-deep join chain.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// Build-side source.
    pub source: SourceId,
    /// Slot assigned to build-side rows.
    pub slot: usize,
    /// Filters applied to build-side rows before the hash table is built
    /// (selection push-down, §2.3).
    pub build_filters: Vec<ScalarExpr>,
    /// Key expressions over the build side.
    pub build_keys: Vec<ScalarExpr>,
    /// Key expressions over the already-joined slots (the probe side).
    pub probe_keys: Vec<ScalarExpr>,
}

/// How a final output column is produced.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputExpr {
    /// Evaluated per surviving row (non-grouped queries).
    Scalar(ScalarExpr),
    /// The `i`-th group key (grouped queries).
    Key(usize),
    /// The `i`-th aggregate (grouped queries).
    Agg(usize),
}

/// One sort key over the output columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKeySpec {
    /// Index into the output columns (including hidden ones).
    pub output_col: usize,
    /// Sort descending.
    pub descending: bool,
}

/// The fused description of a query: what the generated code would compute.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The probe-side root source (slot 0).
    pub root: SourceId,
    /// Filters over root columns, applied while scanning.
    pub root_filters: Vec<ScalarExpr>,
    /// Left-deep hash joins.
    pub joins: Vec<JoinSpec>,
    /// Filters that need columns from more than one slot; applied after all
    /// probes succeed.
    pub post_filters: Vec<ScalarExpr>,
    /// Group-by key expressions (empty for non-grouped queries).
    pub group_keys: Vec<ScalarExpr>,
    /// Aggregates (empty for non-grouped queries).
    pub aggregates: Vec<AggSpec>,
    /// Output columns: `(name, expression)`. Trailing `hidden_outputs`
    /// columns exist only to carry sort keys and are dropped from results.
    pub output: Vec<(String, OutputExpr)>,
    /// Schema of the visible output columns.
    pub output_schema: Schema,
    /// Sort keys over output columns.
    pub sort: Vec<SortKeySpec>,
    /// Keep only the first `n` rows of the sorted output, as resolved at
    /// lowering time. When [`QuerySpec::take_param`] is set, engines must
    /// re-resolve the count from the execution-time parameter vector via
    /// [`QuerySpec::effective_take`] — this field then only records the
    /// lowering instance's value.
    pub take: Option<usize>,
    /// When the `Take` count came from a parameter slot (the canonicaliser
    /// lifts `Take(5)` literals into slots), the slot index it must be
    /// re-read from on every execution. A cached or prepared plan executed
    /// with fresh bindings would otherwise silently reuse the count that
    /// happened to be bound when the plan was first compiled.
    pub take_param: Option<usize>,
    /// Number of parameter slots the plan reads (max referenced slot + 1).
    /// Engines reject shorter parameter vectors up front instead of
    /// panicking mid-scan on a pool worker — prepared queries hand
    /// caller-supplied bindings straight to the engines.
    pub param_slots: usize,
    /// Number of trailing hidden output columns.
    pub hidden_outputs: usize,
}

impl QuerySpec {
    /// True if the query aggregates.
    pub fn is_grouped(&self) -> bool {
        !self.aggregates.is_empty() || !self.group_keys.is_empty()
    }

    /// Every parameter slot referenced anywhere in the plan: filters, join
    /// keys, group keys, aggregate inputs, outputs — plus the `Take` slot.
    pub fn referenced_params(&self) -> Vec<usize> {
        let mut slots = Vec::new();
        {
            let mut push = |e: &ScalarExpr| e.params(&mut slots);
            for e in &self.root_filters {
                push(e);
            }
            for join in &self.joins {
                for e in &join.build_filters {
                    push(e);
                }
                for e in &join.build_keys {
                    push(e);
                }
                for e in &join.probe_keys {
                    push(e);
                }
            }
            for e in &self.post_filters {
                push(e);
            }
            for e in &self.group_keys {
                push(e);
            }
            for agg in &self.aggregates {
                if let Some(e) = &agg.input {
                    push(e);
                }
            }
            for (_, o) in &self.output {
                if let OutputExpr::Scalar(e) = o {
                    push(e);
                }
            }
        }
        if let Some(i) = self.take_param {
            slots.push(i);
        }
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Rejects a parameter vector too short for the plan. Every engine
    /// calls this before touching a row, so a prepared query bound with too
    /// few values fails with a clean [`MrqError::Codegen`] instead of
    /// panicking a pool worker mid-scan.
    pub fn check_params(&self, params: &[Value]) -> Result<()> {
        if params.len() < self.param_slots {
            return Err(MrqError::Codegen(format!(
                "plan reads {} parameter slot(s) but only {} value(s) were bound",
                self.param_slots,
                params.len()
            )));
        }
        Ok(())
    }

    /// The `Take` limit for *this* execution: re-resolved from the bound
    /// parameter vector when the count was lifted into a parameter slot,
    /// the baked lowering-time value otherwise. Cached plans re-executed
    /// with different bindings get the binding's count, not the compile
    /// instance's.
    pub fn effective_take(&self, params: &[Value]) -> Result<Option<usize>> {
        let Some(slot) = self.take_param else {
            return Ok(self.take);
        };
        let n = params
            .get(slot)
            .and_then(Value::as_i64)
            .ok_or_else(|| MrqError::Codegen("Take requires an integer count".into()))?;
        if n < 0 {
            return Err(MrqError::Codegen("Take count must be non-negative".into()));
        }
        Ok(Some(n as usize))
    }

    /// Every column of `slot` referenced anywhere in the spec — the implicit
    /// projection of §6.1.1 that drives staging.
    pub fn referenced_columns(&self, slot: usize) -> Vec<usize> {
        let mut cols = Vec::new();
        let mut push_expr = |e: &ScalarExpr| {
            let mut refs = Vec::new();
            e.columns(&mut refs);
            for r in refs {
                if r.slot == slot && !cols.contains(&r.col) {
                    cols.push(r.col);
                }
            }
        };
        for e in &self.root_filters {
            push_expr(e);
        }
        for j in &self.joins {
            for e in j
                .build_filters
                .iter()
                .chain(j.build_keys.iter())
                .chain(j.probe_keys.iter())
            {
                push_expr(e);
            }
        }
        for e in &self.post_filters {
            push_expr(e);
        }
        for e in &self.group_keys {
            push_expr(e);
        }
        for a in &self.aggregates {
            if let Some(e) = &a.input {
                push_expr(e);
            }
        }
        for (_, o) in &self.output {
            if let OutputExpr::Scalar(e) = o {
                push_expr(e);
            }
        }
        cols.sort_unstable();
        cols
    }

    /// The number of visible (non-hidden) output columns.
    pub fn visible_outputs(&self) -> usize {
        self.output.len() - self.hidden_outputs
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Per-lambda-parameter binding: maps a field name to the scalar expression
/// that produces it (a plain column for scans, possibly a computed expression
/// after a join result selector).
type FieldMap = Vec<(String, ScalarExpr)>;

fn lookup(map: &FieldMap, field: &str) -> Option<ScalarExpr> {
    map.iter()
        .find(|(name, _)| name == field)
        .map(|(_, e)| e.clone())
}

/// What the "current element" of the pipeline is while walking the operator
/// chain outwards.
enum Binding {
    /// A (possibly joined) row described by a field map.
    Row(FieldMap),
    /// The groups produced by a `GroupBy` (keys described by name).
    Grouped { keys: FieldMap },
    /// Final output rows (after the projection); names map to output column
    /// indexes.
    Output(Vec<String>),
}

struct Lowering<'a> {
    catalog: &'a dyn Catalog,
    params: &'a [Value],
    spec: QuerySpec,
    binding: Binding,
    /// Sort keys requested before the final projection (e.g. `OrderBy`
    /// followed by `Select`); resolved against output columns at the end.
    pending_sort: Vec<(ScalarExpr, bool)>,
    output_types: Vec<DataType>,
    /// The row field map that was current when `GroupBy` ran; aggregate
    /// selectors in the following `Select` are lowered against it.
    grouped_row_map: Option<FieldMap>,
}

/// Lowers a canonical query into a [`QuerySpec`].
///
/// Returns [`MrqError::Unsupported`] for query shapes outside the compiled
/// subset (nested reference navigation, arbitrary method calls, grouping of
/// grouped results, …); the provider falls back to the interpreted engine in
/// that case, mirroring how the paper restricts which queries the native
/// path accepts (§5).
pub fn lower(query: &CanonicalQuery, catalog: &dyn Catalog) -> Result<QuerySpec> {
    // Flatten the call chain from the source outwards.
    let mut chain = Vec::new();
    let mut cursor = &query.expr;
    loop {
        match cursor {
            Expr::Call { target, .. } => {
                chain.push(cursor);
                cursor = target;
            }
            Expr::Source(_) => break,
            other => {
                return Err(MrqError::Unsupported(format!(
                    "query root must be a source, found {other}"
                )))
            }
        }
    }
    chain.reverse();
    let root = match cursor {
        Expr::Source(id) => *id,
        _ => unreachable!(),
    };
    let root_schema = catalog
        .schema(root)
        .ok_or_else(|| MrqError::Codegen(format!("no schema bound for {root:?}")))?;
    let root_map: FieldMap = root_schema
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| {
            (
                f.name.clone(),
                ScalarExpr::Column(ColumnRef { slot: 0, col: i }),
            )
        })
        .collect();

    let mut lowering = Lowering {
        catalog,
        params: &query.params,
        spec: QuerySpec {
            root,
            root_filters: Vec::new(),
            joins: Vec::new(),
            post_filters: Vec::new(),
            group_keys: Vec::new(),
            aggregates: Vec::new(),
            output: Vec::new(),
            output_schema: Schema::new("Result", vec![]),
            sort: Vec::new(),
            take: None,
            take_param: None,
            param_slots: 0,
            hidden_outputs: 0,
        },
        binding: Binding::Row(root_map),
        pending_sort: Vec::new(),
        output_types: Vec::new(),
        grouped_row_map: None,
    };

    for node in chain {
        lowering.apply(node)?;
    }
    lowering.finish()
}

impl<'a> Lowering<'a> {
    fn slot_count(&self) -> usize {
        self.spec.joins.len() + 1
    }

    fn apply(&mut self, node: &Expr) -> Result<()> {
        let (method, args, direction) = match node {
            Expr::Call {
                method,
                args,
                direction,
                ..
            } => (*method, args, *direction),
            _ => unreachable!("chain contains only call nodes"),
        };
        match method {
            QueryMethod::Where => self.apply_where(args),
            QueryMethod::Join => self.apply_join(args),
            QueryMethod::GroupBy => self.apply_group_by(args),
            QueryMethod::Select => self.apply_select(args),
            QueryMethod::OrderBy | QueryMethod::ThenBy => self.apply_order_by(args, direction),
            QueryMethod::Take => self.apply_take(args),
            QueryMethod::Sum
            | QueryMethod::Count
            | QueryMethod::Average
            | QueryMethod::Min
            | QueryMethod::Max => self.apply_scalar_aggregate(method, args),
            QueryMethod::First => {
                self.spec.take = Some(1);
                Ok(())
            }
            other => Err(MrqError::Unsupported(format!(
                "query operator {other:?} is not supported by the compiled path"
            ))),
        }
    }

    fn apply_where(&mut self, args: &[Expr]) -> Result<()> {
        let (param, body) = expect_lambda(args.first())?;
        let map = match &self.binding {
            Binding::Row(map) => map.clone(),
            _ => {
                return Err(MrqError::Unsupported(
                    "Where after GroupBy/Select is not supported by the compiled path".into(),
                ))
            }
        };
        let predicate = self.lower_scalar(body, &[(param, &map)])?;
        let mut conjuncts = Vec::new();
        split_conjuncts(predicate, &mut conjuncts);
        for c in conjuncts {
            if self.spec.joins.is_empty() {
                self.spec.root_filters.push(c);
            } else {
                self.spec.post_filters.push(c);
            }
        }
        Ok(())
    }

    fn apply_join(&mut self, args: &[Expr]) -> Result<()> {
        if !matches!(self.binding, Binding::Row(_)) {
            return Err(MrqError::Unsupported(
                "Join after GroupBy/Select is not supported by the compiled path".into(),
            ));
        }
        if args.len() != 4 {
            return Err(MrqError::Codegen("Join requires four arguments".into()));
        }
        // Build side: a source possibly wrapped in Where calls.
        let (build_source, build_filter_lambdas) = unwrap_filtered_source(&args[0])?;
        let build_schema = self
            .catalog
            .schema(build_source)
            .ok_or_else(|| MrqError::Codegen(format!("no schema bound for {build_source:?}")))?;
        let slot = self.slot_count();
        let build_map: FieldMap = build_schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| {
                (
                    f.name.clone(),
                    ScalarExpr::Column(ColumnRef { slot, col: i }),
                )
            })
            .collect();
        let mut build_filters = Vec::new();
        for (param, body) in &build_filter_lambdas {
            let filter = self.lower_scalar(body, &[(param, &build_map)])?;
            split_conjuncts(filter, &mut build_filters);
        }

        let outer_map = match &self.binding {
            Binding::Row(map) => map.clone(),
            _ => unreachable!(),
        };
        let (outer_param, outer_body) = expect_lambda(Some(&args[1]))?;
        let probe_keys = self.lower_key_list(outer_body, &[(outer_param, &outer_map)])?;
        let (inner_param, inner_body) = expect_lambda(Some(&args[2]))?;
        let build_keys = self.lower_key_list(inner_body, &[(inner_param, &build_map)])?;
        if probe_keys.len() != build_keys.len() || probe_keys.is_empty() {
            return Err(MrqError::Codegen(
                "join key selectors must produce the same, non-zero number of keys".into(),
            ));
        }

        // Result selector: outer => inner => body.
        let (res_outer, res_inner_lambda) = expect_lambda(Some(&args[3]))?;
        let (res_inner, res_body) = expect_lambda(Some(res_inner_lambda))?;
        let env: [(&str, &FieldMap); 2] = [(res_outer, &outer_map), (res_inner, &build_map)];
        let new_map: FieldMap = match res_body {
            Expr::Constructor { fields, .. } => {
                let mut map = Vec::with_capacity(fields.len());
                for (name, e) in fields {
                    map.push((name.clone(), self.lower_scalar(e, &env)?));
                }
                map
            }
            Expr::Parameter(p) if p == res_outer => outer_map.clone(),
            Expr::Parameter(p) if p == res_inner => build_map.clone(),
            other => {
                return Err(MrqError::Unsupported(format!(
                "join result selector must construct a record or return a parameter, found {other}"
            )))
            }
        };

        self.spec.joins.push(JoinSpec {
            source: build_source,
            slot,
            build_filters,
            build_keys,
            probe_keys,
        });
        self.binding = Binding::Row(new_map);
        Ok(())
    }

    fn apply_group_by(&mut self, args: &[Expr]) -> Result<()> {
        let map = match &self.binding {
            Binding::Row(map) => map.clone(),
            _ => {
                return Err(MrqError::Unsupported(
                    "GroupBy over grouped or projected results is not supported".into(),
                ))
            }
        };
        let (param, body) = expect_lambda(args.first())?;
        let env: [(&str, &FieldMap); 1] = [(param, &map)];
        let keys: FieldMap = match body {
            Expr::Constructor { fields, .. } => {
                let mut out = Vec::with_capacity(fields.len());
                for (name, e) in fields {
                    out.push((name.clone(), self.lower_scalar(e, &env)?));
                }
                out
            }
            Expr::Member { field, .. } => {
                vec![(field.clone(), self.lower_scalar(body, &env)?)]
            }
            other => {
                return Err(MrqError::Unsupported(format!(
                "GroupBy key selector must be a member access or record constructor, found {other}"
            )))
            }
        };
        self.spec.group_keys = keys.iter().map(|(_, e)| e.clone()).collect();
        // Remember the row field map so aggregate selectors inside the
        // following Select can be lowered.
        self.binding = Binding::Grouped { keys };
        self.grouped_row_map = Some(map);
        Ok(())
    }

    fn apply_select(&mut self, args: &[Expr]) -> Result<()> {
        let (param, body) = expect_lambda(args.first())?;
        match &self.binding {
            Binding::Row(map) => {
                let map = map.clone();
                let env: [(&str, &FieldMap); 1] = [(param, &map)];
                let outputs: Vec<(String, ScalarExpr)> = match body {
                    Expr::Constructor { fields, .. } => {
                        let mut out = Vec::with_capacity(fields.len());
                        for (name, e) in fields {
                            out.push((name.clone(), self.lower_scalar(e, &env)?));
                        }
                        out
                    }
                    other => vec![("value".to_string(), self.lower_scalar(other, &env)?)],
                };
                let names = outputs.iter().map(|(n, _)| n.clone()).collect();
                for (name, e) in outputs {
                    let dtype = self.scalar_type(&e)?;
                    self.output_types.push(dtype);
                    self.spec.output.push((name, OutputExpr::Scalar(e)));
                }
                self.binding = Binding::Output(names);
                Ok(())
            }
            Binding::Grouped { keys } => {
                let keys = keys.clone();
                let row_map = self
                    .grouped_row_map
                    .clone()
                    .ok_or_else(|| MrqError::Codegen("GroupBy state missing".into()))?;
                let fields = match body {
                    Expr::Constructor { fields, .. } => fields.clone(),
                    other => {
                        return Err(MrqError::Unsupported(format!(
                            "the Select after a GroupBy must construct a record, found {other}"
                        )))
                    }
                };
                let mut names = Vec::new();
                for (name, e) in &fields {
                    let output = self.lower_group_output(e, param, &keys, &row_map)?;
                    let dtype = match &output {
                        OutputExpr::Key(i) => {
                            self.scalar_type(&self.spec.group_keys[*i].clone())?
                        }
                        OutputExpr::Agg(i) => self.spec.aggregates[*i].dtype,
                        OutputExpr::Scalar(s) => self.scalar_type(s)?,
                    };
                    self.output_types.push(dtype);
                    self.spec.output.push((name.clone(), output));
                    names.push(name.clone());
                }
                self.binding = Binding::Output(names);
                Ok(())
            }
            Binding::Output(_) => Err(MrqError::Unsupported(
                "Select over an already-projected result is not supported".into(),
            )),
        }
    }

    fn lower_group_output(
        &mut self,
        expr: &Expr,
        group_param: &str,
        keys: &FieldMap,
        row_map: &FieldMap,
    ) -> Result<OutputExpr> {
        // g.Key.<name>
        if let Expr::Member { target, field } = expr {
            if let Expr::Member {
                target: inner,
                field: key_field,
            } = target.as_ref()
            {
                if key_field == "Key"
                    && matches!(inner.as_ref(), Expr::Parameter(p) if p == group_param)
                {
                    let idx = keys
                        .iter()
                        .position(|(name, _)| name == field)
                        .ok_or_else(|| {
                            MrqError::Codegen(format!("unknown group key member `{field}`"))
                        })?;
                    return Ok(OutputExpr::Key(idx));
                }
            }
            // g.Key with a single key
            if field == "Key" && matches!(target.as_ref(), Expr::Parameter(p) if p == group_param) {
                if keys.len() == 1 {
                    return Ok(OutputExpr::Key(0));
                }
                return Err(MrqError::Unsupported(
                    "projecting a composite group key as a whole is not supported".into(),
                ));
            }
        }
        // g.Sum(x => ...), g.Count(), ...
        if let Expr::Call {
            method,
            target,
            args,
            ..
        } = expr
        {
            if matches!(target.as_ref(), Expr::Parameter(p) if p == group_param) {
                if let Some(func) = AggFunc::from_method(*method) {
                    let input = match args.first() {
                        Some(selector) => {
                            let (param, body) = expect_lambda(Some(selector))?;
                            let env: [(&str, &FieldMap); 1] = [(param, row_map)];
                            Some(self.lower_scalar(body, &env)?)
                        }
                        None => None,
                    };
                    let dtype = self.aggregate_type(func, input.as_ref())?;
                    let input_dtype = match &input {
                        Some(e) => Some(self.scalar_type(e)?),
                        None => None,
                    };
                    let candidate = AggSpec {
                        func,
                        input,
                        dtype,
                        input_dtype,
                    };
                    // Duplicate-aggregate elimination (§2.3): identical
                    // aggregate computations (same function over the same
                    // selector) are computed once and shared by every output
                    // column that references them.
                    if let Some(existing) =
                        self.spec.aggregates.iter().position(|a| *a == candidate)
                    {
                        return Ok(OutputExpr::Agg(existing));
                    }
                    let idx = self.spec.aggregates.len();
                    self.spec.aggregates.push(candidate);
                    return Ok(OutputExpr::Agg(idx));
                }
            }
        }
        Err(MrqError::Unsupported(format!(
            "unsupported expression in group projection: {expr}"
        )))
    }

    fn apply_order_by(&mut self, args: &[Expr], direction: SortDirection) -> Result<()> {
        let descending = direction == SortDirection::Descending;
        let (param, body) = expect_lambda(args.first())?;
        match &self.binding {
            Binding::Output(names) => {
                // The key selector must reference an output column by name.
                let field = match body {
                    Expr::Member { target, field } if matches!(target.as_ref(), Expr::Parameter(p) if p == param) => {
                        field.clone()
                    }
                    other => {
                        return Err(MrqError::Unsupported(format!(
                            "sort keys over projected results must be plain members, found {other}"
                        )))
                    }
                };
                let idx = names.iter().position(|n| *n == field).ok_or_else(|| {
                    MrqError::Codegen(format!("sort key `{field}` is not an output column"))
                })?;
                self.spec.sort.push(SortKeySpec {
                    output_col: idx,
                    descending,
                });
                Ok(())
            }
            Binding::Row(map) => {
                let map = map.clone();
                let env: [(&str, &FieldMap); 1] = [(param, &map)];
                let key = self.lower_scalar(body, &env)?;
                self.pending_sort.push((key, descending));
                Ok(())
            }
            Binding::Grouped { .. } => Err(MrqError::Unsupported(
                "OrderBy directly over groups is not supported".into(),
            )),
        }
    }

    fn apply_take(&mut self, args: &[Expr]) -> Result<()> {
        let n = match args.first() {
            Some(Expr::Constant(v)) => v.as_i64(),
            Some(Expr::QueryParam(i)) => {
                // The count is a parameter slot: record the slot so every
                // execution re-resolves it from its own bindings (a cached
                // plan must not freeze the first instance's count).
                self.spec.take_param = Some(*i);
                self.params.get(*i).and_then(Value::as_i64)
            }
            _ => None,
        }
        .ok_or_else(|| MrqError::Codegen("Take requires an integer count".into()))?;
        if n < 0 {
            return Err(MrqError::Codegen("Take count must be non-negative".into()));
        }
        self.spec.take = Some(n as usize);
        Ok(())
    }

    fn apply_scalar_aggregate(&mut self, method: QueryMethod, args: &[Expr]) -> Result<()> {
        let func = AggFunc::from_method(method).expect("checked by caller");
        let map = match &self.binding {
            Binding::Row(map) => map.clone(),
            _ => {
                return Err(MrqError::Unsupported(
                    "whole-query aggregates over grouped results are not supported".into(),
                ))
            }
        };
        let input = match args.first() {
            Some(selector) => {
                let (param, body) = expect_lambda(Some(selector))?;
                let env: [(&str, &FieldMap); 1] = [(param, &map)];
                Some(self.lower_scalar(body, &env)?)
            }
            None => None,
        };
        let dtype = self.aggregate_type(func, input.as_ref())?;
        let input_dtype = match &input {
            Some(e) => Some(self.scalar_type(e)?),
            None => None,
        };
        self.spec.aggregates.push(AggSpec {
            func,
            input,
            dtype,
            input_dtype,
        });
        self.output_types.push(dtype);
        self.spec
            .output
            .push((format!("{func:?}").to_lowercase(), OutputExpr::Agg(0)));
        self.binding = Binding::Output(vec![format!("{func:?}").to_lowercase()]);
        Ok(())
    }

    fn finish(mut self) -> Result<QuerySpec> {
        // Default projection: if no Select ran, output every root column (or
        // every group key + aggregate if grouped).
        if self.spec.output.is_empty() {
            match &self.binding {
                Binding::Row(map) => {
                    for (name, e) in map.clone() {
                        let dtype = self.scalar_type(&e)?;
                        self.output_types.push(dtype);
                        self.spec.output.push((name, OutputExpr::Scalar(e)));
                    }
                }
                Binding::Grouped { .. } => {
                    return Err(MrqError::Unsupported(
                        "a GroupBy must be followed by a Select in the compiled path".into(),
                    ))
                }
                Binding::Output(_) => {}
            }
        }
        // Resolve pending (pre-projection) sort keys against the output.
        let pending = std::mem::take(&mut self.pending_sort);
        for (key, descending) in pending {
            let existing = self.spec.output.iter().position(|(_, o)| match o {
                OutputExpr::Scalar(e) => *e == key,
                _ => false,
            });
            let idx = match existing {
                Some(i) => i,
                None => {
                    let dtype = self.scalar_type(&key)?;
                    self.output_types.push(dtype);
                    self.spec.output.push((
                        format!("__sort_{}", self.spec.output.len()),
                        OutputExpr::Scalar(key),
                    ));
                    self.spec.hidden_outputs += 1;
                    self.spec.output.len() - 1
                }
            };
            self.spec.sort.push(SortKeySpec {
                output_col: idx,
                descending,
            });
        }
        let visible = self.spec.output.len() - self.spec.hidden_outputs;
        let fields = self
            .spec
            .output
            .iter()
            .take(visible)
            .zip(self.output_types.iter())
            .map(|((name, _), dtype)| mrq_common::Field::new(name.clone(), *dtype))
            .collect();
        self.spec.output_schema = Schema::new("Result", fields);
        self.spec.param_slots = self
            .spec
            .referenced_params()
            .last()
            .map_or(0, |max| max + 1);
        Ok(self.spec)
    }

    // -- scalar lowering ----------------------------------------------------

    fn lower_scalar(&self, expr: &Expr, env: &[(&str, &FieldMap)]) -> Result<ScalarExpr> {
        match expr {
            Expr::Constant(v) => Ok(ScalarExpr::Const(v.clone())),
            Expr::QueryParam(i) => Ok(ScalarExpr::Param(*i)),
            Expr::Member { target, field } => match target.as_ref() {
                Expr::Parameter(p) => {
                    let map = env
                        .iter()
                        .find(|(name, _)| name == p)
                        .map(|(_, m)| *m)
                        .ok_or_else(|| {
                            MrqError::Codegen(format!("unbound lambda parameter `{p}`"))
                        })?;
                    lookup(map, field).ok_or_else(|| MrqError::UnknownField(field.clone()))
                }
                other => Err(MrqError::Unsupported(format!(
                    "nested member navigation `{other}.{field}` is not supported by the compiled path"
                ))),
            },
            Expr::Binary { op, left, right } => Ok(ScalarExpr::Binary {
                op: *op,
                left: Box::new(self.lower_scalar(left, env)?),
                right: Box::new(self.lower_scalar(right, env)?),
            }),
            Expr::Unary { op, expr } => Ok(ScalarExpr::Unary {
                op: *op,
                expr: Box::new(self.lower_scalar(expr, env)?),
            }),
            Expr::Call {
                method,
                target,
                args,
                ..
            } => {
                let op = match method {
                    QueryMethod::StartsWith => StrOp::StartsWith,
                    QueryMethod::EndsWith => StrOp::EndsWith,
                    QueryMethod::Contains => StrOp::Contains,
                    other => {
                        return Err(MrqError::Unsupported(format!(
                            "method {other:?} cannot appear inside a scalar expression"
                        )))
                    }
                };
                let arg = args.first().ok_or_else(|| {
                    MrqError::Codegen("string methods need a pattern argument".into())
                })?;
                Ok(ScalarExpr::Str {
                    op,
                    target: Box::new(self.lower_scalar(target, env)?),
                    arg: Box::new(self.lower_scalar(arg, env)?),
                })
            }
            Expr::Parameter(p) => Err(MrqError::Unsupported(format!(
                "whole-object references (`{p}`) cannot appear in scalar positions of the compiled path"
            ))),
            other => Err(MrqError::Unsupported(format!(
                "unsupported scalar expression {other}"
            ))),
        }
    }

    fn lower_key_list(&self, body: &Expr, env: &[(&str, &FieldMap)]) -> Result<Vec<ScalarExpr>> {
        match body {
            Expr::Constructor { fields, .. } => fields
                .iter()
                .map(|(_, e)| self.lower_scalar(e, env))
                .collect(),
            other => Ok(vec![self.lower_scalar(other, env)?]),
        }
    }

    // -- typing ---------------------------------------------------------------

    fn scalar_type(&self, expr: &ScalarExpr) -> Result<DataType> {
        match expr {
            ScalarExpr::Column(c) => {
                // Column types are resolved against the source schemas.
                let source = if c.slot == 0 {
                    self.spec.root
                } else {
                    self.spec.joins[c.slot - 1].source
                };
                let schema = self
                    .catalog
                    .schema(source)
                    .ok_or_else(|| MrqError::Codegen(format!("no schema for {source:?}")))?;
                Ok(schema.field(c.col).dtype)
            }
            ScalarExpr::Const(v) => v
                .dtype()
                .ok_or_else(|| MrqError::Codegen("untyped null constant".into())),
            ScalarExpr::Param(i) => self
                .params
                .get(*i)
                .and_then(Value::dtype)
                .ok_or_else(|| MrqError::Codegen(format!("parameter {i} out of range"))),
            ScalarExpr::Binary { op, left, right } => {
                if op.is_comparison() || op.is_logical() {
                    return Ok(DataType::Bool);
                }
                let l = self.scalar_type(left)?;
                let r = self.scalar_type(right)?;
                Ok(promote(l, r))
            }
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::Not => Ok(DataType::Bool),
                UnaryOp::Neg => self.scalar_type(expr),
            },
            ScalarExpr::Str { .. } => Ok(DataType::Bool),
        }
    }

    fn aggregate_type(&self, func: AggFunc, input: Option<&ScalarExpr>) -> Result<DataType> {
        match func {
            AggFunc::Count => Ok(DataType::Int64),
            AggFunc::Average => Ok(DataType::Float64),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                let input = input
                    .ok_or_else(|| MrqError::Codegen(format!("{func:?} requires a selector")))?;
                self.scalar_type(input)
            }
        }
    }
}

/// Numeric type promotion for arithmetic.
fn promote(l: DataType, r: DataType) -> DataType {
    use DataType::*;
    match (l, r) {
        (Date, Int32) | (Date, Int64) => Date,
        (Float64, _) | (_, Float64) => Float64,
        (Decimal, _) | (_, Decimal) => Decimal,
        (Int64, _) | (_, Int64) => Int64,
        _ => l,
    }
}

fn expect_lambda(expr: Option<&Expr>) -> Result<(&str, &Expr)> {
    match expr {
        Some(Expr::Lambda { param, body }) => Ok((param.as_str(), body.as_ref())),
        other => Err(MrqError::Codegen(format!(
            "expected a lambda argument, found {other:?}"
        ))),
    }
}

/// Splits a predicate into its top-level conjuncts.
fn split_conjuncts(expr: ScalarExpr, out: &mut Vec<ScalarExpr>) {
    match expr {
        ScalarExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

/// Peels `Where` calls off a join's build side, returning the underlying
/// source and the filter lambdas (as `(param, body)` pairs).
fn unwrap_filtered_source(expr: &Expr) -> Result<(SourceId, Vec<(String, Expr)>)> {
    let mut filters = Vec::new();
    let mut cursor = expr;
    loop {
        match cursor {
            Expr::Source(id) => {
                filters.reverse();
                return Ok((*id, filters));
            }
            Expr::Call {
                method: QueryMethod::Where,
                target,
                args,
                ..
            } => {
                match args.first() {
                    Some(Expr::Lambda { param, body }) => {
                        filters.push((param.clone(), body.as_ref().clone()))
                    }
                    other => {
                        return Err(MrqError::Codegen(format!(
                            "expected a lambda argument, found {other:?}"
                        )))
                    }
                }
                cursor = target;
            }
            other => {
                return Err(MrqError::Unsupported(format!(
                    "join build sides must be plain or filtered sources, found {other}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_common::Field;
    use mrq_expr::{canonicalize, col, lam, lit, Query};

    fn catalog() -> HashMap<SourceId, Schema> {
        let mut map = HashMap::new();
        map.insert(
            SourceId(0),
            Schema::new(
                "Lineitem",
                vec![
                    Field::new("l_orderkey", DataType::Int64),
                    Field::new("l_quantity", DataType::Decimal),
                    Field::new("l_extendedprice", DataType::Decimal),
                    Field::new("l_discount", DataType::Decimal),
                    Field::new("l_shipdate", DataType::Date),
                    Field::new("l_returnflag", DataType::Str),
                ],
            ),
        );
        map.insert(
            SourceId(1),
            Schema::new(
                "Orders",
                vec![
                    Field::new("o_orderkey", DataType::Int64),
                    Field::new("o_custkey", DataType::Int64),
                    Field::new("o_orderdate", DataType::Date),
                ],
            ),
        );
        map
    }

    #[test]
    fn filter_project_query_lowers_to_scan_filter_output() {
        let q = Query::from_source(SourceId(0))
            .where_(lam(
                "l",
                Expr::binary(
                    BinaryOp::Le,
                    col("l", "l_shipdate"),
                    lit(mrq_common::Date::from_ymd(1998, 9, 2)),
                ),
            ))
            .select(lam("l", col("l", "l_extendedprice")))
            .into_expr();
        let spec = lower(&canonicalize(q), &catalog()).unwrap();
        assert_eq!(spec.root, SourceId(0));
        assert_eq!(spec.root_filters.len(), 1);
        assert!(spec.joins.is_empty());
        assert!(!spec.is_grouped());
        assert_eq!(spec.output.len(), 1);
        assert_eq!(spec.output_schema.field(0).dtype, DataType::Decimal);
        // The filter references only the ship-date column of slot 0.
        assert_eq!(spec.referenced_columns(0), vec![2, 4]);
    }

    #[test]
    fn conjunctive_filters_are_split() {
        let q = Query::from_source(SourceId(0))
            .where_(lam(
                "l",
                Expr::binary(
                    BinaryOp::And,
                    Expr::binary(
                        BinaryOp::Gt,
                        col("l", "l_quantity"),
                        lit(mrq_common::Decimal::from_int(5)),
                    ),
                    Expr::binary(BinaryOp::Eq, col("l", "l_returnflag"), lit("N")),
                ),
            ))
            .into_expr();
        let spec = lower(&canonicalize(q), &catalog()).unwrap();
        assert_eq!(spec.root_filters.len(), 2);
        // Default projection: all six root columns.
        assert_eq!(spec.output.len(), 6);
    }

    #[test]
    fn group_by_with_aggregates_lowers_keys_and_aggs() {
        let q = Query::from_source(SourceId(0))
            .group_by(lam("l", col("l", "l_returnflag")))
            .select(lam(
                "g",
                Expr::Constructor {
                    name: "R".into(),
                    fields: vec![
                        (
                            "flag".into(),
                            Expr::member(Expr::member(mrq_expr::var("g"), "Key"), "l_returnflag"),
                        ),
                        (
                            "total".into(),
                            mrq_expr::builder::agg(
                                AggFunc::Sum,
                                "g",
                                Some(lam("x", col("x", "l_quantity"))),
                            ),
                        ),
                        (
                            "n".into(),
                            mrq_expr::builder::agg(AggFunc::Count, "g", None),
                        ),
                    ],
                },
            ))
            .into_expr();
        let spec = lower(&canonicalize(q), &catalog()).unwrap();
        assert!(spec.is_grouped());
        assert_eq!(spec.group_keys.len(), 1);
        assert_eq!(spec.aggregates.len(), 2);
        assert_eq!(spec.aggregates[0].func, AggFunc::Sum);
        assert_eq!(spec.aggregates[0].dtype, DataType::Decimal);
        assert_eq!(spec.aggregates[1].dtype, DataType::Int64);
        assert_eq!(
            spec.output,
            vec![
                ("flag".to_string(), OutputExpr::Key(0)),
                ("total".to_string(), OutputExpr::Agg(0)),
                ("n".to_string(), OutputExpr::Agg(1)),
            ]
        );
    }

    #[test]
    fn duplicate_aggregates_are_computed_once_and_shared() {
        // The same Sum(l_quantity) appears twice and Count() appears twice;
        // each must lower to a single aggregate shared by both output columns
        // (§2.3, "overlaps in the aggregation computations").
        let q = Query::from_source(SourceId(0))
            .group_by(lam("l", col("l", "l_returnflag")))
            .select(lam(
                "g",
                Expr::Constructor {
                    name: "R".into(),
                    fields: vec![
                        (
                            "total".into(),
                            mrq_expr::builder::agg(
                                AggFunc::Sum,
                                "g",
                                Some(lam("x", col("x", "l_quantity"))),
                            ),
                        ),
                        (
                            "total_again".into(),
                            mrq_expr::builder::agg(
                                AggFunc::Sum,
                                "g",
                                Some(lam("x", col("x", "l_quantity"))),
                            ),
                        ),
                        (
                            "n".into(),
                            mrq_expr::builder::agg(AggFunc::Count, "g", None),
                        ),
                        (
                            "n_again".into(),
                            mrq_expr::builder::agg(AggFunc::Count, "g", None),
                        ),
                        (
                            "other".into(),
                            mrq_expr::builder::agg(
                                AggFunc::Sum,
                                "g",
                                Some(lam("x", col("x", "l_extendedprice"))),
                            ),
                        ),
                    ],
                },
            ))
            .into_expr();
        let spec = lower(&canonicalize(q), &catalog()).unwrap();
        assert_eq!(spec.aggregates.len(), 3, "duplicates must be eliminated");
        assert_eq!(spec.output[0].1, OutputExpr::Agg(0));
        assert_eq!(spec.output[1].1, OutputExpr::Agg(0));
        assert_eq!(spec.output[2].1, OutputExpr::Agg(1));
        assert_eq!(spec.output[3].1, OutputExpr::Agg(1));
        assert_eq!(spec.output[4].1, OutputExpr::Agg(2));
    }

    #[test]
    fn join_with_filtered_build_side_pushes_the_selection_down() {
        let q = Query::from_source(SourceId(0))
            .join_query(
                Query::from_source(SourceId(1)).where_(lam(
                    "o",
                    Expr::binary(
                        BinaryOp::Lt,
                        col("o", "o_orderdate"),
                        lit(mrq_common::Date::from_ymd(1995, 3, 15)),
                    ),
                )),
                lam("l", col("l", "l_orderkey")),
                lam("o", col("o", "o_orderkey")),
                lam(
                    "l",
                    lam(
                        "o",
                        Expr::Constructor {
                            name: "LO".into(),
                            fields: vec![
                                ("price".into(), col("l", "l_extendedprice")),
                                ("odate".into(), col("o", "o_orderdate")),
                            ],
                        },
                    ),
                ),
            )
            .into_expr();
        let spec = lower(&canonicalize(q), &catalog()).unwrap();
        assert_eq!(spec.joins.len(), 1);
        let join = &spec.joins[0];
        assert_eq!(join.source, SourceId(1));
        assert_eq!(join.slot, 1);
        assert_eq!(join.build_filters.len(), 1);
        assert_eq!(join.build_keys.len(), 1);
        assert_eq!(join.probe_keys.len(), 1);
        assert!(join.build_filters[0].only_slot(1));
        assert!(join.probe_keys[0].only_slot(0));
        // Output carries one column from each side.
        assert_eq!(spec.output.len(), 2);
        assert_eq!(spec.referenced_columns(1), vec![0, 2]);
    }

    #[test]
    fn pre_projection_sort_keys_resolve_to_output_columns() {
        // Where -> OrderBy -> Select, like the sorting micro-benchmark.
        let q = Query::from_source(SourceId(0))
            .order_by(lam("l", col("l", "l_extendedprice")))
            .select(lam(
                "l",
                Expr::Constructor {
                    name: "Out".into(),
                    fields: vec![
                        ("l_orderkey".into(), col("l", "l_orderkey")),
                        ("l_extendedprice".into(), col("l", "l_extendedprice")),
                    ],
                },
            ))
            .into_expr();
        let spec = lower(&canonicalize(q), &catalog()).unwrap();
        assert_eq!(spec.sort.len(), 1);
        assert_eq!(spec.sort[0].output_col, 1);
        assert_eq!(spec.hidden_outputs, 0);

        // If the sort key is not projected, a hidden output column carries it.
        let q2 = Query::from_source(SourceId(0))
            .order_by_desc(lam("l", col("l", "l_quantity")))
            .select(lam("l", col("l", "l_orderkey")))
            .into_expr();
        let spec2 = lower(&canonicalize(q2), &catalog()).unwrap();
        assert_eq!(spec2.hidden_outputs, 1);
        assert_eq!(spec2.visible_outputs(), 1);
        assert!(spec2.sort[0].descending);
        assert_eq!(spec2.sort[0].output_col, 1);
    }

    #[test]
    fn take_resolves_parameterised_counts() {
        let q = Query::from_source(SourceId(0)).take(10).into_expr();
        let canon = canonicalize(q);
        // Canonicalisation turned the literal into a parameter.
        assert_eq!(canon.params, vec![Value::Int64(10)]);
        let spec = lower(&canon, &catalog()).unwrap();
        assert_eq!(spec.take, Some(10));
    }

    #[test]
    fn whole_query_count_becomes_a_single_aggregate() {
        let q = Query::from_source(SourceId(0)).count().into_expr();
        let spec = lower(&canonicalize(q), &catalog()).unwrap();
        assert!(spec.group_keys.is_empty());
        assert_eq!(spec.aggregates.len(), 1);
        assert_eq!(spec.aggregates[0].func, AggFunc::Count);
        assert_eq!(spec.output.len(), 1);
    }

    #[test]
    fn unsupported_shapes_are_rejected_not_miscompiled() {
        // Nested member navigation.
        let q = Query::from_source(SourceId(0))
            .where_(lam(
                "s",
                Expr::binary(
                    BinaryOp::Eq,
                    Expr::member(Expr::member(mrq_expr::var("s"), "Shop"), "City"),
                    lit("London"),
                ),
            ))
            .into_expr();
        let err = lower(&canonicalize(q), &catalog()).unwrap_err();
        assert!(matches!(
            err,
            MrqError::Unsupported(_) | MrqError::UnknownField(_)
        ));

        // GroupBy without a Select.
        let q2 = Query::from_source(SourceId(0))
            .group_by(lam("l", col("l", "l_returnflag")))
            .into_expr();
        assert!(lower(&canonicalize(q2), &catalog()).is_err());

        // Unknown field.
        let q3 = Query::from_source(SourceId(0))
            .select(lam("l", col("l", "no_such_column")))
            .into_expr();
        assert!(matches!(
            lower(&canonicalize(q3), &catalog()),
            Err(MrqError::UnknownField(_))
        ));
    }
}
