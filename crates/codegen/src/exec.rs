//! The compiled-query execution templates.
//!
//! [`ExecState`] is the fused algorithm the paper's generated code follows:
//! build hash tables for every join's (filtered) build side, then stream the
//! probe side once, evaluating filters, probing joins, feeding aggregates or
//! collecting output rows, and finally sorting/limiting. It is generic over
//! [`TableAccess`], so each engine instantiates the identical algorithm over
//! its own storage — managed heap objects, flat native rows, or staged
//! buffers — which is precisely the relationship between the paper's
//! generated C# (§4) and C (§5) code.
//!
//! The consume step can be called repeatedly with successive chunks of the
//! probe side, which is what the hybrid engine's buffered staging (§6.1.2)
//! uses.

use crate::spec::{AggSpec, OutputExpr, QuerySpec, ScalarExpr, SortKeySpec, StrOp};
use mrq_common::hash::{hash_u64, hash_u64_pair, FxHashMap};
use mrq_common::{
    morsel, DataType, Date, Decimal, MrqError, ParallelConfig, Result, Schema, StreamSink, Value,
    WorkStats,
};
use mrq_expr::{AggFunc, BinaryOp, UnaryOp};
use std::cmp::Ordering;
use std::ops::Range;
use std::sync::Arc;

/// Rows between intra-morsel cooperative-cancellation checkpoints inside
/// the fused scan/probe and build loops: the workspace-wide cadence from
/// [`mrq_common::cancel`], which bounds worst-case cancel latency even
/// when `morsel_rows` is huge or an input never splits.
const CANCEL_CHECK_ROWS: usize = mrq_common::cancel::CHECK_EVERY_ROWS;

/// Row-major access to one table's data. `row` indexes are dense `0..len()`.
pub trait TableAccess {
    /// Number of rows.
    fn len(&self) -> usize;
    /// True if the table has no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Reads a boolean column.
    fn get_bool(&self, row: usize, col: usize) -> bool;
    /// Reads an `i32` column.
    fn get_i32(&self, row: usize, col: usize) -> i32;
    /// Reads an `i64` column.
    fn get_i64(&self, row: usize, col: usize) -> i64;
    /// Reads an `f64` column.
    fn get_f64(&self, row: usize, col: usize) -> f64;
    /// Reads a decimal column.
    fn get_decimal(&self, row: usize, col: usize) -> Decimal;
    /// Reads a date column.
    fn get_date(&self, row: usize, col: usize) -> Date;
    /// Reads a string column.
    fn get_str(&self, row: usize, col: usize) -> &str;
    /// Reads any column as a dynamic [`Value`] (used for result
    /// construction, not for hot per-row predicates).
    fn get_value(&self, row: usize, col: usize) -> Value;
}

/// A simple row-major [`TableAccess`] over dynamic values. Used as the
/// reference storage in tests, for materialised intermediate results (e.g.
/// the decorrelated Q2 inner result) and by loaders.
#[derive(Debug, Clone)]
pub struct ValueTable {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl ValueTable {
    /// Creates a table; every row must match the schema arity.
    pub fn new(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        ValueTable { schema, rows }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Borrow of the rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Builds a table from a query output.
    pub fn from_output(output: QueryOutput) -> Self {
        ValueTable {
            schema: output.schema,
            rows: output.rows,
        }
    }
}

impl TableAccess for ValueTable {
    fn len(&self) -> usize {
        self.rows.len()
    }
    fn get_bool(&self, row: usize, col: usize) -> bool {
        self.rows[row][col].as_bool()
    }
    fn get_i32(&self, row: usize, col: usize) -> i32 {
        self.rows[row][col].as_i64().expect("i32 column") as i32
    }
    fn get_i64(&self, row: usize, col: usize) -> i64 {
        self.rows[row][col].as_i64().expect("i64 column")
    }
    fn get_f64(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col].as_f64().expect("f64 column")
    }
    fn get_decimal(&self, row: usize, col: usize) -> Decimal {
        self.rows[row][col].as_decimal().expect("decimal column")
    }
    fn get_date(&self, row: usize, col: usize) -> Date {
        self.rows[row][col].as_date().expect("date column")
    }
    fn get_str(&self, row: usize, col: usize) -> &str {
        self.rows[row][col].as_str().expect("string column")
    }
    fn get_value(&self, row: usize, col: usize) -> Value {
        self.rows[row][col].clone()
    }
}

/// The materialised result of a query: schema plus result rows (the "result
/// objects" every strategy ultimately constructs for the application).
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Schema of the result columns.
    pub schema: Schema,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Deterministic work counters accumulated while producing this result
    /// (see [`mrq_common::workcount`]).
    pub work: WorkStats,
}

/// Equality compares the *result* (schema + rows) only. Work counters are
/// intentionally excluded: different strategies — and different scheduler
/// shapes — legitimately do different amounts of work to produce identical
/// results, and the equivalence suites assert exactly that identity.
impl PartialEq for QueryOutput {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl QueryOutput {
    /// The deterministic work counters accumulated while producing this
    /// result. For a fixed query, data and strategy, every counter except
    /// [`WorkStats::morsels_executed`] is invariant across thread counts
    /// and stealing modes (see [`mrq_common::workcount`]).
    pub fn work_stats(&self) -> &WorkStats {
        &self.work
    }

    /// Renders a small fixed-width table (examples and the figures binary).
    pub fn render(&self, max_rows: usize) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        out.push_str(&names.join(" | "));
        out.push('\n');
        for row in self.rows.iter().take(max_rows) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} rows total)\n", self.rows.len()));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Key encoding
// ---------------------------------------------------------------------------

const MAX_KEY_PARTS: usize = 6;

/// A fixed-capacity composite key of encoded 64-bit parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct KeyBuf {
    parts: [u64; MAX_KEY_PARTS],
    len: u8,
}

impl KeyBuf {
    fn new() -> Self {
        KeyBuf {
            parts: [0; MAX_KEY_PARTS],
            len: 0,
        }
    }
    fn push(&mut self, part: u64) {
        assert!(
            (self.len as usize) < MAX_KEY_PARTS,
            "composite keys support at most {MAX_KEY_PARTS} parts"
        );
        self.parts[self.len as usize] = part;
        self.len += 1;
    }
}

/// Interns strings so they can participate in encoded keys without
/// allocation-per-row.
#[derive(Debug, Default, Clone)]
struct StringInterner {
    map: FxHashMap<String, u64>,
}

impl StringInterner {
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.map.len() as u64;
        self.map.insert(s.to_string(), id);
        id
    }
}

/// Encodes an already-materialised [`Value`] the same way [`EvalCtx::key_part`]
/// encodes column reads. Used when merging partial execution states (parallel
/// execution) where group keys are only available as values.
fn key_part_of_value(value: &Value, interner: &mut StringInterner) -> u64 {
    match value {
        Value::Bool(b) => *b as u64,
        Value::Int32(i) => *i as i64 as u64,
        Value::Int64(i) => *i as u64,
        Value::Decimal(d) => d.raw() as u64,
        Value::Float64(f) => f.to_bits(),
        Value::Date(d) => d.epoch_days() as u32 as u64,
        Value::Str(s) => interner.intern(s),
        Value::Null => u64::MAX,
    }
}

// ---------------------------------------------------------------------------
// Pre-built join indexes
// ---------------------------------------------------------------------------

/// A pre-built single-column equality index over a build-side table, usable
/// in place of the per-query hash-table build (the paper lists indexes as
/// future work in §9; this is that extension).
///
/// Keys are the same 64-bit encoding [`ExecState`] uses for probe keys, so an
/// index built once over a stored table can serve every query whose join key
/// is that column. String columns cannot be indexed this way because probe-
/// side string encoding is per-execution (interned); the engines enforce
/// that restriction when deciding whether an index is applicable.
///
/// Internally the index is hash-partitioned into `2^bits` shards selected by
/// the high bits of the key hash, so it can be built in parallel (scatter
/// `(key, row)` pairs per shard, finalise each shard independently) with
/// zero merge contention. A sequentially built index has a single shard.
#[derive(Debug, Clone)]
pub struct JoinIndex {
    shards: Vec<FxHashMap<u64, Vec<usize>>>,
    bits: u32,
    rows: usize,
}

impl Default for JoinIndex {
    fn default() -> Self {
        JoinIndex {
            shards: vec![FxHashMap::default()],
            bits: 0,
            rows: 0,
        }
    }
}

impl JoinIndex {
    /// Creates an empty single-shard index.
    pub fn new() -> Self {
        JoinIndex::default()
    }

    /// The shard a key belongs to: the high `bits` bits of the key hash
    /// (0 when the index is unsharded). Parallel builders must scatter with
    /// this exact function so lookups route to the right shard.
    #[inline]
    pub fn shard_index(key: u64, bits: u32) -> usize {
        if bits == 0 {
            0
        } else {
            (hash_u64(key) >> (64 - bits)) as usize
        }
    }

    /// Assembles an index from per-shard maps built elsewhere (the parallel
    /// build path). `shards.len()` must be a power of two and every entry
    /// must have been routed with [`JoinIndex::shard_index`].
    pub fn from_shards(shards: Vec<FxHashMap<u64, Vec<usize>>>) -> Self {
        assert!(
            !shards.is_empty() && shards.len().is_power_of_two(),
            "shard count must be a power of two"
        );
        let bits = shards.len().trailing_zeros();
        let rows = shards.iter().flat_map(|s| s.values()).map(Vec::len).sum();
        JoinIndex { shards, bits, rows }
    }

    /// Adds one `(key, build row)` entry.
    pub fn insert(&mut self, key: u64, row: usize) {
        let shard = Self::shard_index(key, self.bits);
        self.shards[shard].entry(key).or_default().push(row);
        self.rows += 1;
    }

    /// Build rows whose key equals `key`.
    pub fn get(&self, key: u64) -> Option<&[usize]> {
        self.shards[Self::shard_index(key, self.bits)]
            .get(&key)
            .map(Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.shards.iter().map(FxHashMap::len).sum()
    }

    /// Number of hash shards (1 for a sequentially built index).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }
}

/// Hashes a composite key for shard routing. Must be engine-independent (it
/// only sees the encoded key parts), so the build-side scatter and the
/// probe-side lookup always agree on the shard.
#[inline]
fn shard_hash(key: &KeyBuf) -> u64 {
    let mut h = 0u64;
    for i in 0..key.len as usize {
        h = hash_u64_pair(h, key.parts[i]);
    }
    h
}

/// A join hash table built for this execution, hash-partitioned into
/// `2^bits` shards by the high bits of the key hash. The sequential build
/// produces a single shard (`bits == 0`, no routing cost); the parallel
/// build scatters `(key, row)` pairs per shard and finalises the shards
/// independently, and probes route to the owning shard with the same hash.
struct BuiltJoinTable {
    shards: Vec<FxHashMap<KeyBuf, Vec<usize>>>,
    bits: u32,
}

impl BuiltJoinTable {
    fn single(map: FxHashMap<KeyBuf, Vec<usize>>) -> Self {
        BuiltJoinTable {
            shards: vec![map],
            bits: 0,
        }
    }

    #[inline]
    fn get(&self, key: &KeyBuf) -> Option<&[usize]> {
        let shard = if self.bits == 0 {
            0
        } else {
            (shard_hash(key) >> (64 - self.bits)) as usize
        };
        self.shards[shard].get(key).map(Vec::as_slice)
    }
}

/// The hash table used for one join level: either built for this execution
/// from the (filtered) build side, or borrowed from a pre-built
/// [`JoinIndex`]. Built tables sit behind an [`Arc`] so forking a state per
/// morsel worker shares them instead of deep-copying the hash maps.
#[derive(Clone)]
enum JoinTable<'a> {
    Built(Arc<BuiltJoinTable>),
    Indexed(&'a JoinIndex),
}

impl JoinTable<'_> {
    #[inline]
    fn lookup(&self, key: &KeyBuf) -> Option<&[usize]> {
        match self {
            JoinTable::Built(table) => table.get(key),
            JoinTable::Indexed(index) => {
                debug_assert_eq!(key.len, 1, "indexed joins use single-part keys");
                index.get(key.parts[0])
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Top-N (OrderBy + Take fusion)
// ---------------------------------------------------------------------------

/// A bounded ordered buffer that fuses `OrderBy` with a following `Take(n)`
/// (§2.3, "Independent operators"): instead of sorting the whole input and
/// truncating, only the current best `n` rows are retained while streaming.
///
/// Ties preserve arrival order, so the final contents equal what a stable
/// full sort followed by `truncate(n)` would produce.
#[derive(Debug, Clone)]
pub struct TopN {
    limit: usize,
    sort: Vec<SortKeySpec>,
    rows: Vec<Vec<Value>>,
    offered: u64,
}

impl TopN {
    /// Creates a top-N buffer retaining `limit` rows ordered by `sort`.
    pub fn new(limit: usize, sort: Vec<SortKeySpec>) -> Self {
        TopN {
            limit,
            sort,
            rows: Vec::with_capacity(limit.min(1024)),
            offered: 0,
        }
    }

    fn cmp_rows(&self, a: &[Value], b: &[Value]) -> Ordering {
        for key in &self.sort {
            let ord = a[key.output_col].total_cmp(&b[key.output_col]);
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Offers one row; it is retained only if it ranks within the best
    /// `limit` rows seen so far.
    pub fn offer(&mut self, row: Vec<Value>) {
        self.offered += 1;
        if self.limit == 0 {
            return;
        }
        if self.rows.len() == self.limit {
            // Fast reject: worse than (or tied with) the current worst row.
            if self.cmp_rows(&row, self.rows.last().expect("non-empty")) != Ordering::Less {
                return;
            }
        }
        // Insert after any equal rows so ties keep arrival order (matching a
        // stable sort).
        let pos = self
            .rows
            .partition_point(|existing| self.cmp_rows(existing, &row) != Ordering::Greater);
        self.rows.insert(pos, row);
        self.rows.truncate(self.limit);
    }

    /// Rows offered so far (retained or not).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Number of rows currently retained.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows are retained.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Consumes the buffer, returning the retained rows in sort order.
    pub fn into_sorted_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }
}

// ---------------------------------------------------------------------------
// Scalar evaluation
// ---------------------------------------------------------------------------

/// A borrowed operand produced while evaluating predicates.
enum Operand<'a> {
    I64(i64),
    Dec(Decimal),
    F64(f64),
    Date(Date),
    Str(&'a str),
    Bool(bool),
}

/// A numeric value produced by arithmetic expressions (aggregate inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Num {
    I64(i64),
    Dec(Decimal),
    F64(f64),
}

impl Num {
    fn to_f64(self) -> f64 {
        match self {
            Num::I64(v) => v as f64,
            Num::Dec(d) => d.to_f64(),
            Num::F64(v) => v,
        }
    }
}

struct EvalCtx<'a, T: TableAccess> {
    root: &'a T,
    builds: &'a [&'a T],
    rows: &'a [usize],
    params: &'a [Value],
}

impl<'a, T: TableAccess> EvalCtx<'a, T> {
    #[inline]
    fn table(&self, slot: usize) -> &'a T {
        if slot == 0 {
            self.root
        } else {
            self.builds[slot - 1]
        }
    }

    fn column_type(&self, _slot: usize, _col: usize) -> DataType {
        // Types were resolved during lowering; evaluation derives the shape
        // from the expression structure, so this is unused.
        DataType::Int64
    }

    fn operand(&self, expr: &'a ScalarExpr, types: &ColumnTypes) -> Operand<'a> {
        match expr {
            ScalarExpr::Column(c) => {
                let t = self.table(c.slot);
                match types.dtype(c.slot, c.col) {
                    DataType::Bool => Operand::Bool(t.get_bool(self.rows[c.slot], c.col)),
                    DataType::Int32 => Operand::I64(t.get_i32(self.rows[c.slot], c.col) as i64),
                    DataType::Int64 => Operand::I64(t.get_i64(self.rows[c.slot], c.col)),
                    DataType::Decimal => Operand::Dec(t.get_decimal(self.rows[c.slot], c.col)),
                    DataType::Float64 => Operand::F64(t.get_f64(self.rows[c.slot], c.col)),
                    DataType::Date => Operand::Date(t.get_date(self.rows[c.slot], c.col)),
                    DataType::Str => Operand::Str(t.get_str(self.rows[c.slot], c.col)),
                }
            }
            ScalarExpr::Const(v) => value_operand(v),
            ScalarExpr::Param(i) => value_operand(&self.params[*i]),
            other => {
                // Composite arithmetic inside a comparison: evaluate as a
                // number.
                let _ = self.column_type(0, 0);
                match self.number(other, types) {
                    Num::I64(v) => Operand::I64(v),
                    Num::Dec(d) => Operand::Dec(d),
                    Num::F64(v) => Operand::F64(v),
                }
            }
        }
    }

    fn bool_expr(&self, expr: &'a ScalarExpr, types: &ColumnTypes) -> bool {
        match expr {
            ScalarExpr::Binary { op, left, right } => match op {
                BinaryOp::And => self.bool_expr(left, types) && self.bool_expr(right, types),
                BinaryOp::Or => self.bool_expr(left, types) || self.bool_expr(right, types),
                cmp if cmp.is_comparison() => {
                    let l = self.operand(left, types);
                    let r = self.operand(right, types);
                    compare(*cmp, &l, &r)
                }
                _ => panic!("arithmetic expression used in a boolean position"),
            },
            ScalarExpr::Unary {
                op: UnaryOp::Not,
                expr,
            } => !self.bool_expr(expr, types),
            ScalarExpr::Const(v) => v.as_bool(),
            ScalarExpr::Param(i) => self.params[*i].as_bool(),
            ScalarExpr::Str { op, target, arg } => {
                let t = self.operand(target, types);
                let a = self.operand(arg, types);
                match (t, a) {
                    (Operand::Str(t), Operand::Str(a)) => match op {
                        StrOp::StartsWith => t.starts_with(a),
                        StrOp::EndsWith => t.ends_with(a),
                        StrOp::Contains => t.contains(a),
                    },
                    _ => false,
                }
            }
            ScalarExpr::Column(c) => {
                let t = self.table(c.slot);
                t.get_bool(self.rows[c.slot], c.col)
            }
            other => panic!("unsupported boolean expression {other:?}"),
        }
    }

    fn number(&self, expr: &ScalarExpr, types: &ColumnTypes) -> Num {
        match expr {
            ScalarExpr::Column(c) => {
                let t = self.table(c.slot);
                match types.dtype(c.slot, c.col) {
                    DataType::Int32 => Num::I64(t.get_i32(self.rows[c.slot], c.col) as i64),
                    DataType::Int64 => Num::I64(t.get_i64(self.rows[c.slot], c.col)),
                    DataType::Decimal => Num::Dec(t.get_decimal(self.rows[c.slot], c.col)),
                    DataType::Float64 => Num::F64(t.get_f64(self.rows[c.slot], c.col)),
                    DataType::Date => {
                        Num::I64(t.get_date(self.rows[c.slot], c.col).epoch_days() as i64)
                    }
                    other => panic!("column of type {other} used in arithmetic"),
                }
            }
            ScalarExpr::Const(v) => num_of_value(v),
            ScalarExpr::Param(i) => num_of_value(&self.params[*i]),
            ScalarExpr::Binary { op, left, right } => {
                let l = self.number(left, types);
                let r = self.number(right, types);
                arith(*op, l, r)
            }
            ScalarExpr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => match self.number(expr, types) {
                Num::I64(v) => Num::I64(-v),
                Num::Dec(d) => Num::Dec(-d),
                Num::F64(v) => Num::F64(-v),
            },
            other => panic!("unsupported numeric expression {other:?}"),
        }
    }

    fn key_part(
        &self,
        expr: &'a ScalarExpr,
        types: &ColumnTypes,
        interner: &mut StringInterner,
    ) -> u64 {
        match self.operand(expr, types) {
            Operand::I64(v) => v as u64,
            Operand::Dec(d) => d.raw() as u64,
            Operand::F64(v) => v.to_bits(),
            Operand::Date(d) => d.epoch_days() as u32 as u64,
            Operand::Bool(b) => b as u64,
            Operand::Str(s) => interner.intern(s),
        }
    }

    fn value(&self, expr: &ScalarExpr, types: &ColumnTypes) -> Value {
        match expr {
            ScalarExpr::Column(c) => self.table(c.slot).get_value(self.rows[c.slot], c.col),
            ScalarExpr::Const(v) => v.clone(),
            ScalarExpr::Param(i) => self.params[*i].clone(),
            ScalarExpr::Str { .. }
            | ScalarExpr::Unary {
                op: UnaryOp::Not, ..
            } => Value::Bool(self.bool_expr(expr, types)),
            ScalarExpr::Binary { op, .. } if op.is_comparison() || op.is_logical() => {
                Value::Bool(self.bool_expr(expr, types))
            }
            other => match self.number(other, types) {
                Num::I64(v) => Value::Int64(v),
                Num::Dec(d) => Value::Decimal(d),
                Num::F64(v) => Value::Float64(v),
            },
        }
    }
}

fn value_operand(v: &Value) -> Operand<'_> {
    match v {
        Value::Bool(b) => Operand::Bool(*b),
        Value::Int32(i) => Operand::I64(*i as i64),
        Value::Int64(i) => Operand::I64(*i),
        Value::Decimal(d) => Operand::Dec(*d),
        Value::Float64(f) => Operand::F64(*f),
        Value::Date(d) => Operand::Date(*d),
        Value::Str(s) => Operand::Str(s),
        Value::Null => Operand::Bool(false),
    }
}

fn num_of_value(v: &Value) -> Num {
    match v {
        Value::Int32(i) => Num::I64(*i as i64),
        Value::Int64(i) => Num::I64(*i),
        Value::Decimal(d) => Num::Dec(*d),
        Value::Float64(f) => Num::F64(*f),
        Value::Date(d) => Num::I64(d.epoch_days() as i64),
        other => panic!("value {other:?} used in arithmetic"),
    }
}

fn arith(op: BinaryOp, l: Num, r: Num) -> Num {
    use BinaryOp::*;
    match (l, r) {
        (Num::F64(_), _) | (_, Num::F64(_)) => {
            let (a, b) = (l.to_f64(), r.to_f64());
            Num::F64(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                _ => panic!("non-arithmetic operator in arithmetic position"),
            })
        }
        (Num::Dec(a), Num::Dec(b)) => Num::Dec(match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => Decimal::from_f64(a.to_f64() / b.to_f64()),
            _ => panic!("non-arithmetic operator in arithmetic position"),
        }),
        (Num::Dec(a), Num::I64(b)) => arith(op, Num::Dec(a), Num::Dec(Decimal::from_int(b))),
        (Num::I64(a), Num::Dec(b)) => arith(op, Num::Dec(Decimal::from_int(a)), Num::Dec(b)),
        (Num::I64(a), Num::I64(b)) => Num::I64(match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => a / b,
            _ => panic!("non-arithmetic operator in arithmetic position"),
        }),
    }
}

fn compare(op: BinaryOp, l: &Operand<'_>, r: &Operand<'_>) -> bool {
    let ord = match (l, r) {
        (Operand::I64(a), Operand::I64(b)) => a.cmp(b),
        (Operand::Dec(a), Operand::Dec(b)) => a.cmp(b),
        (Operand::Dec(a), Operand::I64(b)) => a.cmp(&Decimal::from_int(*b)),
        (Operand::I64(a), Operand::Dec(b)) => Decimal::from_int(*a).cmp(b),
        (Operand::F64(a), Operand::F64(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
        (Operand::F64(a), Operand::I64(b)) => {
            a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal)
        }
        (Operand::I64(a), Operand::F64(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
        (Operand::Date(a), Operand::Date(b)) => a.cmp(b),
        (Operand::Str(a), Operand::Str(b)) => a.cmp(b),
        (Operand::Bool(a), Operand::Bool(b)) => a.cmp(b),
        _ => panic!("comparison between incompatible operand types"),
    };
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::Ne => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::Le => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::Ge => ord != Ordering::Less,
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------------------
// Column types registry
// ---------------------------------------------------------------------------

/// Column types per slot, captured at compile (lowering) time so evaluation
/// never consults schemas in the hot loop.
#[derive(Debug, Clone)]
pub struct ColumnTypes {
    per_slot: Vec<Vec<DataType>>,
}

impl ColumnTypes {
    /// Builds the registry from the slot schemas (index 0 = root).
    pub fn new(slot_schemas: &[Schema]) -> Self {
        ColumnTypes {
            per_slot: slot_schemas
                .iter()
                .map(|s| s.fields().iter().map(|f| f.dtype).collect())
                .collect(),
        }
    }

    #[inline]
    fn dtype(&self, slot: usize, col: usize) -> DataType {
        self.per_slot[slot][col]
    }
}

// ---------------------------------------------------------------------------
// Aggregate state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumI64(i64),
    SumDec(Decimal),
    SumF64(f64),
    Avg {
        sum: f64,
        count: i64,
    },
    /// Averages over decimal inputs accumulate exactly in fixed point, so
    /// they are associative: merging per-worker partial states yields the
    /// bit-identical result of a sequential scan at any thread count
    /// (float accumulation would drift by an ulp across morsel boundaries).
    AvgDec {
        sum: Decimal,
        count: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(spec: &AggSpec) -> AggState {
        match spec.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Average => match spec.input_dtype {
                Some(DataType::Decimal) => AggState::AvgDec {
                    sum: Decimal::ZERO,
                    count: 0,
                },
                _ => AggState::Avg { sum: 0.0, count: 0 },
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Sum => match spec.dtype {
                DataType::Decimal => AggState::SumDec(Decimal::ZERO),
                DataType::Float64 => AggState::SumF64(0.0),
                _ => AggState::SumI64(0),
            },
        }
    }

    fn finish(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int64(*n),
            AggState::SumI64(v) => Value::Int64(*v),
            AggState::SumDec(d) => Value::Decimal(*d),
            AggState::SumF64(v) => Value::Float64(*v),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / *count as f64)
                }
            }
            AggState::AvgDec { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum.to_f64() / *count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }

    /// Folds another partial state of the same aggregate into this one (used
    /// when merging per-worker states after a parallel scan).
    fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumI64(a), AggState::SumI64(b)) => *a += b,
            (AggState::SumDec(a), AggState::SumDec(b)) => *a += *b,
            (AggState::SumF64(a), AggState::SumF64(b)) => *a += b,
            (
                AggState::Avg { sum, count },
                AggState::Avg {
                    sum: other_sum,
                    count: other_count,
                },
            ) => {
                *sum += other_sum;
                *count += other_count;
            }
            (
                AggState::AvgDec { sum, count },
                AggState::AvgDec {
                    sum: other_sum,
                    count: other_count,
                },
            ) => {
                *sum += *other_sum;
                *count += other_count;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(v) = b {
                    if a.as_ref()
                        .is_none_or(|cur| v.total_cmp(cur) == Ordering::Less)
                    {
                        *a = Some(v.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(v) = b {
                    if a.as_ref()
                        .is_none_or(|cur| v.total_cmp(cur) == Ordering::Greater)
                    {
                        *a = Some(v.clone());
                    }
                }
            }
            _ => panic!("merging mismatched aggregate states"),
        }
    }
}

// ---------------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------------

/// Incremental execution state for one compiled query over one engine's
/// tables.
pub struct ExecState<'a, T: TableAccess> {
    spec: &'a QuerySpec,
    params: &'a [Value],
    types: ColumnTypes,
    builds: Vec<&'a T>,
    join_tables: Vec<JoinTable<'a>>,
    interner: StringInterner,
    groups: FxHashMap<KeyBuf, usize>,
    group_keys: Vec<Vec<Value>>,
    group_aggs: Vec<Vec<AggState>>,
    plain_rows: Vec<Vec<Value>>,
    topn: Option<TopN>,
    /// Take limit resolved against `params` (a plan shared across executions
    /// may carry its Take count in a parameter slot rather than in the spec).
    take: Option<usize>,
    consumed_rows: u64,
    emitted_rows: u64,
    /// Deterministic work counters for this (possibly partial) state. Forks
    /// start at zero and [`ExecState::merge`] adds, so per-query totals are
    /// independent of how the scan was partitioned across workers.
    work: WorkStats,
    /// Streaming sink for incremental row publication, attached by
    /// [`ExecState::attach_stream_sink`] on streamable shapes only. Forks
    /// never inherit it — in a parallel run the sink lives with the ordered
    /// gather ([`morsel::run_ordered`]), not with individual workers, so
    /// rows are published strictly in morsel order.
    sink: Option<StreamSink>,
}

impl<'a, T: TableAccess> ExecState<'a, T> {
    /// Builds the execution state: hash tables are built from the (filtered)
    /// build-side tables. `builds[i]` is the table bound to
    /// `spec.joins[i].source`; `slot_schemas[s]` is the schema of slot `s`
    /// (root first).
    pub fn new(
        spec: &'a QuerySpec,
        params: &'a [Value],
        builds: Vec<&'a T>,
        slot_schemas: &[Schema],
    ) -> Result<Self> {
        let none = vec![None; spec.joins.len()];
        Self::new_with_indexes(spec, params, builds, slot_schemas, &none)
    }

    /// Like [`ExecState::new`], but any join whose `indexes[i]` is `Some`
    /// uses the pre-built index instead of building a hash table. The caller
    /// is responsible for only supplying an index when it is applicable (a
    /// single non-string build key over the unfiltered build table).
    pub fn new_with_indexes(
        spec: &'a QuerySpec,
        params: &'a [Value],
        builds: Vec<&'a T>,
        slot_schemas: &[Schema],
        indexes: &[Option<&'a JoinIndex>],
    ) -> Result<Self> {
        let mut state = Self::new_unbuilt(spec, params, builds, slot_schemas, indexes)?;
        state.build_join_tables(indexes)?;
        Ok(state)
    }

    /// Constructs the state without building join tables (shared by the
    /// sequential and parallel constructors).
    fn new_unbuilt(
        spec: &'a QuerySpec,
        params: &'a [Value],
        builds: Vec<&'a T>,
        slot_schemas: &[Schema],
        indexes: &[Option<&'a JoinIndex>],
    ) -> Result<Self> {
        if builds.len() != spec.joins.len() {
            return Err(MrqError::Internal(format!(
                "expected {} build tables, got {}",
                spec.joins.len(),
                builds.len()
            )));
        }
        if indexes.len() != spec.joins.len() {
            return Err(MrqError::Internal(format!(
                "expected {} join indexes, got {}",
                spec.joins.len(),
                indexes.len()
            )));
        }
        spec.check_params(params)?;
        let take = spec.effective_take(params)?;
        let types = ColumnTypes::new(slot_schemas);
        // OrderBy + Take over a non-grouped pipeline is fused into a bounded
        // top-N buffer; grouped queries sort their (few) groups at the end.
        let topn = match (take, spec.is_grouped(), spec.sort.is_empty()) {
            (Some(n), false, false) => Some(TopN::new(n, spec.sort.clone())),
            _ => None,
        };
        Ok(ExecState {
            spec,
            params,
            types,
            builds,
            join_tables: Vec::new(),
            interner: StringInterner::default(),
            groups: FxHashMap::default(),
            group_keys: Vec::new(),
            group_aggs: Vec::new(),
            plain_rows: Vec::new(),
            topn,
            take,
            consumed_rows: 0,
            emitted_rows: 0,
            work: WorkStats::default(),
            sink: None,
        })
    }

    /// Whether this execution's shape can publish rows incrementally:
    /// exactly the pipelines whose output order is the probe scan order.
    /// Grouping, sorting (fused or final), `Take` truncation and hidden
    /// sort columns all require the complete row set before the first
    /// output row is known, so those shapes deliver everything as the
    /// residual `QueryOutput` instead.
    pub fn streamable(&self) -> bool {
        !self.spec.is_grouped()
            && self.topn.is_none()
            && self.spec.sort.is_empty()
            && self.take.is_none()
            && self.spec.hidden_outputs == 0
    }

    /// Attaches `sink` for incremental publication if the shape is
    /// streamable (see [`ExecState::streamable`]); returns whether it was
    /// attached. Non-streamable shapes simply keep buffering — the serving
    /// layer flushes their full output as the stream's residual, so the
    /// client-visible row sequence is identical either way.
    pub fn attach_stream_sink(&mut self, sink: StreamSink) -> bool {
        if self.streamable() {
            self.sink = Some(sink);
            true
        } else {
            false
        }
    }

    /// Detaches and returns the stream sink, if any (the parallel gather
    /// takes it from the base state so forks run sink-free and publication
    /// happens only at the ordered frontier).
    pub fn take_sink(&mut self) -> Option<StreamSink> {
        self.sink.take()
    }

    /// Publishes this state's buffered plain rows to `sink`, draining them.
    /// Used by the ordered parallel gather (and the hybrid engine's staged
    /// variant) when each partial reaches the publication frontier; channel
    /// counters account the streamed rows, so work counters are untouched
    /// here. A `false` from the sink (receiver gone / token tripped) just
    /// stops publishing — the cooperative cancel checkpoint unwinds the
    /// query itself.
    pub fn flush_rows_to(&mut self, sink: &StreamSink) {
        if !self.plain_rows.is_empty() {
            sink.send_rows(&mut self.plain_rows);
        }
    }

    /// Publishes buffered rows to the attached sink, if any (the sequential
    /// in-loop flush; parallel forks have no sink and buffer until the
    /// ordered gather publishes them).
    #[inline]
    fn flush_streamed(&mut self) {
        if let Some(sink) = &self.sink {
            if !self.plain_rows.is_empty() {
                sink.send_rows(&mut self.plain_rows);
            }
        }
    }

    /// Disables the OrderBy+Take fusion (used by ablation benchmarks and by
    /// the interpreted baseline, which sorts the full input as LINQ does).
    /// Must be called before any input is consumed.
    pub fn disable_topn_fusion(&mut self) {
        assert!(
            self.plain_rows.is_empty() && self.consumed_rows == 0,
            "top-N fusion can only be toggled before consuming input"
        );
        self.topn = None;
    }

    /// Whether this execution fuses OrderBy+Take into a bounded buffer.
    pub fn topn_fused(&self) -> bool {
        self.topn.is_some()
    }

    /// Validates that a pre-built index is shaped to serve join `j`.
    fn check_index_applicable(join: &crate::spec::JoinSpec) -> Result<()> {
        if join.build_keys.len() != 1 || !join.build_filters.is_empty() {
            return Err(MrqError::Internal(
                "join indexes require a single build key and no build filters".into(),
            ));
        }
        Ok(())
    }

    fn build_join_tables(&mut self, indexes: &[Option<&'a JoinIndex>]) -> Result<()> {
        for (j, slot_index) in indexes.iter().enumerate() {
            if let Some(index) = slot_index {
                Self::check_index_applicable(&self.spec.joins[j])?;
                self.join_tables.push(JoinTable::Indexed(index));
                continue;
            }
            let map = self.build_join_map(j);
            self.join_tables
                .push(JoinTable::Built(Arc::new(BuiltJoinTable::single(map))));
        }
        Ok(())
    }

    /// Builds the hash table for join `j` sequentially (the seed behaviour):
    /// one pass over the build side, inserting into a single map.
    fn build_join_map(&mut self, j: usize) -> FxHashMap<KeyBuf, Vec<usize>> {
        let spec = self.spec;
        let join = &spec.joins[j];
        let table = self.builds[j];
        let mut map: FxHashMap<KeyBuf, Vec<usize>> =
            FxHashMap::with_capacity_and_hasher(table.len(), Default::default());
        // Build-side rows are evaluated with the build slot bound; other
        // slots are irrelevant for build filters/keys.
        let mut rows = vec![0usize; spec.joins.len() + 1];
        'rows: for r in 0..table.len() {
            self.work.scanned_row();
            if r.is_multiple_of(CANCEL_CHECK_ROWS) {
                mrq_common::cancel::checkpoint();
            }
            rows[join.slot] = r;
            let ctx = EvalCtx {
                root: table, // never consulted: build expressions only use `join.slot`
                builds: &self.builds,
                rows: &rows,
                params: self.params,
            };
            for f in &join.build_filters {
                if !ctx.bool_expr(f, &self.types) {
                    continue 'rows;
                }
            }
            let mut key = KeyBuf::new();
            for k in &join.build_keys {
                key.push(ctx.key_part(k, &self.types, &mut self.interner));
            }
            map.entry(key).or_default().push(r);
            self.work.built_insert();
        }
        map
    }

    /// True if evaluating this build-key expression would intern a string.
    /// String keys force the sequential build: the interner assigns ids in
    /// first-seen order, which a parallel scan could not reproduce.
    fn key_interns_strings(&self, expr: &ScalarExpr) -> bool {
        match expr {
            ScalarExpr::Column(c) => matches!(self.types.dtype(c.slot, c.col), DataType::Str),
            ScalarExpr::Const(v) => matches!(v, Value::Str(_)),
            ScalarExpr::Param(i) => matches!(self.params[*i], Value::Str(_)),
            // Composite arithmetic / comparisons never produce strings.
            _ => false,
        }
    }

    /// Streams (a chunk of) the probe-side root table through the fused
    /// pipeline. May be called multiple times with successive chunks.
    pub fn consume(&mut self, root: &T) {
        self.consume_range(root, 0..root.len());
    }

    /// Streams only the given row range of the probe-side table through the
    /// pipeline. Parallel execution partitions the probe side into disjoint
    /// ranges (morsels), gives each worker its own state, and merges them
    /// with [`ExecState::merge`].
    pub fn consume_range(&mut self, root: &T, range: Range<usize>) {
        self.work.executed_morsel();
        let join_count = self.spec.joins.len();
        let mut rows = vec![0usize; join_count + 1];
        'rows: for r in range {
            self.consumed_rows += 1;
            self.work.scanned_row();
            if self.consumed_rows.is_multiple_of(CANCEL_CHECK_ROWS as u64) {
                mrq_common::cancel::checkpoint();
                // Streamed sequential runs publish at the same cadence the
                // cancel checkpoints use, so first-row latency is bounded by
                // one checkpoint interval, not by the scan length.
                self.flush_streamed();
            }
            rows[0] = r;
            {
                let ctx = EvalCtx {
                    root,
                    builds: &self.builds,
                    rows: &rows,
                    params: self.params,
                };
                for f in &self.spec.root_filters {
                    if !ctx.bool_expr(f, &self.types) {
                        continue 'rows;
                    }
                }
            }
            self.probe_level(root, 0, &mut rows);
        }
        self.flush_streamed();
    }

    /// A copy of this state that shares no mutable data with the original.
    /// Parallel execution builds the join hash tables once, clones the state
    /// per worker (a memory copy, much cheaper than re-evaluating the build
    /// side), and merges the partial states afterwards.
    pub fn fork(&self) -> ExecState<'a, T> {
        ExecState {
            spec: self.spec,
            params: self.params,
            types: self.types.clone(),
            builds: self.builds.clone(),
            join_tables: self.join_tables.clone(),
            interner: self.interner.clone(),
            groups: self.groups.clone(),
            group_keys: self.group_keys.clone(),
            group_aggs: self.group_aggs.clone(),
            plain_rows: self.plain_rows.clone(),
            topn: self.topn.clone(),
            take: self.take,
            consumed_rows: self.consumed_rows,
            emitted_rows: self.emitted_rows,
            // Forks start from zero so merged totals count every unit of
            // work exactly once — the base keeps the build-phase counters.
            work: WorkStats::default(),
            // Workers buffer; only the ordered gather publishes.
            sink: None,
        }
    }

    /// Folds another partial state (same spec, same build tables) into this
    /// one: group-by states merge per key, aggregate states fold, plain and
    /// top-N rows concatenate, and counters add up.
    pub fn merge(&mut self, other: ExecState<'a, T>) {
        debug_assert!(
            std::ptr::eq(self.spec, other.spec),
            "merging different specs"
        );
        self.consumed_rows += other.consumed_rows;
        self.emitted_rows += other.emitted_rows;
        self.work.add(&other.work);
        if self.spec.is_grouped() {
            for (keys, aggs) in other.group_keys.into_iter().zip(other.group_aggs) {
                let mut key = KeyBuf::new();
                for value in &keys {
                    key.push(key_part_of_value(value, &mut self.interner));
                }
                let group_idx = match self.groups.get(&key) {
                    Some(&idx) => idx,
                    None => {
                        let idx = self.group_keys.len();
                        self.groups.insert(key, idx);
                        self.group_keys.push(keys);
                        self.group_aggs
                            .push(self.spec.aggregates.iter().map(AggState::new).collect());
                        idx
                    }
                };
                for (state, partial) in self.group_aggs[group_idx].iter_mut().zip(aggs.iter()) {
                    state.merge(partial);
                }
            }
        } else {
            match (&mut self.topn, other.topn) {
                (Some(mine), Some(theirs)) => {
                    for row in theirs.into_sorted_rows() {
                        mine.offer(row);
                    }
                }
                (None, None) => self.plain_rows.extend(other.plain_rows),
                _ => panic!("merging states with mismatched top-N fusion settings"),
            }
        }
    }

    /// Recursively probes join level `level` and emits rows at the deepest
    /// level.
    fn probe_level(&mut self, root: &T, level: usize, rows: &mut Vec<usize>) {
        if level == self.spec.joins.len() {
            self.emit(root, rows);
            return;
        }
        let join = &self.spec.joins[level];
        let mut key = KeyBuf::new();
        {
            let ctx = EvalCtx {
                root,
                builds: &self.builds,
                rows,
                params: self.params,
            };
            for k in &join.probe_keys {
                key.push(ctx.key_part(k, &self.types, &mut self.interner));
            }
        }
        self.work.probed(key.len as u64);
        let matches = match self.join_tables[level].lookup(&key) {
            Some(m) => m.to_vec(),
            None => return,
        };
        let slot = join.slot;
        for m in matches {
            rows[slot] = m;
            self.probe_level(root, level + 1, rows);
        }
    }

    fn emit(&mut self, root: &T, rows: &[usize]) {
        let ctx = EvalCtx {
            root,
            builds: &self.builds,
            rows,
            params: self.params,
        };
        for f in &self.spec.post_filters {
            if !ctx.bool_expr(f, &self.types) {
                return;
            }
        }
        self.emitted_rows += 1;
        self.work.materialized_row();
        if self.spec.is_grouped() {
            let mut key = KeyBuf::new();
            for k in &self.spec.group_keys {
                key.push(ctx.key_part(k, &self.types, &mut self.interner));
            }
            let group_idx = match self.groups.get(&key) {
                Some(&idx) => idx,
                None => {
                    let idx = self.group_keys.len();
                    self.groups.insert(key, idx);
                    self.group_keys.push(
                        self.spec
                            .group_keys
                            .iter()
                            .map(|k| ctx.value(k, &self.types))
                            .collect(),
                    );
                    self.group_aggs
                        .push(self.spec.aggregates.iter().map(AggState::new).collect());
                    idx
                }
            };
            for (agg_spec, state) in self
                .spec
                .aggregates
                .iter()
                .zip(self.group_aggs[group_idx].iter_mut())
            {
                update_agg(state, agg_spec, &ctx, &self.types);
            }
        } else {
            let row: Vec<Value> = self
                .spec
                .output
                .iter()
                .map(|(_, o)| match o {
                    OutputExpr::Scalar(e) => ctx.value(e, &self.types),
                    OutputExpr::Key(_) | OutputExpr::Agg(_) => {
                        unreachable!("key/agg outputs require grouping")
                    }
                })
                .collect();
            match &mut self.topn {
                Some(topn) => topn.offer(row),
                None => self.plain_rows.push(row),
            }
        }
    }

    /// Finishes execution: finalises groups, sorts, applies `Take` and strips
    /// hidden sort columns.
    pub fn finish(self) -> QueryOutput {
        let spec = self.spec;
        let work = self.work;
        let fused_topn = self.topn.is_some();
        let mut rows: Vec<Vec<Value>> = if spec.is_grouped() {
            self.group_keys
                .iter()
                .zip(self.group_aggs.iter())
                .map(|(keys, aggs)| {
                    spec.output
                        .iter()
                        .map(|(_, o)| match o {
                            OutputExpr::Key(i) => keys[*i].clone(),
                            OutputExpr::Agg(i) => aggs[*i].finish(),
                            OutputExpr::Scalar(_) => {
                                unreachable!("scalar outputs are not allowed in grouped queries")
                            }
                        })
                        .collect()
                })
                .collect()
        } else if let Some(topn) = self.topn {
            // Already ordered and bounded by the fused OrderBy+Take buffer.
            topn.into_sorted_rows()
        } else {
            self.plain_rows
        };

        if !fused_topn && !spec.sort.is_empty() {
            rows.sort_by(|a, b| {
                for key in &spec.sort {
                    let ord = a[key.output_col].total_cmp(&b[key.output_col]);
                    let ord = if key.descending { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }
        if let Some(n) = self.take {
            rows.truncate(n);
        }
        if spec.hidden_outputs > 0 {
            let visible = spec.visible_outputs();
            for row in &mut rows {
                row.truncate(visible);
            }
        }
        QueryOutput {
            schema: spec.output_schema.clone(),
            rows,
            work,
        }
    }

    /// Number of probe-side rows consumed so far.
    pub fn consumed_rows(&self) -> u64 {
        self.consumed_rows
    }

    /// Number of rows that survived filters and joins so far.
    pub fn emitted_rows(&self) -> u64 {
        self.emitted_rows
    }

    /// The deterministic work counters accumulated so far. Readable between
    /// [`ExecState::consume`] calls, so callers observing a long-running or
    /// cancelled query see partial, monotonically non-decreasing stats.
    pub fn work(&self) -> &WorkStats {
        &self.work
    }

    /// Adds externally-accounted work (used by engines that do work outside
    /// the fused loops, e.g. the hybrid engine's staging copies).
    pub fn record_work(&mut self, extra: &WorkStats) {
        self.work.add(extra);
    }
}

impl<'a, T: TableAccess + Sync> ExecState<'a, T> {
    /// Like [`ExecState::new_with_indexes`], but join hash tables are built
    /// with hash-partitioned parallelism under `config`: morsel workers scan
    /// the build side (filters applied per worker), scatter `(key, row)`
    /// pairs into per-shard buckets by the high bits of the key hash, and
    /// the shards are finalised into per-shard maps in parallel — zero merge
    /// contention, and probes route to shards with the same hash. Joins with
    /// string build keys, tiny build sides or a sequential `config` fall
    /// back to the sequential single-shard build. Either way the table
    /// content (per-key build rows in ascending row order) is identical, so
    /// results stay bit-identical to the sequential engines.
    pub fn new_parallel(
        spec: &'a QuerySpec,
        params: &'a [Value],
        builds: Vec<&'a T>,
        slot_schemas: &[Schema],
        indexes: &[Option<&'a JoinIndex>],
        config: ParallelConfig,
    ) -> Result<Self> {
        let mut state = Self::new_unbuilt(spec, params, builds, slot_schemas, indexes)?;
        for (j, slot_index) in indexes.iter().enumerate() {
            // Lifecycle control: a cancelled/expired query abandons the
            // remaining join builds here, between one build's shards and
            // the next's.
            mrq_common::cancel::checkpoint();
            if let Some(index) = slot_index {
                Self::check_index_applicable(&spec.joins[j])?;
                state.join_tables.push(JoinTable::Indexed(index));
                continue;
            }
            let join = &spec.joins[j];
            let parallel = !config.is_sequential()
                && config.partitions_for(state.builds[j].len()) > 1
                && !join.build_keys.iter().any(|k| state.key_interns_strings(k));
            let table = if parallel {
                let table = state.build_join_shards(j, config);
                // Work accounting for the fan-out is derived *after* the
                // build, from the finished shards: the totals (rows scanned
                // = build side length, inserts = rows surviving build
                // filters) are then identical to a sequential build no
                // matter how many workers scanned — the determinism
                // contract of `mrq_common::workcount`.
                let inserts: usize = table
                    .shards
                    .iter()
                    .flat_map(|s| s.values())
                    .map(Vec::len)
                    .sum();
                state.work.scanned_rows(state.builds[j].len() as u64);
                state.work.built_inserts(inserts as u64);
                table
            } else {
                BuiltJoinTable::single(state.build_join_map(j))
            };
            state.join_tables.push(JoinTable::Built(Arc::new(table)));
        }
        Ok(state)
    }

    /// The hash-partitioned parallel build for join `j`, on the shared
    /// scatter/finalise recipe ([`morsel::build_hash_shards`]). Only called
    /// for non-string build keys (checked by the caller), so no worker ever
    /// touches the interner.
    fn build_join_shards(&self, j: usize, config: ParallelConfig) -> BuiltJoinTable {
        let spec = self.spec;
        let join = &spec.joins[j];
        let table = self.builds[j];
        let workers = config.partitions_for(table.len());
        let shard_count = workers.next_power_of_two();
        let bits = shard_count.trailing_zeros();
        let shards =
            morsel::build_hash_shards(table.len(), config, shard_count, |range, buckets| {
                // Chaos hook inside the morsel itself: an injected failure
                // here unwinds on a pool worker and must travel the whole
                // panic-isolation stack (payload capture → job abort →
                // submitter re-raise → per-query Internal error).
                mrq_common::fault::point_unwind("join.build.shard");
                let mut scratch = StringInterner::default(); // never used: no string keys
                let mut rows = vec![0usize; spec.joins.len() + 1];
                'rows: for r in range {
                    if r.is_multiple_of(CANCEL_CHECK_ROWS) {
                        mrq_common::cancel::checkpoint();
                    }
                    rows[join.slot] = r;
                    let ctx = EvalCtx {
                        root: table, // never consulted: build expressions only use `join.slot`
                        builds: &self.builds,
                        rows: &rows,
                        params: self.params,
                    };
                    for f in &join.build_filters {
                        if !ctx.bool_expr(f, &self.types) {
                            continue 'rows;
                        }
                    }
                    let mut key = KeyBuf::new();
                    for k in &join.build_keys {
                        key.push(ctx.key_part(k, &self.types, &mut scratch));
                    }
                    let shard = (shard_hash(&key) >> (64 - bits)) as usize;
                    buckets[shard].push((key, r));
                }
            });
        BuiltJoinTable { shards, bits }
    }
}

fn update_agg<T: TableAccess>(
    state: &mut AggState,
    spec: &AggSpec,
    ctx: &EvalCtx<'_, T>,
    types: &ColumnTypes,
) {
    match state {
        AggState::Count(n) => *n += 1,
        AggState::SumI64(acc) => {
            if let Num::I64(v) = ctx.number(spec.input.as_ref().expect("sum input"), types) {
                *acc += v;
            }
        }
        AggState::SumDec(acc) => match ctx.number(spec.input.as_ref().expect("sum input"), types) {
            Num::Dec(d) => *acc += d,
            Num::I64(v) => *acc += Decimal::from_int(v),
            Num::F64(v) => *acc += Decimal::from_f64(v),
        },
        AggState::SumF64(acc) => {
            *acc += ctx
                .number(spec.input.as_ref().expect("sum input"), types)
                .to_f64();
        }
        AggState::Avg { sum, count } => {
            *sum += ctx
                .number(spec.input.as_ref().expect("avg input"), types)
                .to_f64();
            *count += 1;
        }
        AggState::AvgDec { sum, count } => {
            match ctx.number(spec.input.as_ref().expect("avg input"), types) {
                Num::Dec(d) => *sum += d,
                Num::I64(v) => *sum += Decimal::from_int(v),
                Num::F64(v) => *sum += Decimal::from_f64(v),
            }
            *count += 1;
        }
        AggState::Min(best) => {
            let v = ctx.value(spec.input.as_ref().expect("min input"), types);
            if best
                .as_ref()
                .is_none_or(|b| v.total_cmp(b) == Ordering::Less)
            {
                *best = Some(v);
            }
        }
        AggState::Max(best) => {
            let v = ctx.value(spec.input.as_ref().expect("max input"), types);
            if best
                .as_ref()
                .is_none_or(|b| v.total_cmp(b) == Ordering::Greater)
            {
                *best = Some(v);
            }
        }
    }
}

/// Runs an already-built execution state over `root` with morsel-driven
/// parallelism: the probe side is split into morsels per `config`
/// ([`mrq_common::morsel`]) — fixed-size ranges handed out by a shared
/// atomic work-stealing cursor when [`ParallelConfig::stealing`] is on, one
/// static contiguous range per worker otherwise — and dispatched to the
/// persistent worker pool ([`mrq_common::pool::WorkerPool`]); the calling
/// thread participates and no thread is spawned per query. Each morsel runs
/// on a fork
/// of `base` (the already-built join hash tables are shared behind an
/// [`Arc`], so a fork is cheap), and the partial states merge back into
/// `base` **in morsel order** regardless of which worker ran which morsel —
/// preserving source enumeration order for non-sorted outputs and keeping
/// results bit-identical to a sequential run.
///
/// This is the one parallel execution template every engine instantiates:
/// native row stores, managed heap tables and hybrid staged buffers only
/// differ in the `T` they plug in.
pub fn consume_partitioned<'a, T: TableAccess + Sync>(
    mut base: ExecState<'a, T>,
    root: &T,
    config: ParallelConfig,
) -> QueryOutput {
    // Lifecycle control: last cancellation point between the join builds
    // and the probe scan (the scan itself then checks between morsels; the
    // single-range path below runs uninterrupted — documented granularity).
    mrq_common::cancel::checkpoint();
    // Streaming: this runs on the thread driving the query (the one the
    // serving layer installed the stream scope on), so read the sink here,
    // once — workers and forks never consult the thread-local.
    if base.sink.is_none() {
        if let Some(sink) = mrq_common::stream::current() {
            base.attach_stream_sink(sink);
        }
    }
    let (ranges, stealing) = morsel::plan(root.len(), config);
    if ranges.len() <= 1 {
        base.consume(root);
        return base.finish();
    }
    // Streaming: the sink moves from the base to the ordered gather, so
    // forks run sink-free (buffering their morsel's rows) and publication
    // happens only at the in-order frontier — the row sequence the consumer
    // sees is exactly the sequential merge order.
    let sink = base.take_sink();
    let worker = |_: usize, range: Range<usize>| {
        let mut state = base.fork();
        state.consume_range(root, range);
        state
    };
    let max_workers = if stealing {
        config.threads
    } else {
        ranges.len()
    };
    let partials = match &sink {
        Some(sink) => morsel::run_ordered(&ranges, max_workers, worker, |_, partial| {
            partial.flush_rows_to(sink)
        }),
        None if stealing => morsel::steal(&ranges, max_workers, worker),
        None => morsel::scatter(&ranges, worker),
    };
    for partial in partials {
        base.merge(partial);
    }
    base.finish()
}

/// Convenience wrapper: executes a spec in one shot over fully materialised
/// tables. `tables[0]` is the root, `tables[1..]` follow `spec.joins` order.
///
/// Runs on the thread driving the query, so if the serving layer installed
/// a stream scope ([`mrq_common::stream`]) and the shape is streamable,
/// rows are published incrementally at checkpoint cadence; everything not
/// yet published comes back in the returned output as the residual.
pub fn execute_once<T: TableAccess>(
    spec: &QuerySpec,
    params: &[Value],
    tables: &[&T],
    slot_schemas: &[Schema],
) -> Result<QueryOutput> {
    let builds = tables[1..].to_vec();
    let mut state = ExecState::new(spec, params, builds, slot_schemas)?;
    if let Some(sink) = mrq_common::stream::current() {
        state.attach_stream_sink(sink);
    }
    state.consume(tables[0]);
    Ok(state.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::lower;
    use mrq_common::Field;
    use mrq_expr::{canonicalize, col, lam, lit, Query, SourceId};
    use std::collections::HashMap;

    fn sales_schema() -> Schema {
        Schema::new(
            "Sale",
            vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Str),
                Field::new("price", DataType::Decimal),
                Field::new("when", DataType::Date),
            ],
        )
    }

    fn cities_schema() -> Schema {
        Schema::new(
            "City",
            vec![
                Field::new("name", DataType::Str),
                Field::new("country", DataType::Str),
            ],
        )
    }

    fn sales_table() -> ValueTable {
        let rows = vec![
            vec![
                Value::Int64(1),
                Value::str("London"),
                Value::Decimal(Decimal::new(10, 0)),
                Value::Date(Date::from_ymd(1995, 1, 1)),
            ],
            vec![
                Value::Int64(2),
                Value::str("Paris"),
                Value::Decimal(Decimal::new(20, 0)),
                Value::Date(Date::from_ymd(1995, 2, 1)),
            ],
            vec![
                Value::Int64(3),
                Value::str("London"),
                Value::Decimal(Decimal::new(30, 0)),
                Value::Date(Date::from_ymd(1995, 3, 1)),
            ],
            vec![
                Value::Int64(4),
                Value::str("Berlin"),
                Value::Decimal(Decimal::new(40, 0)),
                Value::Date(Date::from_ymd(1995, 4, 1)),
            ],
        ];
        ValueTable::new(sales_schema(), rows)
    }

    fn cities_table() -> ValueTable {
        ValueTable::new(
            cities_schema(),
            vec![
                vec![Value::str("London"), Value::str("UK")],
                vec![Value::str("Paris"), Value::str("FR")],
                vec![Value::str("Berlin"), Value::str("DE")],
            ],
        )
    }

    fn catalog() -> HashMap<SourceId, Schema> {
        let mut map = HashMap::new();
        map.insert(SourceId(0), sales_schema());
        map.insert(SourceId(1), cities_schema());
        map
    }

    #[test]
    fn filter_and_project() {
        let q = Query::from_source(SourceId(0))
            .where_(lam(
                "s",
                Expr::binary(BinaryOp::Eq, col("s", "city"), lit("London")),
            ))
            .select(lam("s", col("s", "price")))
            .into_expr();
        use mrq_expr::Expr;
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let table = sales_table();
        let out = execute_once(&spec, &canon.params, &[&table], &[sales_schema()]).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0], vec![Value::Decimal(Decimal::new(10, 0))]);
        assert_eq!(out.rows[1], vec![Value::Decimal(Decimal::new(30, 0))]);
    }

    use mrq_expr::Expr;

    #[test]
    fn group_by_city_with_sum_and_count() {
        let q = Query::from_source(SourceId(0))
            .group_by(lam("s", col("s", "city")))
            .select(lam(
                "g",
                Expr::Constructor {
                    name: "R".into(),
                    fields: vec![
                        (
                            "city".into(),
                            Expr::member(Expr::member(mrq_expr::var("g"), "Key"), "city"),
                        ),
                        (
                            "total".into(),
                            mrq_expr::builder::agg(
                                mrq_expr::AggFunc::Sum,
                                "g",
                                Some(lam("x", col("x", "price"))),
                            ),
                        ),
                        (
                            "n".into(),
                            mrq_expr::builder::agg(mrq_expr::AggFunc::Count, "g", None),
                        ),
                    ],
                },
            ))
            .order_by(lam("r", col("r", "city")))
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let table = sales_table();
        let out = execute_once(&spec, &canon.params, &[&table], &[sales_schema()]).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert_eq!(
            out.rows[1],
            vec![
                Value::str("London"),
                Value::Decimal(Decimal::new(40, 0)),
                Value::Int64(2)
            ]
        );
    }

    #[test]
    fn join_sales_to_cities() {
        let q = Query::from_source(SourceId(0))
            .join_query(
                Query::from_source(SourceId(1)).where_(lam(
                    "c",
                    Expr::binary(BinaryOp::Ne, col("c", "country"), lit("DE")),
                )),
                lam("s", col("s", "city")),
                lam("c", col("c", "name")),
                lam(
                    "s",
                    lam(
                        "c",
                        Expr::Constructor {
                            name: "SC".into(),
                            fields: vec![
                                ("id".into(), col("s", "id")),
                                ("country".into(), col("c", "country")),
                            ],
                        },
                    ),
                ),
            )
            .order_by(lam("r", col("r", "id")))
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let sales = sales_table();
        let cities = cities_table();
        let out = execute_once(
            &spec,
            &canon.params,
            &[&sales, &cities],
            &[sales_schema(), cities_schema()],
        )
        .unwrap();
        // Berlin sale is filtered out by the build-side filter.
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[0], vec![Value::Int64(1), Value::str("UK")]);
        assert_eq!(out.rows[2], vec![Value::Int64(3), Value::str("UK")]);
    }

    #[test]
    fn sort_descending_with_take() {
        let q = Query::from_source(SourceId(0))
            .order_by_desc(lam("s", col("s", "price")))
            .select(lam("s", col("s", "id")))
            .take(2)
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let table = sales_table();
        let out = execute_once(&spec, &canon.params, &[&table], &[sales_schema()]).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int64(4)], vec![Value::Int64(3)]]);
        // The hidden sort column is stripped from the output.
        assert_eq!(out.schema.len(), 1);
    }

    #[test]
    fn buffered_consumption_matches_one_shot() {
        let q = Query::from_source(SourceId(0))
            .group_by(lam("s", col("s", "city")))
            .select(lam(
                "g",
                Expr::Constructor {
                    name: "R".into(),
                    fields: vec![
                        (
                            "city".into(),
                            Expr::member(Expr::member(mrq_expr::var("g"), "Key"), "city"),
                        ),
                        (
                            "total".into(),
                            mrq_expr::builder::agg(
                                mrq_expr::AggFunc::Sum,
                                "g",
                                Some(lam("x", col("x", "price"))),
                            ),
                        ),
                    ],
                },
            ))
            .order_by(lam("r", col("r", "city")))
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let table = sales_table();
        let one_shot = execute_once(&spec, &canon.params, &[&table], &[sales_schema()]).unwrap();

        // Split the probe side into two chunks and consume them separately.
        let rows = table.rows().to_vec();
        let chunk1 = ValueTable::new(sales_schema(), rows[..2].to_vec());
        let chunk2 = ValueTable::new(sales_schema(), rows[2..].to_vec());
        let mut state = ExecState::new(&spec, &canon.params, vec![], &[sales_schema()]).unwrap();
        state.consume(&chunk1);
        state.consume(&chunk2);
        let buffered = state.finish();
        assert_eq!(one_shot, buffered);
    }

    #[test]
    fn whole_query_count() {
        let q = Query::from_source(SourceId(0)).count().into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let table = sales_table();
        let out = execute_once(&spec, &canon.params, &[&table], &[sales_schema()]).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int64(4)]]);
    }

    #[test]
    fn topn_buffer_matches_stable_sort_then_truncate() {
        let sort = vec![
            SortKeySpec {
                output_col: 0,
                descending: false,
            },
            SortKeySpec {
                output_col: 1,
                descending: true,
            },
        ];
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for i in 0..200i64 {
            rows.push(vec![
                Value::Int64(i % 7),
                Value::Int64(i % 13),
                Value::Int64(i),
            ]);
        }
        let mut topn = TopN::new(25, sort.clone());
        for row in rows.clone() {
            topn.offer(row);
        }
        let fused = topn.into_sorted_rows();

        let mut reference = rows;
        reference.sort_by(|a, b| {
            for key in &sort {
                let ord = a[key.output_col].total_cmp(&b[key.output_col]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        reference.truncate(25);
        assert_eq!(fused, reference);
    }

    #[test]
    fn topn_with_zero_limit_retains_nothing() {
        let mut topn = TopN::new(
            0,
            vec![SortKeySpec {
                output_col: 0,
                descending: false,
            }],
        );
        topn.offer(vec![Value::Int64(1)]);
        assert!(topn.is_empty());
        assert_eq!(topn.offered(), 1);
    }

    #[test]
    fn fused_order_by_take_matches_unfused_execution() {
        let q = Query::from_source(SourceId(0))
            .order_by_desc(lam("s", col("s", "price")))
            .select(lam("s", col("s", "id")))
            .take(2)
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let table = sales_table();

        let mut fused = ExecState::new(&spec, &canon.params, vec![], &[sales_schema()]).unwrap();
        assert!(fused.topn_fused());
        fused.consume(&table);
        let fused_out = fused.finish();

        let mut unfused = ExecState::new(&spec, &canon.params, vec![], &[sales_schema()]).unwrap();
        unfused.disable_topn_fusion();
        assert!(!unfused.topn_fused());
        unfused.consume(&table);
        let unfused_out = unfused.finish();

        assert_eq!(fused_out, unfused_out);
        assert_eq!(
            fused_out.rows,
            vec![vec![Value::Int64(4)], vec![Value::Int64(3)]]
        );
    }

    #[test]
    fn merged_partial_states_match_sequential_execution_for_grouping() {
        let q = Query::from_source(SourceId(0))
            .group_by(lam("s", col("s", "city")))
            .select(lam(
                "g",
                Expr::Constructor {
                    name: "R".into(),
                    fields: vec![
                        (
                            "city".into(),
                            Expr::member(Expr::member(mrq_expr::var("g"), "Key"), "city"),
                        ),
                        (
                            "total".into(),
                            mrq_expr::builder::agg(
                                mrq_expr::AggFunc::Sum,
                                "g",
                                Some(lam("x", col("x", "price"))),
                            ),
                        ),
                        (
                            "avg".into(),
                            mrq_expr::builder::agg(
                                mrq_expr::AggFunc::Average,
                                "g",
                                Some(lam("x", col("x", "price"))),
                            ),
                        ),
                        (
                            "n".into(),
                            mrq_expr::builder::agg(mrq_expr::AggFunc::Count, "g", None),
                        ),
                    ],
                },
            ))
            .order_by(lam("r", col("r", "city")))
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let table = sales_table();
        let sequential = execute_once(&spec, &canon.params, &[&table], &[sales_schema()]).unwrap();

        let mut left = ExecState::new(&spec, &canon.params, vec![], &[sales_schema()]).unwrap();
        left.consume_range(&table, 0..2);
        let mut right = ExecState::new(&spec, &canon.params, vec![], &[sales_schema()]).unwrap();
        right.consume_range(&table, 2..table.len());
        left.merge(right);
        assert_eq!(left.consumed_rows(), 4);
        assert_eq!(left.finish(), sequential);
    }

    #[test]
    fn merged_plain_states_preserve_row_order() {
        let q = Query::from_source(SourceId(0))
            .select(lam("s", col("s", "id")))
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let table = sales_table();
        let mut left = ExecState::new(&spec, &canon.params, vec![], &[sales_schema()]).unwrap();
        left.consume_range(&table, 0..1);
        let mut right = ExecState::new(&spec, &canon.params, vec![], &[sales_schema()]).unwrap();
        right.consume_range(&table, 1..table.len());
        left.merge(right);
        let out = left.finish();
        assert_eq!(
            out.rows,
            (1..=4).map(|i| vec![Value::Int64(i)]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn indexed_join_matches_built_hash_table() {
        // Join sales to cities on the city name is a string key, which
        // indexes do not support; join on a synthetic integer key instead by
        // using the sales id against itself through a value table.
        let ids_schema = Schema::new(
            "Ids",
            vec![
                Field::new("key", DataType::Int64),
                Field::new("tag", DataType::Int64),
            ],
        );
        let ids = ValueTable::new(
            ids_schema.clone(),
            (1..=4)
                .map(|i| vec![Value::Int64(i), Value::Int64(i * 100)])
                .collect(),
        );
        let q = Query::from_source(SourceId(0))
            .join_query(
                Query::from_source(SourceId(1)),
                lam("s", col("s", "id")),
                lam("t", col("t", "key")),
                lam(
                    "s",
                    lam(
                        "t",
                        Expr::Constructor {
                            name: "ST".into(),
                            fields: vec![
                                ("id".into(), col("s", "id")),
                                ("tag".into(), col("t", "tag")),
                            ],
                        },
                    ),
                ),
            )
            .order_by(lam("r", col("r", "id")))
            .into_expr();
        let canon = canonicalize(q);
        let mut cat = catalog();
        cat.insert(SourceId(1), ids_schema.clone());
        let spec = lower(&canon, &cat).unwrap();
        let sales = sales_table();

        let reference = execute_once(
            &spec,
            &canon.params,
            &[&sales, &ids],
            &[sales_schema(), ids_schema.clone()],
        )
        .unwrap();

        // Build the index over the `key` column once, then execute with it.
        let mut index = JoinIndex::new();
        for row in 0..ids.len() {
            index.insert(ids.get_i64(row, 0) as u64, row);
        }
        assert_eq!(index.len(), 4);
        assert_eq!(index.distinct_keys(), 4);
        let mut state = ExecState::new_with_indexes(
            &spec,
            &canon.params,
            vec![&ids],
            &[sales_schema(), ids_schema],
            &[Some(&index)],
        )
        .unwrap();
        state.consume(&sales);
        assert_eq!(state.finish(), reference);
    }

    #[test]
    fn index_with_build_filters_is_rejected() {
        let q = Query::from_source(SourceId(0))
            .join_query(
                Query::from_source(SourceId(1)).where_(lam(
                    "c",
                    Expr::binary(BinaryOp::Ne, col("c", "country"), lit("DE")),
                )),
                lam("s", col("s", "city")),
                lam("c", col("c", "name")),
                lam(
                    "s",
                    lam(
                        "c",
                        Expr::Constructor {
                            name: "SC".into(),
                            fields: vec![("id".into(), col("s", "id"))],
                        },
                    ),
                ),
            )
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let cities = cities_table();
        let index = JoinIndex::new();
        let err = ExecState::new_with_indexes(
            &spec,
            &canon.params,
            vec![&cities],
            &[sales_schema(), cities_schema()],
            &[Some(&index)],
        )
        .err()
        .expect("filtered build sides cannot use an index");
        assert!(matches!(err, MrqError::Internal(_)));
    }

    #[test]
    fn partitioned_parallel_build_matches_sequential_build() {
        // Integer build keys with heavy duplication: the hash-partitioned
        // parallel build must produce identical per-key row lists (ascending
        // row order), so the joined output is bit-identical.
        let ids_schema = Schema::new(
            "Ids",
            vec![
                Field::new("key", DataType::Int64),
                Field::new("tag", DataType::Int64),
            ],
        );
        let ids = ValueTable::new(
            ids_schema.clone(),
            (0..600i64)
                .map(|i| vec![Value::Int64(i % 50), Value::Int64(i)])
                .collect(),
        );
        let big_sales_schema = Schema::new(
            "Sale",
            vec![
                Field::new("id", DataType::Int64),
                Field::new("key", DataType::Int64),
            ],
        );
        let sales = ValueTable::new(
            big_sales_schema.clone(),
            (0..2_000i64)
                .map(|i| vec![Value::Int64(i), Value::Int64(i % 64)])
                .collect(),
        );
        let q = Query::from_source(SourceId(0))
            .join_query(
                Query::from_source(SourceId(1)),
                lam("s", col("s", "key")),
                lam("t", col("t", "key")),
                lam(
                    "s",
                    lam(
                        "t",
                        Expr::Constructor {
                            name: "ST".into(),
                            fields: vec![
                                ("id".into(), col("s", "id")),
                                ("tag".into(), col("t", "tag")),
                            ],
                        },
                    ),
                ),
            )
            .into_expr();
        let canon = canonicalize(q);
        let mut cat = HashMap::new();
        cat.insert(SourceId(0), big_sales_schema.clone());
        cat.insert(SourceId(1), ids_schema.clone());
        let spec = lower(&canon, &cat).unwrap();
        let schemas = [big_sales_schema, ids_schema];

        let reference = execute_once(&spec, &canon.params, &[&sales, &ids], &schemas).unwrap();
        for threads in [2usize, 8] {
            for stealing in [false, true] {
                let config = mrq_common::ParallelConfig {
                    threads,
                    min_rows_per_thread: 32,
                    ..mrq_common::ParallelConfig::default()
                }
                .with_morsel_rows(64)
                .with_stealing(stealing);
                let state = ExecState::new_parallel(
                    &spec,
                    &canon.params,
                    vec![&ids],
                    &schemas,
                    &[None],
                    config,
                )
                .unwrap();
                let out = consume_partitioned(state, &sales, config);
                assert_eq!(out, reference, "{threads} threads, stealing={stealing}");
            }
        }
    }

    #[test]
    fn string_build_keys_fall_back_to_the_sequential_build() {
        // A string join key must not take the partitioned path (interner ids
        // are first-seen-ordered); new_parallel falls back and matches.
        let q = Query::from_source(SourceId(0))
            .join_query(
                Query::from_source(SourceId(1)),
                lam("s", col("s", "city")),
                lam("c", col("c", "name")),
                lam(
                    "s",
                    lam(
                        "c",
                        Expr::Constructor {
                            name: "SC".into(),
                            fields: vec![
                                ("id".into(), col("s", "id")),
                                ("country".into(), col("c", "country")),
                            ],
                        },
                    ),
                ),
            )
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let sales = sales_table();
        let cities = cities_table();
        let schemas = [sales_schema(), cities_schema()];
        let reference = execute_once(&spec, &canon.params, &[&sales, &cities], &schemas).unwrap();
        let config = mrq_common::ParallelConfig {
            threads: 8,
            min_rows_per_thread: 1,
            ..mrq_common::ParallelConfig::default()
        };
        let state = ExecState::new_parallel(
            &spec,
            &canon.params,
            vec![&cities],
            &schemas,
            &[None],
            config,
        )
        .unwrap();
        let out = consume_partitioned(state, &sales, config);
        assert_eq!(out, reference);
    }

    #[test]
    fn sharded_join_index_round_trips() {
        let mut shards = vec![mrq_common::hash::FxHashMap::default(); 4];
        for key in 0..1_000u64 {
            let shard = JoinIndex::shard_index(key, 2);
            assert!(shard < 4);
            shards[shard]
                .entry(key)
                .or_insert_with(Vec::new)
                .push(key as usize);
        }
        let index = JoinIndex::from_shards(shards);
        assert_eq!(index.len(), 1_000);
        assert_eq!(index.distinct_keys(), 1_000);
        assert_eq!(index.shard_count(), 4);
        for key in 0..1_000u64 {
            assert_eq!(index.get(key), Some(&[key as usize][..]));
        }
        assert_eq!(index.get(5_000), None);
        // The single-shard (sequentially inserted) index agrees.
        let mut sequential = JoinIndex::new();
        for key in 0..1_000u64 {
            sequential.insert(key, key as usize);
        }
        assert_eq!(sequential.shard_count(), 1);
        for key in 0..1_000u64 {
            assert_eq!(sequential.get(key), index.get(key));
        }
    }

    #[test]
    fn string_predicates_evaluate() {
        let q = Query::from_source(SourceId(0))
            .where_(lam(
                "s",
                mrq_expr::str_method(
                    mrq_expr::QueryMethod::EndsWith,
                    col("s", "city"),
                    lit("don"),
                ),
            ))
            .count()
            .into_expr();
        let canon = canonicalize(q);
        let spec = lower(&canon, &catalog()).unwrap();
        let table = sales_table();
        let out = execute_once(&spec, &canon.params, &[&table], &[sales_schema()]).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int64(2)]]);
    }
}
