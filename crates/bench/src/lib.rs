//! Benchmark harness: shared setup plus one function per paper figure/table.
//!
//! The `figures` binary (`cargo run -p mrq-bench --release --bin figures -- all`)
//! prints every series; the Criterion benches under `benches/` wrap the same
//! functions for statistically sound timing of individual points.
//!
//! Scale factor: the paper uses TPC-H SF 1 (≈6 M lineitem rows). The harness
//! defaults to a much smaller factor so a full reproduction run finishes on
//! laptop hardware; the factor is printed with every series and can be
//! overridden with the `MRQ_SF` environment variable. Relative behaviour —
//! which strategy wins and by roughly how much — is what the figures compare.

#![warn(missing_docs)]

use mrq_cachesim::CacheSim;
use mrq_codegen::exec::{QueryOutput, ValueTable};
use mrq_codegen::spec::{lower, QuerySpec};
use mrq_common::profile::CostBreakdown;
use mrq_common::{ParallelConfig, Schema, WorkStats};
use mrq_core::{Provider, QueryOptions, Strategy};
use mrq_dbms::ColumnTable;
use mrq_engine_csharp::{HeapTable, TracedHeapTable};
use mrq_engine_hybrid::{HybridConfig, Materialization, TransferPolicy};
use mrq_engine_native::RowStore;
use mrq_expr::{canonicalize, CanonicalQuery, Expr, SourceId};
use mrq_mheap::ListId;
use mrq_tpch::gen::{GenConfig, TpchData};
use mrq_tpch::load::{schema_of, value_rows, HeapDataset, TABLE_NAMES};
use mrq_tpch::queries;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The strategies compared throughout the evaluation, in the paper's order.
pub const STRATEGY_NAMES: [&str; 5] = [
    "LINQ-to-Objects",
    "C# Code",
    "C Code",
    "C#/C Code",
    "C#/C Code (Buffer)",
];

/// Default scale factor for harness runs (overridable via `MRQ_SF`).
pub fn default_scale_factor() -> f64 {
    std::env::var("MRQ_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01)
}

/// All data representations of one TPC-H dataset: managed heap objects,
/// native row stores and the comparators' column tables.
pub struct Workbench {
    /// The generated base data.
    pub data: TpchData,
    /// Managed-heap representation (baseline, C#, hybrid strategies).
    pub heap: HeapDataset,
    /// Native row stores per table (the §5 arrays of structs).
    pub stores: HashMap<&'static str, RowStore>,
    /// Column tables per table (Table 1 comparators).
    pub columns: HashMap<&'static str, ColumnTable>,
    /// Scale factor used.
    pub scale_factor: f64,
}

impl Workbench {
    /// Generates and loads a dataset at the given scale factor.
    pub fn new(scale_factor: f64) -> Workbench {
        let data = TpchData::generate(GenConfig::scale(scale_factor));
        let heap = HeapDataset::load(&data);
        let mut stores = HashMap::new();
        let mut columns = HashMap::new();
        for table in TABLE_NAMES {
            let schema = schema_of(table);
            let rows = value_rows(&data, table);
            stores.insert(table, RowStore::from_rows(schema.clone(), &rows));
            let names: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
            columns.insert(table, ColumnTable::from_value_rows(&names, &rows));
        }
        Workbench {
            data,
            heap,
            stores,
            columns,
            scale_factor,
        }
    }

    /// A catalog mapping every TPC-H source id to its schema (plus the Q2
    /// inner-result schema when provided).
    pub fn catalog(&self, extra: Option<(SourceId, Schema)>) -> HashMap<SourceId, Schema> {
        let mut map = HashMap::new();
        for (i, table) in TABLE_NAMES.iter().enumerate() {
            map.insert(SourceId(i as u32), schema_of(table));
        }
        if let Some((id, schema)) = extra {
            map.insert(id, schema);
        }
        map
    }

    /// Lowers a workload expression against the TPC-H catalog.
    pub fn lower(&self, expr: Expr) -> (CanonicalQuery, QuerySpec) {
        let canon = canonicalize(expr);
        let spec = lower(&canon, &self.catalog(None)).expect("workload must lower");
        (canon, spec)
    }

    /// Managed tables (root first, then join build sides) for a spec.
    pub fn heap_tables(&self, spec: &QuerySpec) -> Vec<HeapTable<'_>> {
        let mut sources = vec![spec.root];
        sources.extend(spec.joins.iter().map(|j| j.source));
        sources
            .into_iter()
            .map(|s| {
                let table = queries::source_table(s);
                HeapTable::new(&self.heap.heap, self.heap.list(table), schema_of(table))
            })
            .collect()
    }

    fn list_of(&self, source: SourceId) -> ListId {
        self.heap.list(queries::source_table(source))
    }

    /// Native row stores (root first, then join build sides) for a spec.
    pub fn row_stores(&self, spec: &QuerySpec) -> Vec<&RowStore> {
        let mut sources = vec![spec.root];
        sources.extend(spec.joins.iter().map(|j| j.source));
        sources
            .into_iter()
            .map(|s| &self.stores[queries::source_table(s)])
            .collect()
    }

    /// Builds a provider with every table bound as a managed collection.
    pub fn managed_provider(&self) -> Provider<'_> {
        let mut provider = Provider::over_heap(&self.heap.heap);
        for (i, table) in TABLE_NAMES.iter().enumerate() {
            provider.bind_managed(
                SourceId(i as u32),
                self.list_of(SourceId(i as u32)),
                schema_of(table),
            );
            let _ = table;
        }
        provider
    }
}

/// Runs one workload with one strategy and returns (elapsed, output).
pub fn run_strategy(
    bench: &Workbench,
    canon: &CanonicalQuery,
    spec: &QuerySpec,
    strategy: Strategy,
) -> (Duration, QueryOutput) {
    match strategy {
        Strategy::CompiledNative => {
            let tables = bench.row_stores(spec);
            let start = Instant::now();
            let out = mrq_engine_native::execute(spec, &canon.params, &tables).expect("native run");
            (start.elapsed(), out)
        }
        Strategy::CompiledNativeParallel(config) => {
            let tables = bench.row_stores(spec);
            let start = Instant::now();
            let out =
                mrq_engine_native::execute_parallel(spec, &canon.params, &tables, &[], config)
                    .expect("parallel native run");
            (start.elapsed(), out)
        }
        Strategy::LinqToObjects | Strategy::CompiledCSharp => {
            let tables = bench.heap_tables(spec);
            let refs: Vec<&HeapTable<'_>> = tables.iter().collect();
            let start = Instant::now();
            let out = match strategy {
                Strategy::LinqToObjects => mrq_engine_linq::execute(spec, &canon.params, &refs),
                _ => mrq_engine_csharp::execute(spec, &canon.params, &refs),
            }
            .expect("managed run");
            (start.elapsed(), out)
        }
        Strategy::Hybrid(config) => {
            let tables = bench.heap_tables(spec);
            let refs: Vec<&HeapTable<'_>> = tables.iter().collect();
            let start = Instant::now();
            let run =
                mrq_engine_hybrid::execute(spec, &canon.params, &refs, config).expect("hybrid run");
            (start.elapsed(), run.output)
        }
    }
}

/// Runs the hybrid strategy and returns its phase breakdown (Figures 8, 10
/// and 12).
pub fn run_hybrid_breakdown(
    bench: &Workbench,
    canon: &CanonicalQuery,
    spec: &QuerySpec,
    config: HybridConfig,
) -> CostBreakdown {
    let tables = bench.heap_tables(spec);
    let refs: Vec<&HeapTable<'_>> = tables.iter().collect();
    mrq_engine_hybrid::execute(spec, &canon.params, &refs, config)
        .expect("hybrid run")
        .breakdown
}

/// The five standard strategies of the figures.
pub fn standard_strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        ("LINQ-to-Objects", Strategy::LinqToObjects),
        ("C# Code", Strategy::CompiledCSharp),
        ("C Code", Strategy::CompiledNative),
        (
            "C#/C Code",
            Strategy::Hybrid(HybridConfig {
                materialization: Materialization::Full,
                transfer: TransferPolicy::Max,
                layout: mrq_engine_hybrid::StagingLayout::RowWise,
                ..HybridConfig::default()
            }),
        ),
        (
            "C#/C Code (Buffer)",
            Strategy::Hybrid(HybridConfig {
                materialization: Materialization::Buffered {
                    rows_per_buffer: 2048,
                },
                transfer: TransferPolicy::Max,
                layout: mrq_engine_hybrid::StagingLayout::RowWise,
                ..HybridConfig::default()
            }),
        ),
    ]
}

/// One measured point of a figure: strategy name, x value (selectivity or
/// query name) and elapsed time.
#[derive(Debug, Clone)]
pub struct Point {
    /// Strategy label.
    pub strategy: String,
    /// X-axis label (selectivity or query).
    pub x: String,
    /// Measured evaluation time.
    pub elapsed: Duration,
    /// Result cardinality (sanity check that every strategy computed the
    /// same thing).
    pub rows: usize,
}

/// Figure 7: the Q1 aggregation over a selection with varying selectivity.
pub fn fig07_aggregation(bench: &Workbench, selectivities: &[f64]) -> Vec<Point> {
    let mut points = Vec::new();
    for &sel in selectivities {
        let cutoff = bench.data.shipdate_for_selectivity(sel);
        let (canon, spec) = bench.lower(queries::q1_with_cutoff(cutoff));
        for (name, strategy) in standard_strategies() {
            let (elapsed, out) = run_strategy(bench, &canon, &spec, strategy);
            points.push(Point {
                strategy: name.to_string(),
                x: format!("{sel:.1}"),
                elapsed,
                rows: out.rows.len(),
            });
        }
    }
    points
}

/// Figure 9: sorting over a selection with varying selectivity. The hybrid
/// variant uses Min transfer (keys + indexes), as in the paper.
pub fn fig09_sort(bench: &Workbench, selectivities: &[f64]) -> Vec<Point> {
    let mut points = Vec::new();
    for &sel in selectivities {
        let cutoff = bench.data.shipdate_for_selectivity(sel);
        let (canon, spec) = bench.lower(queries::sort_micro(cutoff));
        let strategies: Vec<(&str, Strategy)> = vec![
            ("LINQ-to-Objects", Strategy::LinqToObjects),
            ("C# Code", Strategy::CompiledCSharp),
            ("C Code", Strategy::CompiledNative),
            (
                "C#/C Code (Min)",
                Strategy::Hybrid(HybridConfig {
                    materialization: Materialization::Full,
                    transfer: TransferPolicy::Min,
                    layout: mrq_engine_hybrid::StagingLayout::RowWise,
                    ..HybridConfig::default()
                }),
            ),
        ];
        for (name, strategy) in strategies {
            let (elapsed, out) = run_strategy(bench, &canon, &spec, strategy);
            points.push(Point {
                strategy: name.to_string(),
                x: format!("{sel:.1}"),
                elapsed,
                rows: out.rows.len(),
            });
        }
    }
    points
}

/// Figure 11: the Q3 join over selections with varying selectivity, with the
/// four hybrid variants (Min/Max × full/buffered).
pub fn fig11_join(bench: &Workbench, selectivities: &[f64]) -> Vec<Point> {
    let mut points = Vec::new();
    for &sel in selectivities {
        let ship_after = bench.data.shipdate_for_selectivity(1.0 - sel);
        let order_before = bench.data.orderdate_for_selectivity(sel);
        let (canon, spec) = bench.lower(queries::join_micro("BUILDING", ship_after, order_before));
        let mut strategies: Vec<(&str, Strategy)> = vec![
            ("LINQ-to-Objects", Strategy::LinqToObjects),
            ("C# Code", Strategy::CompiledCSharp),
            ("C Code", Strategy::CompiledNative),
        ];
        for (name, materialization) in [
            ("C#/C Code (Max)", Materialization::Full),
            (
                "C#/C Code (Max, Buffer)",
                Materialization::Buffered {
                    rows_per_buffer: 2048,
                },
            ),
        ] {
            strategies.push((
                name,
                Strategy::Hybrid(HybridConfig {
                    materialization,
                    transfer: TransferPolicy::Max,
                    layout: mrq_engine_hybrid::StagingLayout::RowWise,
                    ..HybridConfig::default()
                }),
            ));
        }
        for (name, materialization) in [
            ("C#/C Code (Min)", Materialization::Full),
            (
                "C#/C Code (Min, Buffer)",
                Materialization::Buffered {
                    rows_per_buffer: 2048,
                },
            ),
        ] {
            strategies.push((
                name,
                Strategy::Hybrid(HybridConfig {
                    materialization,
                    transfer: TransferPolicy::Min,
                    layout: mrq_engine_hybrid::StagingLayout::RowWise,
                    ..HybridConfig::default()
                }),
            ));
        }
        for (name, strategy) in strategies {
            let (elapsed, out) = run_strategy(bench, &canon, &spec, strategy);
            points.push(Point {
                strategy: name.to_string(),
                x: format!("{sel:.1}"),
                elapsed,
                rows: out.rows.len(),
            });
        }
    }
    points
}

/// The three TPC-H queries of Figures 13/14 and Table 1, as (name, runner)
/// pairs. Q2 executes its decorrelated two-step plan.
pub fn tpch_query_names() -> [&'static str; 3] {
    ["Q1", "Q2", "Q3"]
}

/// Runs a full TPC-H query (Q1, Q2 or Q3) with a strategy, handling Q2's
/// two-step plan, and returns (elapsed, rows).
pub fn run_tpch_query(bench: &Workbench, query: &str, strategy: Strategy) -> (Duration, usize) {
    match query {
        "Q1" => {
            let (canon, spec) = bench.lower(queries::q1());
            let (d, out) = run_strategy(bench, &canon, &spec, strategy);
            (d, out.rows.len())
        }
        "Q3" => {
            let (canon, spec) = bench.lower(queries::q3());
            let (d, out) = run_strategy(bench, &canon, &spec, strategy);
            (d, out.rows.len())
        }
        "Q2" => {
            let params = queries::Q2Params::default();
            let (inner_canon, inner_spec) = bench.lower(queries::q2_inner(&params));
            let start = Instant::now();
            let (_, inner_out) = run_strategy(bench, &inner_canon, &inner_spec, strategy);
            let inner_table = ValueTable::from_output(inner_out);
            // Outer step: bind the materialised inner result.
            let outer_expr = queries::q2_outer(&params);
            let canon = canonicalize(outer_expr);
            let catalog =
                bench.catalog(Some((queries::SRC_Q2_INNER, inner_table.schema().clone())));
            let spec = lower(&canon, &catalog).expect("q2 outer lowers");
            // The outer query joins against the materialised inner result,
            // which lives outside both the heap and the row stores; run it on
            // value tables regardless of strategy (its cost is dominated by
            // the inner step at every strategy, mirroring the paper's note
            // that Q2 is tiny compared to Q1/Q3).
            let mut tables: Vec<ValueTable> = Vec::new();
            let mut sources = vec![spec.root];
            sources.extend(spec.joins.iter().map(|j| j.source));
            for s in sources {
                if s == queries::SRC_Q2_INNER {
                    tables.push(inner_table.clone());
                } else {
                    let table = queries::source_table(s);
                    tables.push(ValueTable::new(
                        schema_of(table),
                        value_rows(&bench.data, table),
                    ));
                }
            }
            let refs: Vec<&ValueTable> = tables.iter().collect();
            let schemas: Vec<Schema> = tables.iter().map(|t| t.schema().clone()).collect();
            let out = mrq_codegen::exec::execute_once(&spec, &canon.params, &refs, &schemas)
                .expect("q2 outer runs");
            (start.elapsed(), out.rows.len())
        }
        other => panic!("unknown TPC-H query `{other}`"),
    }
}

/// Figure 13: Q1–Q3 evaluation time per strategy (report as % of the
/// baseline).
pub fn fig13_tpch(bench: &Workbench) -> Vec<Point> {
    let mut points = Vec::new();
    for query in tpch_query_names() {
        for (name, strategy) in standard_strategies() {
            let (elapsed, rows) = run_tpch_query(bench, query, strategy);
            points.push(Point {
                strategy: name.to_string(),
                x: query.to_string(),
                elapsed,
                rows,
            });
        }
    }
    points
}

/// Figure 14: last-level cache misses per strategy for Q1 (trace-driven
/// simulation; reported as % of the baseline). Joins are traced on Q3 as
/// well when `include_q3` is set (slower).
pub fn fig14_cache(bench: &Workbench, include_q3: bool) -> Vec<(String, String, u64)> {
    let mut out = Vec::new();
    let mut queries_to_run = vec!["Q1"];
    if include_q3 {
        queries_to_run.push("Q3");
    }
    for query in queries_to_run {
        let expr = match query {
            "Q1" => queries::q1(),
            _ => queries::q3(),
        };
        let (canon, spec) = bench.lower(expr);
        // Managed strategies (LINQ and C#) share the managed access pattern;
        // what differs is how many passes they make. Trace both.
        for (name, strategy) in [
            ("LINQ-to-Objects", Strategy::LinqToObjects),
            ("C# Code", Strategy::CompiledCSharp),
        ] {
            let mut sim = CacheSim::paper_llc();
            {
                let mut sources = vec![spec.root];
                sources.extend(spec.joins.iter().map(|j| j.source));
                // Each table needs its own tracer borrow; trace sequentially
                // by running the query once with tracing on the root table
                // only plus build tables untraced, which captures the
                // dominant traffic (the probe-side scan).
                let root_table = queries::source_table(spec.root);
                let traced_root = HeapTable::new(
                    &bench.heap.heap,
                    bench.heap.list(root_table),
                    schema_of(root_table),
                )
                .with_tracer(&mut sim);
                let mut tables: Vec<TracedHeapTable<'_>> = vec![traced_root];
                for s in &sources[1..] {
                    let table = queries::source_table(*s);
                    tables.push(TracedHeapTable::untraced(HeapTable::new(
                        &bench.heap.heap,
                        bench.heap.list(table),
                        schema_of(table),
                    )));
                }
                let refs: Vec<&TracedHeapTable<'_>> = tables.iter().collect();
                let schemas: Vec<Schema> = tables.iter().map(|t| t.schema().clone()).collect();
                match strategy {
                    Strategy::LinqToObjects => {
                        mrq_engine_linq::execute(&spec, &canon.params, &refs).expect("linq")
                    }
                    _ => mrq_codegen::exec::execute_once(&spec, &canon.params, &refs, &schemas)
                        .expect("csharp"),
                };
            }
            out.push((name.to_string(), query.to_string(), sim.stats().misses));
        }
        // Native strategy: the fused native loop's probe-side footprint is a
        // sequential walk over the referenced columns of the flat row store.
        out.push((
            "C Code".to_string(),
            query.to_string(),
            native_scan_misses(bench, &spec),
        ));
    }
    out
}

/// Simulates the native probe-side scan footprint for Figure 14: sequential
/// reads of every referenced column of every row of the flat row store.
pub fn native_scan_misses(bench: &Workbench, spec: &QuerySpec) -> u64 {
    use mrq_codegen::exec::TableAccess;
    use mrq_common::trace::MemTracer;
    let mut sim = CacheSim::paper_llc();
    let store = &bench.stores[queries::source_table(spec.root)];
    let cols = spec.referenced_columns(0);
    for row in 0..store.len() {
        for &col in &cols {
            sim.access(
                mrq_common::trace::AccessKind::NativeRead,
                store.field_address(row, col),
                8,
            );
        }
    }
    sim.stats().misses
}

/// Table 1: Q1 and Q3 across the DBMS comparators and the provider
/// strategies. Returns (system, query, elapsed).
pub fn table1(bench: &Workbench) -> Vec<(String, String, Duration)> {
    let mut rows = Vec::new();
    let cutoff = mrq_common::Date::from_ymd(1998, 12, 1).add_days(-90);
    let q3_date = mrq_common::Date::from_ymd(1995, 3, 15);
    for query in ["Q1", "Q3"] {
        // Interpreted row-store DBMS (SQL Server 2014 stand-in).
        let start = Instant::now();
        match query {
            "Q1" => {
                mrq_dbms::volcano::q1(&bench.columns["lineitem"], cutoff);
            }
            _ => {
                mrq_dbms::volcano::q3(
                    &bench.columns["customer"],
                    &bench.columns["orders"],
                    &bench.columns["lineitem"],
                    "BUILDING",
                    q3_date,
                );
            }
        }
        rows.push((
            "Interpreted row store (SQL Server-like)".to_string(),
            query.to_string(),
            start.elapsed(),
        ));

        // Compiled row store (Hekaton-like): the native engine.
        let (elapsed, _) = run_tpch_query(bench, query, Strategy::CompiledNative);
        rows.push((
            "Compiled row store (Hekaton-like)".to_string(),
            query.to_string(),
            elapsed,
        ));

        // Vectorised column store (VectorWise-like).
        let start = Instant::now();
        match query {
            "Q1" => {
                mrq_dbms::vector::q1(&bench.columns["lineitem"], cutoff);
            }
            _ => {
                mrq_dbms::vector::q3(
                    &bench.columns["customer"],
                    &bench.columns["orders"],
                    &bench.columns["lineitem"],
                    "BUILDING",
                    q3_date,
                );
            }
        }
        rows.push((
            "Vectorised column store (VectorWise-like)".to_string(),
            query.to_string(),
            start.elapsed(),
        ));

        // LINQ-to-objects and compiled C#/C over application objects.
        let (elapsed, _) = run_tpch_query(bench, query, Strategy::LinqToObjects);
        rows.push(("LINQ-to-objects".to_string(), query.to_string(), elapsed));
        let (elapsed, _) = run_tpch_query(bench, query, Strategy::Hybrid(HybridConfig::default()));
        rows.push(("Compiled C#/C code".to_string(), query.to_string(), elapsed));
    }
    rows
}

/// §7.1 extras: evaluation time as the number of `Sum` aggregates grows while
/// the staged data volume stays constant. Returns (strategy, aggregate count,
/// elapsed, rows).
pub fn agg_extras_aggregate_sweep(bench: &Workbench, counts: &[usize]) -> Vec<Point> {
    let cutoff = bench.data.shipdate_for_selectivity(1.0);
    let mut points = Vec::new();
    for &n in counts {
        let (canon, spec) = bench.lower(queries::aggregation_micro(cutoff, n));
        for (name, strategy) in [
            ("LINQ-to-Objects", Strategy::LinqToObjects),
            ("C# Code", Strategy::CompiledCSharp),
            ("C#/C Code", Strategy::Hybrid(HybridConfig::default())),
        ] {
            let (elapsed, out) = run_strategy(bench, &canon, &spec, strategy);
            points.push(Point {
                strategy: name.to_string(),
                x: format!("{n} aggregates"),
                elapsed,
                rows: out.rows.len(),
            });
        }
    }
    points
}

/// §7.1 extras: buffered staging with different buffer sizes versus full
/// materialisation, plus the staging footprint of each choice.
/// Returns (label, elapsed, staged bytes).
pub fn agg_extras_buffer_sweep(
    bench: &Workbench,
    rows_per_buffer: &[usize],
) -> Vec<(String, Duration, usize)> {
    let cutoff = bench.data.shipdate_for_selectivity(1.0);
    let (canon, spec) = bench.lower(queries::q1_with_cutoff(cutoff));
    let tables = bench.heap_tables(&spec);
    let refs: Vec<&HeapTable<'_>> = tables.iter().collect();
    let mut out = Vec::new();
    for &rows in rows_per_buffer {
        let start = Instant::now();
        let run = mrq_engine_hybrid::execute(
            &spec,
            &canon.params,
            &refs,
            HybridConfig {
                materialization: Materialization::Buffered {
                    rows_per_buffer: rows,
                },
                transfer: TransferPolicy::Max,
                layout: mrq_engine_hybrid::StagingLayout::RowWise,
                ..HybridConfig::default()
            },
        )
        .expect("buffered run");
        out.push((
            format!("buffered ({rows} rows)"),
            start.elapsed(),
            run.staged_bytes,
        ));
    }
    let start = Instant::now();
    let run = mrq_engine_hybrid::execute(&spec, &canon.params, &refs, HybridConfig::default())
        .expect("full run");
    out.push((
        "full materialisation".to_string(),
        start.elapsed(),
        run.staged_bytes,
    ));
    out
}

/// §6.1.1 staging layouts: the same Q1 aggregation staged row-wise (arrays of
/// generated structs) versus columnar (arrays of primitives). Returns
/// (label, elapsed, staged bytes).
pub fn staging_layout_comparison(bench: &Workbench) -> Vec<(String, Duration, usize)> {
    let cutoff = bench.data.shipdate_for_selectivity(1.0);
    let (canon, spec) = bench.lower(queries::q1_with_cutoff(cutoff));
    let tables = bench.heap_tables(&spec);
    let refs: Vec<&HeapTable<'_>> = tables.iter().collect();
    let mut out = Vec::new();
    for (label, layout) in [
        (
            "row-wise staging",
            mrq_engine_hybrid::StagingLayout::RowWise,
        ),
        (
            "columnar staging",
            mrq_engine_hybrid::StagingLayout::Columnar,
        ),
    ] {
        let config = HybridConfig {
            materialization: Materialization::Full,
            transfer: TransferPolicy::Max,
            layout,
            ..HybridConfig::default()
        };
        let start = Instant::now();
        let run =
            mrq_engine_hybrid::execute(&spec, &canon.params, &refs, config).expect("hybrid run");
        out.push((label.to_string(), start.elapsed(), run.staged_bytes));
    }
    out
}

/// Parallel-execution extension: Q1 aggregation over the native row store
/// with a growing worker count. Returns (threads, elapsed, rows).
pub fn parallel_sweep(bench: &Workbench, threads: &[usize]) -> Vec<(usize, Duration, usize)> {
    let (canon, spec) = bench.lower(queries::q1());
    let tables = bench.row_stores(&spec);
    threads
        .iter()
        .map(|&t| {
            let config = mrq_engine_native::ParallelConfig {
                threads: t,
                min_rows_per_thread: 1024,
                ..mrq_engine_native::ParallelConfig::default()
            };
            let start = Instant::now();
            let out =
                mrq_engine_native::execute_parallel(&spec, &canon.params, &tables, &[], config)
                    .expect("parallel run");
            (t, start.elapsed(), out.rows.len())
        })
        .collect()
}

/// Parallel-execution extension, cross-strategy: the Q1 aggregation at each
/// thread count for every strategy with a parallel path — compiled C# over
/// managed objects, compiled C over the native row store, and the hybrid
/// strategy under full and buffered staging. The x label is the thread
/// count; the 1-thread point of each strategy is its own baseline.
pub fn parallel_strategy_sweep(bench: &Workbench, threads: &[usize]) -> Vec<Point> {
    use mrq_common::ParallelConfig;
    let (canon, spec) = bench.lower(queries::q1());
    let stores = bench.row_stores(&spec);
    let heap_tables = bench.heap_tables(&spec);
    let heap_refs: Vec<&HeapTable<'_>> = heap_tables.iter().collect();
    let mut points = Vec::new();
    for &t in threads {
        let config = ParallelConfig {
            threads: t,
            min_rows_per_thread: 1024,
            ..ParallelConfig::default()
        };
        let mut record = |strategy: &str, elapsed: Duration, rows: usize| {
            points.push(Point {
                strategy: strategy.to_string(),
                x: format!("{t} threads"),
                elapsed,
                rows,
            });
        };
        let start = Instant::now();
        let out = mrq_engine_csharp::execute_parallel(&spec, &canon.params, &heap_refs, config)
            .expect("parallel C# run");
        record("C# Code", start.elapsed(), out.rows.len());

        let start = Instant::now();
        let out = mrq_engine_native::execute_parallel(&spec, &canon.params, &stores, &[], config)
            .expect("parallel native run");
        record("C Code", start.elapsed(), out.rows.len());

        for (name, base) in [
            ("C#/C Code", HybridConfig::default()),
            ("C#/C Code (Buffer)", HybridConfig::buffered()),
        ] {
            let start = Instant::now();
            let run =
                mrq_engine_hybrid::execute(&spec, &canon.params, &heap_refs, base.parallel(config))
                    .expect("parallel hybrid run");
            record(name, start.elapsed(), run.output.rows.len());
        }
    }
    points
}

/// Extension ablations beyond the paper's figures: each entry is
/// (claim, baseline elapsed, improved elapsed). Covers OrderBy+Take fusion,
/// join indexes, the heuristic optimizer and result recycling.
pub fn extension_claims(bench: &Workbench) -> Vec<(String, Duration, Duration)> {
    let mut out = Vec::new();

    // Top-N fusion: sort the filtered lineitem by price and keep the top 10,
    // with and without the fused bounded buffer.
    let cutoff = bench.data.shipdate_for_selectivity(1.0);
    let (canon, spec) = bench.lower(queries::sort_topn_micro(cutoff, 10));
    let tables = bench.row_stores(&spec);
    let schemas: Vec<Schema> = tables.iter().map(|t| t.schema().clone()).collect();
    let run_native = |fused: bool| {
        let start = Instant::now();
        let mut state =
            mrq_codegen::exec::ExecState::new(&spec, &canon.params, tables[1..].to_vec(), &schemas)
                .expect("state");
        if !fused {
            state.disable_topn_fusion();
        }
        state.consume(tables[0]);
        let rows = state.finish().rows.len();
        (start.elapsed(), rows)
    };
    let (unfused, rows_a) = run_native(false);
    let (fused, rows_b) = run_native(true);
    assert_eq!(rows_a, rows_b);
    out.push((
        "OrderBy+Take fusion (top-10 of sorted lineitem, native)".to_string(),
        unfused,
        fused,
    ));

    // Join index: the Q3 join probe with per-query hash build vs a pre-built
    // index on orders(o_orderkey) and customer(c_custkey). The naive shape is
    // used so the build sides are unfiltered (a filtered build side cannot
    // use the index), which is exactly when an index pays off.
    let date = mrq_common::Date::from_ymd(1995, 3, 15);
    let naive = queries::join_micro_naive("BUILDING", date, date);
    let optimized_expr =
        mrq_expr::optimize(naive.clone(), mrq_expr::OptimizerConfig::disabled()).expr;
    let (canon_j, spec_j) = bench.lower(optimized_expr);
    let tables_j = bench.row_stores(&spec_j);
    let start = Instant::now();
    let baseline = mrq_engine_native::execute(&spec_j, &canon_j.params, &tables_j).expect("join");
    let hash_build = start.elapsed();
    let orders_index =
        mrq_engine_native::HashIndex::build(&bench.stores["orders"], 0).expect("orders index");
    let customer_index =
        mrq_engine_native::HashIndex::build(&bench.stores["customer"], 0).expect("customer index");
    let start = Instant::now();
    let indexed = mrq_engine_native::execute_indexed(
        &spec_j,
        &canon_j.params,
        &tables_j,
        &[Some(&orders_index), Some(&customer_index)],
    )
    .expect("indexed join");
    let with_index = start.elapsed();
    assert_eq!(baseline.rows.len(), indexed.rows.len());
    out.push((
        "pre-built join indexes vs per-query hash build (Q3 join)".to_string(),
        hash_build,
        with_index,
    ));

    // Heuristic optimizer: the naive Q3 join (selections written after the
    // joins) evaluated as written vs after selection push-down.
    let (canon_n, spec_n) = bench.lower(naive.clone());
    let (canon_o, spec_o) =
        bench.lower(mrq_expr::optimize(naive, mrq_expr::OptimizerConfig::default()).expr);
    let (as_written, a) = run_strategy(bench, &canon_n, &spec_n, Strategy::CompiledCSharp);
    let (pushed_down, b) = run_strategy(bench, &canon_o, &spec_o, Strategy::CompiledCSharp);
    assert_eq!(a.rows.len(), b.rows.len());
    out.push((
        "selection push-down by the optimizer (naive Q3 join, compiled C#)".to_string(),
        as_written,
        pushed_down,
    ));

    // Result recycling: repeated parameter-identical Q1 through the provider.
    let provider = bench.managed_provider();
    let mut provider = provider;
    provider.set_result_recycling(true);
    let start = Instant::now();
    provider
        .execute(queries::q1(), Strategy::CompiledCSharp)
        .expect("first run");
    let cold = start.elapsed();
    let start = Instant::now();
    provider
        .execute(queries::q1(), Strategy::CompiledCSharp)
        .expect("recycled run");
    let warm = start.elapsed();
    out.push((
        "result recycling (repeated TPC-H Q1, compiled C#)".to_string(),
        cold,
        warm,
    ));
    out
}

/// Figure 14 with the full hierarchy model: per strategy and query, the
/// L1 / L2 / LLC miss counts of the probe-side access stream.
pub fn fig14_hierarchy(
    bench: &Workbench,
    include_q3: bool,
) -> Vec<(
    String,
    String,
    mrq_cachesim::LevelStats,
    mrq_cachesim::LevelStats,
    mrq_cachesim::LevelStats,
)> {
    use mrq_cachesim::CacheHierarchy;
    let mut out = Vec::new();
    let mut queries_to_run = vec!["Q1"];
    if include_q3 {
        queries_to_run.push("Q3");
    }
    for query in queries_to_run {
        let expr = match query {
            "Q1" => queries::q1(),
            _ => queries::q3(),
        };
        let (canon, spec) = bench.lower(expr);
        for (name, strategy) in [
            ("LINQ-to-Objects", Strategy::LinqToObjects),
            ("C# Code", Strategy::CompiledCSharp),
        ] {
            let mut sim = CacheHierarchy::paper_machine();
            {
                let root_table = queries::source_table(spec.root);
                let traced_root = HeapTable::new(
                    &bench.heap.heap,
                    bench.heap.list(root_table),
                    schema_of(root_table),
                )
                .with_tracer(&mut sim);
                let mut tables: Vec<TracedHeapTable<'_>> = vec![traced_root];
                let mut sources = vec![spec.root];
                sources.extend(spec.joins.iter().map(|j| j.source));
                for s in &sources[1..] {
                    let table = queries::source_table(*s);
                    tables.push(TracedHeapTable::untraced(HeapTable::new(
                        &bench.heap.heap,
                        bench.heap.list(table),
                        schema_of(table),
                    )));
                }
                let refs: Vec<&TracedHeapTable<'_>> = tables.iter().collect();
                let schemas: Vec<Schema> = tables.iter().map(|t| t.schema().clone()).collect();
                match strategy {
                    Strategy::LinqToObjects => {
                        mrq_engine_linq::execute(&spec, &canon.params, &refs).expect("linq")
                    }
                    _ => mrq_codegen::exec::execute_once(&spec, &canon.params, &refs, &schemas)
                        .expect("csharp"),
                };
            }
            out.push((
                name.to_string(),
                query.to_string(),
                sim.l1(),
                sim.l2(),
                sim.llc(),
            ));
        }
        // Native: sequential scan over the referenced columns of the flat
        // rows.
        let mut sim = CacheHierarchy::paper_machine();
        {
            use mrq_codegen::exec::TableAccess;
            use mrq_common::trace::MemTracer;
            let store = &bench.stores[queries::source_table(spec.root)];
            let cols = spec.referenced_columns(0);
            for row in 0..store.len() {
                for &col in &cols {
                    sim.access(
                        mrq_common::trace::AccessKind::NativeRead,
                        store.field_address(row, col),
                        8,
                    );
                }
            }
        }
        out.push((
            "C Code".to_string(),
            query.to_string(),
            sim.l1(),
            sim.l2(),
            sim.llc(),
        ));
    }
    out
}

/// The §2.3 micro-claims: fused vs per-aggregate-pass aggregation, and the
/// selection push-down of Q3. Returns (claim, baseline, improved).
pub fn micro_claims(bench: &Workbench) -> Vec<(String, Duration, Duration)> {
    let mut out = Vec::new();
    // Claim: computing all aggregates in one pass over each group is faster
    // than one pass per aggregate (LINQ vs compiled C# on Q1's aggregation).
    let (canon, spec) = bench.lower(queries::q1());
    let (linq, _) = run_strategy(bench, &canon, &spec, Strategy::LinqToObjects);
    let (fused, _) = run_strategy(bench, &canon, &spec, Strategy::CompiledCSharp);
    out.push((
        "single-pass aggregation vs per-aggregate passes (Q1)".to_string(),
        linq,
        fused,
    ));
    // Claim: pushing the selections below the join improves Q3.
    let date = mrq_common::Date::from_ymd(1995, 3, 15);
    let pushed = queries::join_micro("BUILDING", date, date);
    let (canon_p, spec_p) = bench.lower(pushed);
    let (with_pushdown, _) = run_strategy(bench, &canon_p, &spec_p, Strategy::CompiledCSharp);
    // Without push-down: the same join evaluated with the order-date and
    // segment filters applied after the join (post filters).
    let mut spec_np = spec_p.clone();
    for join in &mut spec_np.joins {
        spec_np.post_filters.append(&mut join.build_filters);
    }
    let tables = bench.heap_tables(&spec_np);
    let refs: Vec<&HeapTable<'_>> = tables.iter().collect();
    let start = Instant::now();
    let _ = mrq_engine_csharp::execute(&spec_np, &canon_p.params, &refs).expect("no-pushdown run");
    let without_pushdown = start.elapsed();
    out.push((
        "selection push-down below the Q3 join".to_string(),
        without_pushdown,
        with_pushdown,
    ));
    out
}

/// Compile-cost report (§7.4): measured generation time plus modelled
/// compiler latency per backend for the three TPC-H queries.
pub fn compile_costs(bench: &Workbench) -> Vec<(String, Duration, Duration, Duration)> {
    use mrq_codegen::emit::Backend;
    let provider = bench.managed_provider();
    let mut out = Vec::new();
    for (name, expr) in [
        ("Q1", queries::q1()),
        ("Q3", queries::q3()),
        (
            "Q2 (inner)",
            queries::q2_inner(&queries::Q2Params::default()),
        ),
    ] {
        let (generation, csharp) = provider
            .compile_cost(expr.clone(), Backend::CSharp)
            .expect("compile cost");
        let (_, c) = provider
            .compile_cost(expr, Backend::C)
            .expect("compile cost");
        out.push((name.to_string(), generation, csharp, c));
    }
    out
}

// ---------------------------------------------------------------------------
// Counted bench mode: deterministic work replay.
//
// Wall-clock benches (the Criterion benches above plus scripts/bench-smoke.sh)
// measure *time*, which is noisy: the same binary on the same host jitters by
// several percent run to run, so the trend gate must tolerate 25% drift before
// it calls a regression. The counted mode replays the same workload shapes but
// reports *work* — the per-query [`WorkStats`] counters threaded through every
// engine's fused loops, plus simulated cache-hierarchy traffic. Both are pure
// functions of (dataset, query, configuration): the TPC-H generator is seeded,
// simulated addresses use fixed bases, and every parallel point pins an
// explicit [`ParallelConfig`], so two runs of the counted report are
// byte-identical on any host and `scripts/bench-trend.sh --strict` can gate
// them at 1% instead of 25%.
// ---------------------------------------------------------------------------

/// One point of the counted report: a stable `group/point/counter` name and
/// an exact count. Unlike [`Point`] there is no elapsed time — the value is
/// reproducible work, not a measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountedPoint {
    /// Stable point name (`counted_q1/linq/rows_scanned`).
    pub name: String,
    /// Exact count.
    pub value: u64,
}

/// Scale factor for counted runs: `MRQ_SF` when set, else 0.002 — the same
/// default `scripts/bench-smoke.sh` uses, so counted and wall-clock artifacts
/// describe the same workload. Changing the factor changes every counter, so
/// a trend baseline is only meaningful at a fixed factor.
pub fn counted_scale_factor() -> f64 {
    std::env::var("MRQ_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.002)
}

/// The strategies of the counted report, with shell-friendly slugs. Every
/// entry pins a deterministic configuration: the hybrids stage sequentially
/// ([`HybridConfig::default`]/[`HybridConfig::buffered`]) so no counter
/// depends on the host's core count.
fn counted_strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        ("linq", Strategy::LinqToObjects),
        ("csharp", Strategy::CompiledCSharp),
        ("native", Strategy::CompiledNative),
        ("hybrid_full", Strategy::Hybrid(HybridConfig::default())),
        ("hybrid_buffer", Strategy::Hybrid(HybridConfig::buffered())),
    ]
}

fn push_work(out: &mut Vec<CountedPoint>, group: &str, point: &str, work: &WorkStats) {
    for (counter, value) in work.as_pairs() {
        out.push(CountedPoint {
            name: format!("{group}/{point}/{counter}"),
            value,
        });
    }
}

/// The deterministic counted report: the smoke benches' workload shapes
/// (Q1, Q6, the Figure 11 join and the prepared-amortization loop) replayed
/// through the per-query work counters, plus the Figure 14 simulated cache
/// hierarchy. Every value is an exact count; repeated runs are
/// byte-identical.
pub fn counted_report(bench: &Workbench) -> Vec<CountedPoint> {
    let mut out = Vec::new();

    // Q1 and Q6 across the five standard strategies (all sequential).
    for (group, expr) in [("counted_q1", queries::q1()), ("counted_q6", queries::q6())] {
        let (canon, spec) = bench.lower(expr);
        for (slug, strategy) in counted_strategies() {
            let (_, output) = run_strategy(bench, &canon, &spec, strategy);
            push_work(&mut out, group, slug, output.work_stats());
        }
    }

    // The Figure 11 join shape, per strategy, plus the native engine under
    // explicit 1/2/8-thread morsel configurations. Only `morsels_executed`
    // may differ across the thread points (it counts execution chunks); the
    // determinism suite holds every other counter invariant, and each point
    // is still an exact function of (rows, config) — never of the host.
    let ship_after = bench.data.shipdate_for_selectivity(0.5);
    let order_before = bench.data.orderdate_for_selectivity(0.5);
    let (canon, spec) = bench.lower(queries::join_micro("BUILDING", ship_after, order_before));
    for (slug, strategy) in counted_strategies() {
        let (_, output) = run_strategy(bench, &canon, &spec, strategy);
        push_work(&mut out, "counted_fig11_join", slug, output.work_stats());
    }
    for threads in [1usize, 2, 8] {
        let config = ParallelConfig {
            threads,
            min_rows_per_thread: 512,
            morsel_rows: 32 * 1024,
            stealing: true,
        };
        let (_, output) = run_strategy(
            bench,
            &canon,
            &spec,
            Strategy::CompiledNativeParallel(config),
        );
        push_work(
            &mut out,
            "counted_fig11_join",
            &format!("native_{threads}_threads"),
            output.work_stats(),
        );
    }

    // Prepared re-execution (the amortization bench's shape): a plan
    // prepared once must repeat *identical* execution work on every run —
    // compilation happens outside the counters entirely.
    let stmt = queries::q6();
    let managed = bench.managed_provider();
    for (slug, strategy) in [
        ("csharp", Strategy::CompiledCSharp),
        ("hybrid", Strategy::Hybrid(HybridConfig::default())),
    ] {
        let prepared = managed.prepare(stmt.clone(), strategy).expect("prepare");
        prepared.execute(&[]).expect("first prepared run");
        let first = managed.last_work_stats();
        prepared.execute(&[]).expect("second prepared run");
        let second = managed.last_work_stats();
        assert_eq!(
            first, second,
            "prepared re-execution must repeat identical work"
        );
        push_work(&mut out, "counted_prepared", slug, &second);
    }
    let mut native = Provider::new();
    native.bind_native(
        queries::SRC_LINEITEM,
        &bench.stores[queries::source_table(queries::SRC_LINEITEM)],
    );
    let prepared = native
        .prepare(stmt, Strategy::CompiledNative)
        .expect("prepare native");
    prepared.execute(&[]).expect("first prepared run");
    let first = native.last_work_stats();
    prepared.execute(&[]).expect("second prepared run");
    let second = native.last_work_stats();
    assert_eq!(
        first, second,
        "prepared re-execution must repeat identical work"
    );
    push_work(&mut out, "counted_prepared", "native", &second);

    // Streamed replay: the streaming tests' scan shape drained through
    // `submit_stream` with a pinned batch size. The sink re-chunks rows into
    // full `stream_batch_rows` batches regardless of the morsel schedule, so
    // `batches_streamed`/`rows_streamed` are exact functions of the row count
    // — every strategy here runs sequentially and every counter is stable.
    let scan = queries::scan_micro(bench.data.shipdate_for_selectivity(0.5));
    let stream_options = QueryOptions::default().with_stream_batch_rows(64);
    let managed = bench.managed_provider();
    for (slug, strategy) in [
        ("linq", Strategy::LinqToObjects),
        ("csharp", Strategy::CompiledCSharp),
        ("hybrid", Strategy::Hybrid(HybridConfig::default())),
    ] {
        let stream = managed.submit_stream(scan.clone(), strategy, stream_options);
        for batch in stream {
            batch.expect("streamed counted batch");
        }
        push_work(
            &mut out,
            "counted_streaming",
            slug,
            &managed.last_work_stats(),
        );
    }
    let stream = native.submit_stream(scan, Strategy::CompiledNative, stream_options);
    for batch in stream {
        batch.expect("streamed counted batch");
    }
    push_work(
        &mut out,
        "counted_streaming",
        "native",
        &native.last_work_stats(),
    );

    // Simulated cache hierarchy (Figure 14): deterministic because both the
    // managed heap and the row stores hand out fixed simulated addresses.
    for (name, query, l1, l2, llc) in fig14_hierarchy(bench, true) {
        let slug = match name.as_str() {
            "LINQ-to-Objects" => "linq",
            "C# Code" => "csharp",
            _ => "native",
        };
        let group = if query == "Q1" {
            "counted_cache_q1"
        } else {
            "counted_cache_q3"
        };
        for (level, stats) in [("l1", l1), ("l2", l2), ("llc", llc)] {
            out.push(CountedPoint {
                name: format!("{group}/{slug}/{level}_accesses"),
                value: stats.accesses,
            });
            out.push(CountedPoint {
                name: format!("{group}/{slug}/{level}_misses"),
                value: stats.misses,
            });
        }
    }

    out
}

/// Renders counted points in the `BENCH_smoke.json` artifact shape —
/// `    "group/point/counter": value,` lines inside a `groups` object — so
/// `scripts/bench-trend.sh` parses counted artifacts with the same extractor
/// it uses for wall-clock medians. The unit is `"count"` and no host
/// information is included: the file is byte-identical across machines.
///
/// Zero-valued counters are emitted (they keep the byte-level diff exhaustive)
/// but the trend extractor skips them; a counter moving off zero therefore
/// reports as `new` rather than as a gated regression.
pub fn render_counted_json(points: &[CountedPoint], scale_factor: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale_factor\": {scale_factor},\n"));
    out.push_str("  \"unit\": \"count\",\n");
    out.push_str("  \"groups\": {\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": {}{}\n", p.name, p.value, sep));
    }
    out.push_str("  }\n}\n");
    out
}

/// Renders a set of points as a fixed-width table grouped by x value.
pub fn render_points(title: &str, points: &[Point], baseline: &str) -> String {
    let mut out = format!("== {title} ==\n");
    let mut xs: Vec<&str> = Vec::new();
    for p in points {
        if !xs.contains(&p.x.as_str()) {
            xs.push(&p.x);
        }
    }
    for x in xs {
        let base = points
            .iter()
            .find(|p| p.x == x && p.strategy == baseline)
            .map(|p| p.elapsed.as_secs_f64())
            .unwrap_or(f64::NAN);
        out.push_str(&format!("-- x = {x}\n"));
        for p in points.iter().filter(|p| p.x == x) {
            let pct = p.elapsed.as_secs_f64() / base * 100.0;
            out.push_str(&format!(
                "  {:<28} {:>10.3} ms   {:>6.1}% of baseline   ({} rows)\n",
                p.strategy,
                p.elapsed.as_secs_f64() * 1e3,
                pct,
                p.rows
            ));
        }
    }
    out
}

#[cfg(test)]
mod counted_tests {
    use super::*;

    #[test]
    fn render_matches_the_trend_extractor_shape() {
        let points = vec![
            CountedPoint {
                name: "counted_q1/linq/rows_scanned".to_string(),
                value: 12000,
            },
            CountedPoint {
                name: "counted_q1/linq/staging_copies".to_string(),
                value: 0,
            },
        ];
        let json = render_counted_json(&points, 0.002);
        // Exactly the `    "name": value,` shape bench-trend's awk extractor
        // anchors on: four-space indent, no separator on the last entry.
        assert!(json.contains("    \"counted_q1/linq/rows_scanned\": 12000,\n"));
        assert!(json.contains("    \"counted_q1/linq/staging_copies\": 0\n"));
        assert!(json.contains("\"unit\": \"count\""));
        assert!(json.ends_with("  }\n}\n"));
    }

    #[test]
    fn render_is_a_pure_function_of_its_points() {
        let points = vec![CountedPoint {
            name: "g/p/c".to_string(),
            value: 7,
        }];
        assert_eq!(
            render_counted_json(&points, 0.002),
            render_counted_json(&points, 0.002)
        );
    }
}
