//! Prints every table and figure series of the paper's evaluation section.
//!
//! Usage:
//! ```text
//! cargo run -p mrq-bench --release --bin figures -- all
//! cargo run -p mrq-bench --release --bin figures -- fig7 fig13 table1
//! MRQ_SF=0.05 cargo run -p mrq-bench --release --bin figures -- all
//! ```

use mrq_bench::*;
use mrq_core::Strategy;
use mrq_engine_hybrid::HybridConfig;
use mrq_tpch::queries;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "table1",
            "compile-cost",
            "micro",
            "agg-extras",
            "parallel",
            "extensions",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let sf = default_scale_factor();
    eprintln!("# loading TPC-H at scale factor {sf} (override with MRQ_SF) ...");
    let bench = Workbench::new(sf);
    eprintln!(
        "# loaded: {} lineitem rows, {} orders, {} customers",
        bench.data.lineitem.len(),
        bench.data.orders.len(),
        bench.data.customer.len()
    );
    let selectivities = [0.1, 0.25, 0.5, 0.75, 1.0];

    for figure in wanted {
        match figure {
            "fig7" => {
                let points = fig07_aggregation(&bench, &selectivities);
                println!(
                    "{}",
                    render_points(
                        "Figure 7: aggregation over selection, varying selectivity",
                        &points,
                        "LINQ-to-Objects"
                    )
                );
            }
            "fig8" => {
                let cutoff = bench.data.shipdate_for_selectivity(1.0);
                let (canon, spec) = bench.lower(queries::q1_with_cutoff(cutoff));
                let breakdown =
                    run_hybrid_breakdown(&bench, &canon, &spec, HybridConfig::default());
                println!("== Figure 8: aggregation cost breakdown (C#/C, full staging) ==");
                println!("{}", breakdown.render());
            }
            "fig9" => {
                let points = fig09_sort(&bench, &selectivities);
                println!(
                    "{}",
                    render_points(
                        "Figure 9: sorting over selection, varying selectivity",
                        &points,
                        "LINQ-to-Objects"
                    )
                );
            }
            "fig10" => {
                let cutoff = bench.data.shipdate_for_selectivity(1.0);
                let (canon, spec) = bench.lower(queries::sort_micro(cutoff));
                let breakdown = run_hybrid_breakdown(
                    &bench,
                    &canon,
                    &spec,
                    HybridConfig {
                        materialization: mrq_engine_hybrid::Materialization::Full,
                        transfer: mrq_engine_hybrid::TransferPolicy::Min,
                        ..HybridConfig::default()
                    },
                );
                println!("== Figure 10: sorting cost breakdown (C#/C, Min transfer) ==");
                println!("{}", breakdown.render());
            }
            "fig11" => {
                let points = fig11_join(&bench, &selectivities);
                println!(
                    "{}",
                    render_points(
                        "Figure 11: join over selections, varying selectivity",
                        &points,
                        "LINQ-to-Objects"
                    )
                );
            }
            "fig12" => {
                let date = mrq_common::Date::from_ymd(1995, 3, 15);
                let (canon, spec) = bench.lower(queries::join_micro("BUILDING", date, date));
                let breakdown =
                    run_hybrid_breakdown(&bench, &canon, &spec, HybridConfig::default());
                println!("== Figure 12: join cost breakdown (C#/C, Max transfer) ==");
                println!("{}", breakdown.render());
            }
            "fig13" => {
                let points = fig13_tpch(&bench);
                println!(
                    "{}",
                    render_points(
                        "Figure 13: TPC-H Q1-Q3 evaluation time (vs LINQ-to-objects)",
                        &points,
                        "LINQ-to-Objects"
                    )
                );
            }
            "fig14" => {
                println!("== Figure 14: simulated last-level cache misses ==");
                let rows = fig14_cache(&bench, true);
                let baseline: std::collections::HashMap<String, u64> = rows
                    .iter()
                    .filter(|(s, _, _)| s == "LINQ-to-Objects")
                    .map(|(_, q, m)| (q.clone(), *m))
                    .collect();
                for (strategy, query, misses) in &rows {
                    let pct = *misses as f64 / baseline[query] as f64 * 100.0;
                    println!(
                        "  {query}  {strategy:<20} {misses:>12} misses  {pct:>6.1}% of baseline"
                    );
                }
                println!();
                println!("-- hierarchy breakdown (L1 / L2 / LLC misses, probe-side stream) --");
                for (strategy, query, l1, l2, llc) in fig14_hierarchy(&bench, true) {
                    println!(
                        "  {query}  {strategy:<20} L1 {:>12}   L2 {:>12}   LLC {:>12}",
                        l1.misses, l2.misses, llc.misses
                    );
                }
                println!();
            }
            "agg-extras" => {
                let points = agg_extras_aggregate_sweep(&bench, &[1, 2, 4, 6, 8]);
                println!(
                    "{}",
                    render_points(
                        "§7.1 extras: varying the number of aggregates",
                        &points,
                        "LINQ-to-Objects"
                    )
                );
                println!("== §7.1 extras: staging buffer size (Q1 aggregation) ==");
                for (label, elapsed, staged) in agg_extras_buffer_sweep(&bench, &[256, 2048, 16384])
                {
                    println!(
                        "  {label:<28} {:>10.3} ms   staged {:>12} bytes",
                        elapsed.as_secs_f64() * 1e3,
                        staged
                    );
                }
                println!();
                println!("== §6.1.1 staging layout: struct rows vs primitive columns ==");
                for (label, elapsed, staged) in staging_layout_comparison(&bench) {
                    println!(
                        "  {label:<28} {:>10.3} ms   staged {:>12} bytes",
                        elapsed.as_secs_f64() * 1e3,
                        staged
                    );
                }
                println!();
            }
            "parallel" => {
                println!("== Extension: parallel native execution (TPC-H Q1) ==");
                let sweep = parallel_sweep(&bench, &[1, 2, 4, 8]);
                let base = sweep
                    .first()
                    .map(|(_, d, _)| d.as_secs_f64())
                    .unwrap_or(f64::NAN);
                for (threads, elapsed, rows) in sweep {
                    println!(
                        "  {threads:>2} threads   {:>10.3} ms   speed-up {:>5.2}x   ({rows} rows)",
                        elapsed.as_secs_f64() * 1e3,
                        base / elapsed.as_secs_f64()
                    );
                }
                println!();
                println!("== Extension: morsel parallelism across strategies (TPC-H Q1) ==");
                let points = parallel_strategy_sweep(&bench, &[1, 2, 4, 8]);
                let mut strategies: Vec<&str> = Vec::new();
                for p in &points {
                    if !strategies.contains(&p.strategy.as_str()) {
                        strategies.push(&p.strategy);
                    }
                }
                for strategy in strategies {
                    let series: Vec<&Point> =
                        points.iter().filter(|p| p.strategy == strategy).collect();
                    let base = series[0].elapsed.as_secs_f64();
                    print!("  {strategy:<22}");
                    for p in &series {
                        print!(
                            "  {}: {:>8.3} ms ({:>4.2}x)",
                            p.x,
                            p.elapsed.as_secs_f64() * 1e3,
                            base / p.elapsed.as_secs_f64()
                        );
                    }
                    println!();
                }
                println!();
            }
            "extensions" => {
                println!("== Extensions: top-N fusion, join indexes, optimizer, recycling ==");
                for (claim, baseline, improved) in extension_claims(&bench) {
                    let gain = (1.0 - improved.as_secs_f64() / baseline.as_secs_f64()) * 100.0;
                    println!(
                        "  {claim:<60} baseline {:>9.3} ms   improved {:>9.3} ms   gain {gain:>5.1}%",
                        baseline.as_secs_f64() * 1e3,
                        improved.as_secs_f64() * 1e3
                    );
                }
                println!();
            }
            "table1" => {
                println!("== Table 1: comparison to in-memory DBMS architectures ==");
                for (system, query, elapsed) in table1(&bench) {
                    println!(
                        "  {query}  {system:<44} {:>10.3} ms",
                        elapsed.as_secs_f64() * 1e3
                    );
                }
                println!("  Q2  (comparators): not implemented, as in the paper's Hekaton column");
                println!();
            }
            "compile-cost" => {
                println!("== Compile cost (measured generation + modelled compiler latency) ==");
                for (query, generation, csharp, c) in compile_costs(&bench) {
                    println!(
                        "  {query:<10} generation {:>8.1} ms   C# compile {:>8.1} ms   C compile {:>8.1} ms",
                        generation.as_secs_f64() * 1e3,
                        csharp.as_secs_f64() * 1e3,
                        c.as_secs_f64() * 1e3
                    );
                }
                println!();
            }
            "micro" => {
                println!("== §2.3 micro-claims ==");
                for (claim, baseline, improved) in micro_claims(&bench) {
                    let gain = (1.0 - improved.as_secs_f64() / baseline.as_secs_f64()) * 100.0;
                    println!(
                        "  {claim:<55} baseline {:>9.3} ms   improved {:>9.3} ms   gain {gain:>5.1}%",
                        baseline.as_secs_f64() * 1e3,
                        improved.as_secs_f64() * 1e3
                    );
                }
                println!();
            }
            other => eprintln!("unknown figure `{other}`"),
        }
    }

    // Sanity: every strategy agrees on Q1's result cardinality.
    let (canon, spec) = bench.lower(queries::q1());
    let mut cardinalities = Vec::new();
    for (_, strategy) in standard_strategies() {
        let (_, out) = run_strategy(&bench, &canon, &spec, strategy);
        cardinalities.push(out.rows.len());
    }
    cardinalities.dedup();
    assert_eq!(cardinalities.len(), 1, "strategies disagree on Q1");
    let _ = Strategy::LinqToObjects;
}
