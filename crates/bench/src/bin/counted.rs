//! `counted` — the deterministic work-counting bench mode.
//!
//! Prints the counted report (see [`mrq_bench::counted_report`]) to stdout in
//! the `BENCH_smoke.json` artifact shape, with `"unit": "count"`. Every value
//! is an exact count — rows scanned, hash inserts, probe lookups, simulated
//! cache misses — so repeated runs are byte-identical and the trend gate can
//! be strict (`scripts/bench-trend.sh --strict`, 1% drift) instead of the 25%
//! wall-clock tolerance.
//!
//! Usage:
//!
//! ```text
//! cargo run -q -p mrq-bench --release --bin counted > BENCH_counted.json
//! ```
//!
//! Env: `MRQ_SF` overrides the scale factor (default 0.002, matching
//! `scripts/bench-smoke.sh`). Counters scale with the factor, so a trend
//! baseline is only meaningful at a fixed factor.

use mrq_bench::{counted_report, counted_scale_factor, render_counted_json, Workbench};

fn main() {
    let scale_factor = counted_scale_factor();
    let bench = Workbench::new(scale_factor);
    let points = counted_report(&bench);
    print!("{}", render_counted_json(&points, scale_factor));
    eprintln!(
        "counted: {} points at scale factor {scale_factor}",
        points.len()
    );
}
