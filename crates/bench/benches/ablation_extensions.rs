//! Ablation: the design-choice extensions beyond the paper's figures —
//! OrderBy+Take fusion (§2.3 "independent operators"), pre-built join
//! indexes (§9), the heuristic optimizer's selection push-down (§2.3) and
//! query-result recycling (§9 / [15]).
use criterion::{criterion_group, criterion_main, Criterion};
use mrq_bench::{run_strategy, Workbench};
use mrq_codegen::exec::ExecState;
use mrq_common::Schema;
use mrq_core::Strategy;
use mrq_engine_native::{execute_indexed, HashIndex};
use mrq_tpch::queries;

fn bench(c: &mut Criterion) {
    let wb = Workbench::new(0.002);

    // OrderBy + Take fusion over the native row store.
    let cutoff = wb.data.shipdate_for_selectivity(1.0);
    let (canon, spec) = wb.lower(queries::sort_topn_micro(cutoff, 10));
    let tables = wb.row_stores(&spec);
    let schemas: Vec<Schema> = tables.iter().map(|t| t.schema().clone()).collect();
    let mut group = c.benchmark_group("ablation_topn_fusion");
    group.sample_size(10);
    for (label, fused) in [("full_sort_then_take", false), ("fused_topn", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut state =
                    ExecState::new(&spec, &canon.params, tables[1..].to_vec(), &schemas)
                        .expect("state");
                if !fused {
                    state.disable_topn_fusion();
                }
                state.consume(tables[0]);
                state.finish().rows.len()
            })
        });
    }
    group.finish();

    // Pre-built join indexes vs per-query hash builds on the Q3 join.
    let date = mrq_common::Date::from_ymd(1995, 3, 15);
    let naive = queries::join_micro_naive("BUILDING", date, date);
    let (canon_j, spec_j) = wb.lower(naive.clone());
    let tables_j = wb.row_stores(&spec_j);
    let orders_index = HashIndex::build(&wb.stores["orders"], 0).expect("orders index");
    let customer_index = HashIndex::build(&wb.stores["customer"], 0).expect("customer index");
    let mut group = c.benchmark_group("ablation_join_index");
    group.sample_size(10);
    group.bench_function("hash_build_per_query", |b| {
        b.iter(|| {
            mrq_engine_native::execute(&spec_j, &canon_j.params, &tables_j)
                .expect("join")
                .rows
                .len()
        })
    });
    group.bench_function("prebuilt_index", |b| {
        b.iter(|| {
            execute_indexed(
                &spec_j,
                &canon_j.params,
                &tables_j,
                &[Some(&orders_index), Some(&customer_index)],
            )
            .expect("indexed join")
            .rows
            .len()
        })
    });
    group.finish();

    // Optimizer: the naive Q3 join as written vs after selection push-down.
    let (canon_n, spec_n) = wb.lower(naive.clone());
    let (canon_o, spec_o) =
        wb.lower(mrq_expr::optimize(naive, mrq_expr::OptimizerConfig::default()).expr);
    let mut group = c.benchmark_group("ablation_optimizer_pushdown");
    group.sample_size(10);
    group.bench_function("as_written", |b| {
        b.iter(|| {
            run_strategy(&wb, &canon_n, &spec_n, Strategy::CompiledCSharp)
                .1
                .rows
                .len()
        })
    });
    group.bench_function("pushed_down", |b| {
        b.iter(|| {
            run_strategy(&wb, &canon_o, &spec_o, Strategy::CompiledCSharp)
                .1
                .rows
                .len()
        })
    });
    group.finish();

    // Result recycling: repeated parameter-identical Q1 via the provider.
    let mut group = c.benchmark_group("ablation_result_recycling");
    group.sample_size(10);
    group.bench_function("no_recycling", |b| {
        let provider = wb.managed_provider();
        b.iter(|| {
            provider
                .execute(queries::q1(), Strategy::CompiledCSharp)
                .expect("run")
                .rows
                .len()
        })
    });
    group.bench_function("recycled", |b| {
        let mut provider = wb.managed_provider();
        provider.set_result_recycling(true);
        provider
            .execute(queries::q1(), Strategy::CompiledCSharp)
            .expect("warm-up");
        b.iter(|| {
            provider
                .execute(queries::q1(), Strategy::CompiledCSharp)
                .expect("run")
                .rows
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
