//! Ablation: staging policy (full vs buffered, varying buffer size) and the
//! number of aggregates (§7.1's extra experiments).
use criterion::{criterion_group, criterion_main, Criterion};
use mrq_bench::{run_strategy, Workbench};
use mrq_core::Strategy;
use mrq_engine_hybrid::{HybridConfig, Materialization, TransferPolicy};
use mrq_tpch::queries;

fn bench(c: &mut Criterion) {
    let wb = Workbench::new(0.002);
    let cutoff = wb.data.shipdate_for_selectivity(1.0);
    let (canon, spec) = wb.lower(queries::q1_with_cutoff(cutoff));
    let mut group = c.benchmark_group("ablation_staging_buffer_size");
    group.sample_size(10);
    for rows_per_buffer in [256usize, 2048, 16384] {
        group.bench_function(format!("buffered_{rows_per_buffer}"), |b| {
            let strategy = Strategy::Hybrid(HybridConfig {
                materialization: Materialization::Buffered { rows_per_buffer },
                transfer: TransferPolicy::Max,
                layout: mrq_engine_hybrid::StagingLayout::RowWise,
                ..HybridConfig::default()
            });
            b.iter(|| run_strategy(&wb, &canon, &spec, strategy).1.rows.len())
        });
    }
    group.bench_function("full", |b| {
        let strategy = Strategy::Hybrid(HybridConfig::default());
        b.iter(|| run_strategy(&wb, &canon, &spec, strategy).1.rows.len())
    });
    group.finish();

    let mut group = c.benchmark_group("ablation_aggregate_count");
    group.sample_size(10);
    for n in [1usize, 4, 8] {
        let (canon, spec) = wb.lower(queries::aggregation_micro(cutoff, n));
        group.bench_function(format!("aggregates_{n}"), |b| {
            let strategy = Strategy::Hybrid(HybridConfig::default());
            b.iter(|| run_strategy(&wb, &canon, &spec, strategy).1.rows.len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_staging_layout");
    group.sample_size(10);
    for (label, layout) in [
        ("row_wise", mrq_engine_hybrid::StagingLayout::RowWise),
        ("columnar", mrq_engine_hybrid::StagingLayout::Columnar),
    ] {
        group.bench_function(label, |b| {
            let strategy = Strategy::Hybrid(HybridConfig {
                materialization: Materialization::Full,
                transfer: TransferPolicy::Max,
                layout,
                ..HybridConfig::default()
            });
            b.iter(|| run_strategy(&wb, &canon, &spec, strategy).1.rows.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
