//! Criterion bench for Table 1: DBMS comparators vs the provider strategies.
use criterion::{criterion_group, criterion_main, Criterion};
use mrq_bench::Workbench;
use mrq_common::Date;

fn bench(c: &mut Criterion) {
    let wb = Workbench::new(0.002);
    let cutoff = Date::from_ymd(1998, 12, 1).add_days(-90);
    let mut group = c.benchmark_group("table1_q1");
    group.sample_size(10);
    group.bench_function("interpreted row store", |b| {
        b.iter(|| mrq_dbms::volcano::q1(&wb.columns["lineitem"], cutoff).len())
    });
    group.bench_function("vectorised column store", |b| {
        b.iter(|| mrq_dbms::vector::q1(&wb.columns["lineitem"], cutoff).len())
    });
    group.bench_function("compiled row store (native engine)", |b| {
        b.iter(|| mrq_bench::run_tpch_query(&wb, "Q1", mrq_core::Strategy::CompiledNative).1)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
