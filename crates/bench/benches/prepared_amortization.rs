//! Compile-once-execute-N vs compile-every-time, per strategy: the
//! serving-economics claim behind the plan cache (§7.4).
//!
//! Each strategy reports two points:
//!
//! * `{strategy}_prepared_once` — a plan prepared once outside the timing
//!   loop ([`mrq_core::Provider::prepare`]); each iteration is one pure
//!   execution of the cached plan.
//! * `{strategy}_compile_each` — each iteration drops every compiled
//!   artefact ([`mrq_core::Provider::clear_compiled`]) and goes through the
//!   full ad-hoc pipeline: optimize, canonicalize, lower, emit both
//!   backends, execute.
//!
//! The per-execution gap is the amortized compilation cost;
//! `scripts/bench-smoke.sh` gates `prepared_once` strictly below
//! `compile_each` for the compiled strategies.
//!
//! The workload is deliberately small (Q6 — one filter + one aggregate —
//! over a tiny scale factor): amortization matters exactly when execution is
//! short, and at serving-style point-query cost the per-statement pipeline
//! (optimize, canonicalize, lower, emit) is a visible fraction of each
//! iteration instead of vanishing under scan time.

use criterion::{criterion_group, criterion_main, Criterion};
use mrq_bench::Workbench;
use mrq_core::{Provider, Strategy};
use mrq_engine_hybrid::HybridConfig;
use mrq_tpch::queries;

fn bench(c: &mut Criterion) {
    let wb = Workbench::new(0.0005);
    let stmt = queries::q6();

    let mut group = c.benchmark_group("prepared_amortization");
    group.sample_size(10);

    // Managed strategies share the heap-backed provider.
    let managed = wb.managed_provider();
    for (name, strategy) in [
        ("linq", Strategy::LinqToObjects),
        ("csharp", Strategy::CompiledCSharp),
        ("hybrid", Strategy::Hybrid(HybridConfig::default())),
    ] {
        let prepared = managed.prepare(stmt.clone(), strategy).expect("prepare");
        group.bench_function(format!("{name}_prepared_once"), |b| {
            b.iter(|| {
                let rows = prepared.execute(&[]).expect("prepared run").rows.len();
                assert!(rows > 0);
            })
        });
        group.bench_function(format!("{name}_compile_each"), |b| {
            b.iter(|| {
                managed.clear_compiled();
                let rows = managed
                    .execute(stmt.clone(), strategy)
                    .expect("ad-hoc run")
                    .rows
                    .len();
                assert!(rows > 0);
            })
        });
    }

    // The native strategy over row stores.
    let mut native = Provider::new();
    native.bind_native(
        queries::SRC_LINEITEM,
        &wb.stores[queries::source_table(queries::SRC_LINEITEM)],
    );
    let prepared = native
        .prepare(stmt.clone(), Strategy::CompiledNative)
        .expect("prepare native");
    group.bench_function("native_prepared_once", |b| {
        b.iter(|| {
            let rows = prepared.execute(&[]).expect("prepared run").rows.len();
            assert!(rows > 0);
        })
    });
    group.bench_function("native_compile_each", |b| {
        b.iter(|| {
            native.clear_compiled();
            let rows = native
                .execute(stmt.clone(), Strategy::CompiledNative)
                .expect("ad-hoc run")
                .rows
                .len();
            assert!(rows > 0);
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
