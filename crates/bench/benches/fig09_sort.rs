//! Criterion bench for Figure 9: sorting over a selection, per strategy.
use criterion::{criterion_group, criterion_main, Criterion};
use mrq_bench::{run_strategy, Workbench};
use mrq_core::Strategy;
use mrq_engine_hybrid::{HybridConfig, Materialization, TransferPolicy};
use mrq_tpch::queries;

fn bench(c: &mut Criterion) {
    let wb = Workbench::new(0.002);
    let cutoff = wb.data.shipdate_for_selectivity(0.5);
    let (canon, spec) = wb.lower(queries::sort_micro(cutoff));
    let strategies: Vec<(&str, Strategy)> = vec![
        ("LINQ-to-Objects", Strategy::LinqToObjects),
        ("C# Code", Strategy::CompiledCSharp),
        ("C Code", Strategy::CompiledNative),
        (
            "C#/C Code (Min)",
            Strategy::Hybrid(HybridConfig {
                materialization: Materialization::Full,
                transfer: TransferPolicy::Min,
                layout: mrq_engine_hybrid::StagingLayout::RowWise,
                ..HybridConfig::default()
            }),
        ),
    ];
    let mut group = c.benchmark_group("fig09_sort_sel_0.5");
    group.sample_size(10);
    for (name, strategy) in strategies {
        group.bench_function(name, |b| {
            b.iter(|| run_strategy(&wb, &canon, &spec, strategy).1.rows.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
