//! Criterion bench for Figure 13: full TPC-H Q1-Q3 per strategy.
use criterion::{criterion_group, criterion_main, Criterion};
use mrq_bench::{run_tpch_query, standard_strategies, tpch_query_names, Workbench};

fn bench(c: &mut Criterion) {
    let wb = Workbench::new(0.002);
    let mut group = c.benchmark_group("fig13_tpch");
    group.sample_size(10);
    for query in tpch_query_names() {
        for (name, strategy) in standard_strategies() {
            group.bench_function(format!("{query}/{name}"), |b| {
                b.iter(|| run_tpch_query(&wb, query, strategy).1)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
