//! First-row latency: time-to-first-row (TTFR) through `QueryStream`
//! versus time-to-last-row (TTLR) through a materialising `submit`.
//!
//! Both points run the same full-store streamable scan on the same
//! provider. The TTLR point joins the handle — it pays for every row before
//! the caller sees any. The TTFR point drains exactly one streamed batch
//! and drops the stream, which cancels the remainder at the next
//! checkpoint; its cost is the first batch plus one checkpoint of unwind.
//! On a scan this size the stream delivers its first rows in a small
//! fraction of the full scan, and `scripts/bench-smoke.sh` gates
//! `TTFR < 0.5 × TTLR`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mrq_common::{DataType, Field, Schema, Value};
use mrq_core::{ParallelConfig, Provider, QueryOptions, Strategy};
use mrq_engine_native::RowStore;
use mrq_expr::{col, lam, lit, BinaryOp, Expr, Query, SourceId};

const ROWS: i64 = 1_000_000;
const BATCH_ROWS: usize = 4096;

fn schema() -> Schema {
    Schema::new(
        "N",
        vec![
            Field::new("n", DataType::Int64),
            Field::new("bucket", DataType::Int64),
        ],
    )
}

/// A full-store streamable scan: every row passes the filter and is
/// projected, so TTLR scales with `ROWS` while TTFR stays one batch deep.
fn scan() -> Expr {
    Query::from_source(SourceId(0))
        .where_(lam(
            "x",
            Expr::binary(BinaryOp::Ge, col("x", "n"), lit(0i64)),
        ))
        .select(lam("x", col("x", "n")))
        .into_expr()
}

fn bench(c: &mut Criterion) {
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int64(i), Value::Int64(i % 97)])
        .collect();
    let store = RowStore::from_rows(schema(), &rows);
    drop(rows);

    let mut provider = Provider::new();
    provider.bind_native(SourceId(0), &store);
    provider.set_parallelism(ParallelConfig {
        threads: 2,
        min_rows_per_thread: 1024,
        ..ParallelConfig::default()
    });
    // Warm the compiled-query cache so both points measure execution, not
    // one-off code generation.
    provider
        .execute(scan(), Strategy::CompiledNative)
        .expect("warm-up");

    let mut group = c.benchmark_group("first_row_latency");
    group.sample_size(10);
    group.bench_function("scan_ttfr", |b| {
        b.iter(|| {
            let mut stream = provider.submit_stream(
                scan(),
                Strategy::CompiledNative,
                QueryOptions::default().with_stream_batch_rows(BATCH_ROWS),
            );
            let first = stream
                .next_batch()
                .expect("first batch")
                .expect("streamed rows");
            assert_eq!(first.len(), BATCH_ROWS);
            black_box(first.len())
            // Dropping the stream cancels the rest of the scan; the drop
            // wait (bounded by one checkpoint) is part of the measured cost.
        })
    });
    group.bench_function("scan_ttlr", |b| {
        b.iter(|| {
            let out = provider
                .submit(scan(), Strategy::CompiledNative, QueryOptions::default())
                .join()
                .expect("materialised scan");
            assert_eq!(out.rows.len(), ROWS as usize);
            black_box(out.rows.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
