//! Concurrent-serving throughput: one shared `Provider`, N client threads.
//!
//! Each point runs a fixed batch of `QUERIES_PER_CLIENT` queries *per
//! client* through one shared provider (every query submitted with
//! [`mrq_core::Provider::submit`] and joined), so the reported time per
//! point covers `clients × QUERIES_PER_CLIENT` queries. Throughput in
//! queries/sec is therefore `clients × QUERIES_PER_CLIENT / time`, and
//! `scripts/bench-smoke.sh` gates 8-client throughput at ≥ 2× the
//! single-client point on hosts with enough CPUs to express it.
//!
//! Per-query parallelism is deliberately sequential: the clients supply the
//! parallelism, the persistent worker pool multiplexes them, and the gate
//! then measures pure serving scalability rather than intra-query speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use mrq_bench::Workbench;
use mrq_core::{Provider, QueryOptions, Strategy};
use mrq_tpch::queries;

const QUERIES_PER_CLIENT: usize = 16;

fn bench(c: &mut Criterion) {
    let wb = Workbench::new(0.002);

    let mut provider = Provider::new();
    for source in [
        queries::SRC_LINEITEM,
        queries::SRC_ORDERS,
        queries::SRC_CUSTOMER,
    ] {
        provider.bind_native(source, &wb.stores[queries::source_table(source)]);
    }
    // Warm the compiled-query cache so every point measures serving, not
    // one-off code generation.
    provider
        .execute(queries::q1(), Strategy::CompiledNative)
        .expect("warm-up");

    let mut group = c.benchmark_group("concurrent_serving_q1");
    group.sample_size(10);
    for clients in [1usize, 2, 8] {
        group.bench_function(format!("{clients}_clients"), |b| {
            let provider = &provider;
            b.iter(|| {
                std::thread::scope(|scope| {
                    for _ in 0..clients {
                        scope.spawn(move || {
                            for _ in 0..QUERIES_PER_CLIENT {
                                let rows = provider
                                    .submit(
                                        queries::q1(),
                                        Strategy::CompiledNative,
                                        QueryOptions::default(),
                                    )
                                    .join()
                                    .expect("submitted query")
                                    .rows
                                    .len();
                                assert!(rows > 0);
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
