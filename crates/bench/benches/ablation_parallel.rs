//! Ablation: the parallel-execution extension (§9). Q1 aggregation with a
//! growing worker count across every strategy with a parallel path — the
//! native row store, the compiled-C# fused loops over managed objects and
//! hybrid staging (full and buffered) — plus the Q3 join with and without a
//! shared pre-built index on the build sides.
use criterion::{criterion_group, criterion_main, Criterion};
use mrq_bench::Workbench;
use mrq_engine_csharp::HeapTable;
use mrq_engine_hybrid::HybridConfig;
use mrq_engine_native::{execute_parallel, HashIndex, ParallelConfig};
use mrq_tpch::queries;

fn bench(c: &mut Criterion) {
    let wb = Workbench::new(0.002);

    let (canon, spec) = wb.lower(queries::q1());
    let tables = wb.row_stores(&spec);
    let mut group = c.benchmark_group("ablation_parallel_q1_aggregation");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("{threads}_threads"), |b| {
            let config = ParallelConfig {
                threads,
                min_rows_per_thread: 512,
                ..ParallelConfig::default()
            };
            b.iter(|| {
                execute_parallel(&spec, &canon.params, &tables, &[], config)
                    .expect("parallel run")
                    .rows
                    .len()
            })
        });
    }
    group.finish();

    // The same Q1 aggregation through the compiled-C# fused loops over
    // managed heap objects.
    let heap_tables = wb.heap_tables(&spec);
    let heap_refs: Vec<&HeapTable<'_>> = heap_tables.iter().collect();
    let mut group = c.benchmark_group("ablation_parallel_q1_csharp");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("{threads}_threads"), |b| {
            let config = ParallelConfig {
                threads,
                min_rows_per_thread: 512,
                ..ParallelConfig::default()
            };
            b.iter(|| {
                mrq_engine_csharp::execute_parallel(&spec, &canon.params, &heap_refs, config)
                    .expect("parallel C# run")
                    .rows
                    .len()
            })
        });
    }
    group.finish();

    // Hybrid staging: every worker filters its morsel of the managed
    // collection into a thread-local staging shard before native
    // aggregation consumes the shards.
    for (label, base) in [
        ("ablation_parallel_q1_hybrid_full", HybridConfig::default()),
        (
            "ablation_parallel_q1_hybrid_buffered",
            HybridConfig::buffered(),
        ),
    ] {
        let mut group = c.benchmark_group(label);
        group.sample_size(10);
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(format!("{threads}_threads"), |b| {
                let config = base.parallel(ParallelConfig {
                    threads,
                    min_rows_per_thread: 512,
                    ..ParallelConfig::default()
                });
                b.iter(|| {
                    mrq_engine_hybrid::execute(&spec, &canon.params, &heap_refs, config)
                        .expect("parallel hybrid run")
                        .output
                        .rows
                        .len()
                })
            });
        }
        group.finish();
    }

    // Parallel join probe with shared pre-built indexes on both build sides.
    let date = mrq_common::Date::from_ymd(1995, 3, 15);
    let naive = queries::join_micro_naive("BUILDING", date, date);
    let (canon_j, spec_j) = wb.lower(naive);
    let tables_j = wb.row_stores(&spec_j);
    // The indexes themselves are built with the hash-partitioned parallel
    // path (identical content to the sequential build).
    let index_config = ParallelConfig {
        threads: 4,
        min_rows_per_thread: 512,
        ..ParallelConfig::default()
    };
    let orders_index =
        HashIndex::build_parallel(&wb.stores["orders"], 0, index_config).expect("orders index");
    let customer_index =
        HashIndex::build_parallel(&wb.stores["customer"], 0, index_config).expect("customer index");
    let mut group = c.benchmark_group("ablation_parallel_q3_join");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}_threads_indexed"), |b| {
            let config = ParallelConfig {
                threads,
                min_rows_per_thread: 512,
                ..ParallelConfig::default()
            };
            b.iter(|| {
                execute_parallel(
                    &spec_j,
                    &canon_j.params,
                    &tables_j,
                    &[Some(&orders_index), Some(&customer_index)],
                    config,
                )
                .expect("parallel indexed join")
                .rows
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
